//! Fault tolerance of the tiered model store, end to end:
//!
//! * a corrupt store artifact is *counted* (`store_rejects`) and
//!   transparently recomputed — never silently dropped, never served;
//! * a store that goes unavailable degrades to re-extraction: analysis
//!   never fails because the store did, and the degradation is visible
//!   in `RunStats`;
//! * the cold-tier circuit breaker trips into the run's stats;
//! * the 512-corner acceptance sweep: under a fault plan injecting
//!   transient get/put failures plus one persistently corrupted
//!   artifact, a warm sweep completes bit-identical to the fault-free
//!   run, the corrupt artifact is quarantined, and retry/quarantine
//!   counters surface in the summary;
//! * chaos property test — random fault plans against a warm engine and
//!   an 8-thread sweep never change an answer (`SSTA_CHAOS_SEED`
//!   reseeds the schedules, as CI's store-chaos job does);
//! * the serving layer loses nothing over a faulty store and reports
//!   degradations and retries in its snapshot.

use hier_ssta::core::SstaConfig;
use hier_ssta::engine::{
    BreakerState, CornerGrid, DesignSpec, Engine, EngineRun, FaultInjectingBackend, FaultPlan,
    GridAxis, MemoryBackend, NetworkModel, RemoteBackend, RetryPolicy, ScenarioSet, StorageBackend,
    SweepOptions, SweepSummary, TieredBackend, TieredOptions,
};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::serve::{AnalyzeRequest, ServeOptions, Server};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Four instances of one 4-bit adder, carry-chained — one module
/// fingerprint per extraction-relevant configuration.
fn quad_adder_spec() -> DesignSpec {
    let netlist = generators::ripple_carry_adder(4).expect("adder");
    let mut b = DesignSpec::builder(
        "quad-adder",
        DieRect {
            width: 60.0,
            height: 60.0,
        },
    );
    let m = b.add_module(netlist);
    let u0 = b.add_instance("u0", m, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", m, (25.0, 0.0)).expect("u1");
    let u2 = b.add_instance("u2", m, (0.0, 25.0)).expect("u2");
    let u3 = b.add_instance("u3", m, (25.0, 25.0)).expect("u3");
    b.connect(u0, 0, u1, 8);
    b.connect(u1, 0, u2, 8);
    b.connect(u2, 0, u3, 8);
    for (i, inst) in [u0, u1, u2, u3].into_iter().enumerate() {
        for k in 0..8 {
            b.expose_input(vec![(inst, k)]);
        }
        if i == 0 {
            b.expose_input(vec![(inst, 8)]);
        }
    }
    for k in 0..5 {
        b.expose_output(u3, k);
    }
    b.finish().expect("spec")
}

/// The seed CI pins via `SSTA_CHAOS_SEED`; local runs use the default.
fn chaos_seed() -> u64 {
    std::env::var("SSTA_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x0520_CA05)
}

/// A retry policy tuned for tests: real backoff semantics, negligible
/// wall-clock.
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_micros(50),
        multiplier: 2.0,
        max_delay: Duration::from_millis(1),
        jitter: 0.25,
        seed: chaos_seed(),
    }
}

/// Populates `backend` by running one fault-free analysis, returning
/// the reference run.
fn populate_store(spec: &DesignSpec, backend: Arc<MemoryBackend>) -> EngineRun {
    let mut engine = Engine::new(SstaConfig::paper()).with_backend(backend);
    let run = engine.analyze(spec).expect("fault-free analysis");
    assert!(run.stats.store_writes > 0, "populate must write artifacts");
    run
}

fn assert_bit_identical(clean: &EngineRun, faulty: &EngineRun) {
    assert_eq!(
        clean.timing.po_arrivals, faulty.timing.po_arrivals,
        "faults must change counters, never answers"
    );
    assert_eq!(
        clean.timing.delay.mean().to_bits(),
        faulty.timing.delay.mean().to_bits()
    );
    assert_eq!(
        clean.timing.delay.std_dev().to_bits(),
        faulty.timing.delay.std_dev().to_bits()
    );
}

fn assert_records_bit_identical(clean: &SweepSummary, faulty: &SweepSummary) {
    assert_eq!(clean.records.len(), faulty.records.len());
    for (c, f) in clean.records.iter().zip(&faulty.records) {
        assert_eq!(c.scenario, f.scenario);
        assert_eq!(
            c.mean_ps.to_bits(),
            f.mean_ps.to_bits(),
            "corner `{}` mean drifted under faults",
            c.scenario
        );
        assert_eq!(c.sigma_ps.to_bits(), f.sigma_ps.to_bits());
        assert_eq!(
            c.timing_yield.map(f64::to_bits),
            f.timing_yield.map(f64::to_bits)
        );
    }
}

// ---------------------------------------------------------------------
// Satellite regression: corrupt artifacts are counted and recomputed.
// ---------------------------------------------------------------------

#[test]
fn corrupt_artifact_is_counted_rejected_and_recomputed() {
    let spec = quad_adder_spec();
    let backend = Arc::new(MemoryBackend::new());
    let clean = populate_store(&spec, Arc::clone(&backend));

    // Flip one payload bit in every stored artifact: the envelope still
    // parses, the integrity stamp catches it.
    let keys = backend.list_keys().expect("list");
    assert!(!keys.is_empty());
    for key in &keys {
        let mut bytes = backend.get(key).expect("get").expect("artifact present");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        backend.put(key, &bytes).expect("put corrupt");
    }

    // A fresh engine over the poisoned store: the rejection is counted,
    // the model recomputed, the answer unchanged.
    let mut engine = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&backend));
    let recovered = engine.analyze(&spec).expect("analysis survives corruption");
    assert!(
        recovered.stats.store_rejects >= 1,
        "the rejection must be counted, not silently dropped: {:?}",
        recovered.stats
    );
    assert_eq!(recovered.stats.store_hits, 0, "corrupt bytes never serve");
    assert_eq!(
        recovered.stats.extractions, clean.stats.extractions,
        "every rejected artifact is re-extracted"
    );
    assert!(
        recovered.stats.store_writes >= 1,
        "the recomputed artifact is written back"
    );
    assert_bit_identical(&clean, &recovered);

    // The write-back healed the store: a third engine hits cleanly.
    let mut engine = Engine::new(SstaConfig::paper()).with_backend(backend);
    let healed = engine.analyze(&spec).expect("healed store");
    assert_eq!(healed.stats.store_rejects, 0);
    assert!(healed.stats.store_hits >= 1, "healed artifacts serve again");
    assert_bit_identical(&clean, &healed);
}

// ---------------------------------------------------------------------
// Graceful degradation: an unavailable store never fails analysis.
// ---------------------------------------------------------------------

#[test]
fn unavailable_store_degrades_to_reextraction_and_counts_it() {
    let spec = quad_adder_spec();
    let memory = Arc::new(MemoryBackend::new());
    let clean = populate_store(&spec, Arc::clone(&memory));

    // Every get fails every attempt: reads exhaust their retries and
    // the engine falls back to extraction.
    let plan = FaultPlan {
        get_error_rate: 1.0,
        seed: chaos_seed(),
        ..FaultPlan::none()
    };
    let remote = Arc::new(RemoteBackend::new(
        FaultInjectingBackend::new(memory, plan),
        NetworkModel::perfect(),
        fast_policy(),
    ));
    let mut engine = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&remote));
    let run = engine
        .analyze(&spec)
        .expect("analysis survives a dead store");
    assert!(
        run.stats.store_degraded >= 1,
        "the degradation must be counted: {:?}",
        run.stats
    );
    assert!(
        run.stats.store_retries >= 1,
        "the failed reads were retried first: {:?}",
        run.stats
    );
    assert_eq!(run.stats.store_hits, 0);
    assert_eq!(run.stats.extractions, clean.stats.extractions);
    assert_bit_identical(&clean, &run);
}

#[test]
fn cold_tier_breaker_trips_surface_in_run_stats() {
    let spec = quad_adder_spec();
    let memory = Arc::new(MemoryBackend::new());
    let clean = populate_store(&spec, Arc::clone(&memory));

    // Dead cold tier under an eager breaker: the first failed read
    // trips it, and analysis still completes from re-extraction.
    let plan = FaultPlan {
        get_error_rate: 1.0,
        seed: chaos_seed(),
        ..FaultPlan::none()
    };
    let remote = RemoteBackend::new(
        FaultInjectingBackend::new(memory, plan),
        NetworkModel::perfect(),
        fast_policy(),
    );
    let tiered = Arc::new(TieredBackend::new(
        remote,
        TieredOptions {
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_secs(30),
            ..TieredOptions::default()
        },
    ));
    let mut engine = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&tiered));
    let run = engine
        .analyze(&spec)
        .expect("analysis survives a tripped breaker");
    assert!(
        run.stats.store_breaker_trips >= 1,
        "the trip must be counted: {:?}",
        run.stats
    );
    assert_ne!(
        run.stats.store_breaker,
        BreakerState::Closed,
        "the gauge shows the breaker is not closed"
    );
    assert!(run.stats.store_degraded >= 1);
    assert_bit_identical(&clean, &run);
}

// ---------------------------------------------------------------------
// The 512-corner acceptance sweep.
// ---------------------------------------------------------------------

fn acceptance_grid() -> CornerGrid {
    let clocks: Vec<f64> = (0..32).map(|i| 800.0 + 25.0 * i as f64).collect();
    CornerGrid::builder()
        .axis(GridAxis::sigma_scales(
            "process",
            &[0.85, 0.9, 0.95, 1.0, 1.05, 1.1, 1.15, 1.2],
        ))
        .axis(GridAxis::modes("mode"))
        .axis(GridAxis::yield_targets("clock", &clocks))
        .finish()
        .expect("grid")
}

#[test]
fn faulty_warm_512_corner_sweep_is_bit_identical_and_quarantines_corruption() {
    let spec = quad_adder_spec();
    let grid = acceptance_grid();
    assert_eq!(grid.len(), 512);
    let options = SweepOptions {
        workers: 8,
        ..SweepOptions::default()
    };

    // The fault-free reference: a cold sweep that also warms the store.
    let memory = Arc::new(MemoryBackend::new());
    let reference = Engine::new(SstaConfig::paper())
        .with_backend(Arc::clone(&memory))
        .analyze_sweep(&spec, &grid, &options)
        .expect("fault-free sweep");
    assert_eq!(reference.scenarios, 512);
    assert!(reference.extractions >= 1);

    // The faulty stack: hot tier over retrying remote over a transport
    // injecting transient failures on well over 10% of gets and puts —
    // plus one artifact corrupted at rest.
    let plan = FaultPlan {
        get_error_rate: 0.25,
        put_error_rate: 0.25,
        corrupt_read_rate: 0.10,
        seed: chaos_seed(),
        ..FaultPlan::none()
    };
    let remote = Arc::new(RemoteBackend::new(
        FaultInjectingBackend::new(Arc::clone(&memory), plan),
        NetworkModel::perfect(),
        fast_policy(),
    ));
    let stack = Arc::new(TieredBackend::with_defaults(Arc::clone(&remote)));
    let poisoned = memory.list_keys().expect("list")[0].clone();
    assert!(
        remote
            .transport()
            .corrupt_stored(&poisoned)
            .expect("corrupt at rest"),
        "the poisoned key exists"
    );

    // The warm sweep over the faulty stack: same answers, bit for bit.
    let faulty = Engine::new(SstaConfig::paper())
        .with_backend(Arc::clone(&stack))
        .analyze_sweep(&spec, &grid, &options)
        .expect("sweep survives the fault plan");
    assert_eq!(faulty.scenarios, 512);
    assert_records_bit_identical(&reference, &faulty);

    // The injuries are visible, not silent.
    assert!(
        faulty.store_quarantined >= 1,
        "the corrupt artifact was quarantined: {faulty}"
    );
    assert!(
        faulty.store_retries >= 1,
        "transient failures were retried: {faulty}"
    );
    assert!(
        remote.transport().counters().total() >= 1,
        "the plan injected faults"
    );
    // The quarantined bytes were never served (the bit-identity above
    // already proves it); re-extraction re-put a clean artifact, which
    // supersedes the quarantine entry and decodes again.
    let healed = remote
        .get(&poisoned)
        .expect("healed get")
        .expect("re-put artifact present");
    assert!(!healed.is_empty());
    assert!(remote.quarantined_bytes(&poisoned).is_none());
}

// ---------------------------------------------------------------------
// Chaos property test: no fault plan changes an answer.
// ---------------------------------------------------------------------

fn chaos_grid() -> CornerGrid {
    CornerGrid::builder()
        .axis(GridAxis::sigma_scales("process", &[1.0, 1.15]))
        .axis(GridAxis::modes("mode"))
        .axis(GridAxis::yield_targets("clock", &[900.0, 1000.0, 1100.0]))
        .finish()
        .expect("grid")
}

/// Strategy: permille-drawn fault rates (the vendored proptest has no
/// float ranges) plus a per-case seed folded into `SSTA_CHAOS_SEED`.
fn random_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0u32..450, 0u32..450, 0u32..300),
        (0u32..300, 0u32..250, 0u32..u32::MAX),
    )
        .prop_map(|((get, put, corrupt), (torn, stuck, seed))| FaultPlan {
            seed: chaos_seed() ^ u64::from(seed),
            get_error_rate: f64::from(get) / 1000.0,
            put_error_rate: f64::from(put) / 1000.0,
            corrupt_read_rate: f64::from(corrupt) / 1000.0,
            torn_write_rate: f64::from(torn) / 1000.0,
            stuck_key_rate: f64::from(stuck) / 1000.0,
            latency: Duration::ZERO,
        })
}

proptest! {
    // Each case runs a fault-free and a faulty 8-thread sweep.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn random_fault_plans_never_change_sweep_answers(plan in random_plan()) {
        let spec = quad_adder_spec();
        let grid = chaos_grid();
        let options = SweepOptions { workers: 8, ..SweepOptions::default() };

        let memory = Arc::new(MemoryBackend::new());
        let reference = Engine::new(SstaConfig::paper())
            .with_backend(Arc::clone(&memory))
            .analyze_sweep(&spec, &grid, &options)
            .expect("fault-free sweep");

        let stack = Arc::new(TieredBackend::with_defaults(RemoteBackend::new(
            FaultInjectingBackend::new(memory, plan),
            NetworkModel::perfect(),
            fast_policy(),
        )));
        let faulty = Engine::new(SstaConfig::paper())
            .with_backend(stack)
            .analyze_sweep(&spec, &grid, &options)
            .expect("sweep survives any fault plan");

        prop_assert_eq!(faulty.scenarios, grid.len());
        assert_records_bit_identical(&reference, &faulty);
    }
}

// ---------------------------------------------------------------------
// Serving: a faulty store loses no requests.
// ---------------------------------------------------------------------

#[test]
fn serving_over_a_faulty_store_loses_nothing_and_reports_degradations() {
    let spec = Arc::new(quad_adder_spec());
    let memory = Arc::new(MemoryBackend::new());
    populate_store(&spec, Arc::clone(&memory));

    // A dead read path: every store get degrades to re-extraction.
    let plan = FaultPlan {
        get_error_rate: 1.0,
        seed: chaos_seed(),
        ..FaultPlan::none()
    };
    let stack = Arc::new(RemoteBackend::new(
        FaultInjectingBackend::new(memory, plan),
        NetworkModel::perfect(),
        fast_policy(),
    ));
    let server = Server::start(
        SstaConfig::paper(),
        stack,
        ServeOptions {
            workers: 4,
            ..ServeOptions::default()
        },
    );

    let tickets: Vec<_> = (0..6)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(&spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    for ticket in tickets {
        let response = ticket.wait();
        assert!(
            response.outcome.is_completed(),
            "a faulty store must not fail requests: {:?}",
            response.outcome.label()
        );
        let run = response.outcome.run().expect("completed batch");
        assert_eq!(run.scenarios.len(), 1);
    }

    let snapshot = server.shutdown();
    assert_eq!(snapshot.lost(), 0, "no request is ever lost: {snapshot}");
    assert_eq!(snapshot.completed, snapshot.submitted);
    assert!(
        snapshot.degraded >= 1,
        "degradations surface in the snapshot: {snapshot}"
    );
    assert!(
        snapshot.store_retries >= 1,
        "retries surface in the snapshot: {snapshot}"
    );
}
