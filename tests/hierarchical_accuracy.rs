//! The paper's central claims, verified end to end at test scale on the
//! Fig. 7 topology (four cross-connected multipliers, abutted):
//!
//! 1. the proposed variable-replacement analysis matches flattened Monte
//!    Carlo closely;
//! 2. sharing only global correlation visibly *underestimates* the design
//!    delay spread;
//! 3. module placement distance modulates the effect.

use hier_ssta::core::{
    analyze, CorrelationMode, Design, DesignBuilder, ExtractOptions, ModuleContext, SstaConfig,
};
use hier_ssta::mc::compare::ks_against_form;
use hier_ssta::mc::{flat_design_delay, McOptions};
use hier_ssta::netlist::{generators, DieRect};
use std::sync::Arc;

const WIDTH: usize = 5;

fn quad_design() -> Design {
    let config = SstaConfig::paper();
    let ctx = Arc::new(
        ModuleContext::characterize(
            generators::array_multiplier(WIDTH).expect("multiplier"),
            &config,
        )
        .expect("characterize"),
    );
    let model = Arc::new(
        ctx.extract_model(&ExtractOptions::default())
            .expect("extract"),
    );
    let (w, h) = model.geometry().extent_um();
    let mut b = DesignBuilder::new(
        "quad",
        DieRect {
            width: 2.0 * w,
            height: 2.0 * h,
        },
        config,
    );
    let m0 = b
        .add_instance("m0", model.clone(), Some(ctx.clone()), (0.0, 0.0))
        .expect("place");
    let m1 = b
        .add_instance("m1", model.clone(), Some(ctx.clone()), (0.0, h))
        .expect("place");
    let m2 = b
        .add_instance("m2", model.clone(), Some(ctx.clone()), (w, 0.0))
        .expect("place");
    let m3 = b
        .add_instance("m3", model.clone(), Some(ctx), (w, h))
        .expect("place");
    for k in 0..WIDTH {
        b.connect(m0, k, m2, k, 0.0).expect("wire");
        b.connect(m1, k, m2, WIDTH + k, 0.0).expect("wire");
        b.connect(m0, WIDTH + k, m3, k, 0.0).expect("wire");
        b.connect(m1, WIDTH + k, m3, WIDTH + k, 0.0).expect("wire");
    }
    for inst in [m0, m1] {
        for k in 0..2 * WIDTH {
            b.expose_input(vec![(inst, k)]).expect("pi");
        }
    }
    for inst in [m2, m3] {
        for k in 0..2 * WIDTH {
            b.expose_output(inst, k).expect("po");
        }
    }
    b.finish().expect("design")
}

#[test]
fn proposed_method_tracks_monte_carlo() {
    let design = quad_design();
    let proposed = analyze(&design, CorrelationMode::Proposed).expect("analysis");
    let mc = flat_design_delay(
        &design,
        &McOptions {
            samples: 4000,
            ..Default::default()
        },
    )
    .expect("MC");

    let mean_err = (proposed.delay.mean() - mc.mean()).abs() / mc.mean();
    assert!(mean_err < 0.02, "mean error {mean_err}");
    let sigma_err = (proposed.delay.std_dev() - mc.std_dev()).abs() / mc.std_dev();
    assert!(sigma_err < 0.10, "sigma error {sigma_err}");
    assert!(
        ks_against_form(&mc, &proposed.delay) < 0.05,
        "KS distance too large"
    );
}

#[test]
fn global_only_underestimates_the_spread() {
    let design = quad_design();
    let proposed = analyze(&design, CorrelationMode::Proposed).expect("analysis");
    let global = analyze(&design, CorrelationMode::GlobalOnly).expect("analysis");
    let mc = flat_design_delay(
        &design,
        &McOptions {
            samples: 4000,
            ..Default::default()
        },
    )
    .expect("MC");

    // The ordering the paper's Fig. 7 shows.
    assert!(global.delay.std_dev() < proposed.delay.std_dev());
    assert!(
        global.delay.std_dev() < 0.95 * mc.std_dev(),
        "global-only sigma {} should clearly undershoot MC {}",
        global.delay.std_dev(),
        mc.std_dev()
    );
    // And the proposed method is the better fit by KS distance.
    let ks_prop = ks_against_form(&mc, &proposed.delay);
    let ks_glob = ks_against_form(&mc, &global.delay);
    assert!(
        ks_prop < ks_glob,
        "proposed KS {ks_prop} should beat global-only KS {ks_glob}"
    );
}

#[test]
fn analysis_is_deterministic() {
    let design = quad_design();
    let a = analyze(&design, CorrelationMode::Proposed).expect("analysis");
    let b = analyze(&design, CorrelationMode::Proposed).expect("analysis");
    assert_eq!(a.delay.mean(), b.delay.mean());
    assert_eq!(a.delay.std_dev(), b.delay.std_dev());
}
