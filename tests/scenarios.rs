//! The scenario-sweep batch contract, end to end:
//!
//! * fingerprint disjointness matrix — scenarios differing only in
//!   analysis-level (non-extract) knobs share store keys; scenarios
//!   differing in extraction-relevant config get distinct keys;
//! * a parallel batch of 8 scenarios sharing one module fingerprint
//!   performs exactly one extraction (single-flight dedup, verified by
//!   `BatchStats`), and batch results are bit-identical to running the
//!   scenarios serially;
//! * a warm sweep over ISCAS-85 c880 performs at least one and at most
//!   `distinct_fingerprints` extractions and matches serial runs bit
//!   for bit;
//! * analysis-level overlays (correlation mode, yield target) actually
//!   change the *analysis*, just never the cache keys.

use hier_ssta::core::{
    module_fingerprint, yield_analysis, CorrelationMode, ExtractOptions, ScenarioOverlay,
    SstaConfig,
};
use hier_ssta::engine::{
    DesignSpec, Engine, EngineError, EngineOptions, MemoryBackend, ModuleId, Scenario, ScenarioSet,
    StorageBackend,
};
use hier_ssta::netlist::{generators, DieRect, Netlist};
use std::sync::Arc;

/// Four instances of one 4-bit adder, carry-chained.
fn quad_adder_spec() -> (DesignSpec, ModuleId) {
    let netlist = generators::ripple_carry_adder(4).expect("adder");
    let mut b = DesignSpec::builder(
        "quad-adder",
        DieRect {
            width: 60.0,
            height: 60.0,
        },
    );
    let m = b.add_module(netlist);
    let u0 = b.add_instance("u0", m, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", m, (25.0, 0.0)).expect("u1");
    let u2 = b.add_instance("u2", m, (0.0, 25.0)).expect("u2");
    let u3 = b.add_instance("u3", m, (25.0, 25.0)).expect("u3");
    b.connect(u0, 0, u1, 8);
    b.connect(u1, 0, u2, 8);
    b.connect(u2, 0, u3, 8);
    for (i, inst) in [u0, u1, u2, u3].into_iter().enumerate() {
        for k in 0..8 {
            b.expose_input(vec![(inst, k)]);
        }
        if i == 0 {
            b.expose_input(vec![(inst, 8)]);
        }
    }
    for k in 0..5 {
        b.expose_output(u3, k);
    }
    (b.finish().expect("spec"), m)
}

/// A single-instance spec wrapping one netlist, all ports exposed, on a
/// die rounded up to whole grid pitches.
fn single_module_spec(netlist: Netlist) -> DesignSpec {
    let config = SstaConfig::paper();
    let placed = hier_ssta::netlist::Placement::rows(&netlist, config.cell_pitch_um).die();
    let pitch = config.grid_pitch_um();
    let die = DieRect {
        width: (placed.width / pitch).ceil().max(1.0) * pitch,
        height: (placed.height / pitch).ceil().max(1.0) * pitch,
    };
    let n_inputs = netlist.n_inputs();
    let n_outputs = netlist.n_outputs();
    let mut b = DesignSpec::builder(netlist.name().to_owned(), die);
    let m = b.add_module(netlist);
    let inst = b.add_instance("u0", m, (0.0, 0.0)).expect("place");
    for k in 0..n_inputs {
        b.expose_input(vec![(inst, k)]);
    }
    for k in 0..n_outputs {
        b.expose_output(inst, k);
    }
    b.finish().expect("spec")
}

/// A config variant with 1.5x sigmas (extraction-relevant).
fn high_sigma_config() -> SstaConfig {
    let mut config = SstaConfig::paper();
    for p in &mut config.parameters {
        p.sigma_rel = (p.sigma_rel * 1.5).min(0.9);
    }
    config
}

/// Extraction options with a looser pruning threshold
/// (extraction-relevant).
fn loose_delta_options() -> ExtractOptions {
    ExtractOptions {
        delta: 0.08,
        ..ExtractOptions::default()
    }
}

/// Runs each scenario of `set` serially on its own fresh engine (shared
/// backend optional), via the plain single-run `analyze` path with the
/// overlay resolved by hand — the reference the batch must match bit for
/// bit.
fn serial_reference(
    spec: &DesignSpec,
    set: &ScenarioSet,
    backend: Option<Arc<MemoryBackend>>,
) -> Vec<hier_ssta::engine::EngineRun> {
    let base_config = SstaConfig::paper();
    let base_options = EngineOptions::default();
    set.iter()
        .map(|s| {
            let (config, extract, mode) =
                s.overlay
                    .resolve(&base_config, &base_options.extract, base_options.mode);
            let options = EngineOptions {
                extract,
                mode,
                ..EngineOptions::default()
            };
            let mut engine = Engine::with_options(config, options);
            if let Some(b) = &backend {
                engine = engine.with_backend(Arc::clone(b));
            }
            engine.analyze(spec).expect("serial scenario analysis")
        })
        .collect()
}

#[test]
fn fingerprint_disjointness_matrix() {
    // Scenario -> expected key group. Same group = same store keys.
    let netlist = generators::ripple_carry_adder(4).expect("adder");
    let base_config = SstaConfig::paper();
    let base_extract = ExtractOptions::default();
    let matrix: Vec<(&str, ScenarioOverlay, usize)> = vec![
        ("nominal", ScenarioOverlay::new(), 0),
        (
            "global-only",
            ScenarioOverlay::new().with_mode(CorrelationMode::GlobalOnly),
            0,
        ),
        ("yield", ScenarioOverlay::new().with_yield_target(1500.0), 0),
        (
            "same-config-restated",
            // Replacing the config with an *equal* value must not re-key:
            // keys are content-derived, never identity-derived.
            ScenarioOverlay::new().with_config(SstaConfig::paper()),
            0,
        ),
        (
            "high-sigma",
            ScenarioOverlay::new().with_config(high_sigma_config()),
            1,
        ),
        (
            "loose-delta",
            ScenarioOverlay::new().with_extract(loose_delta_options()),
            2,
        ),
        (
            "high-sigma-loose-delta",
            ScenarioOverlay::new()
                .with_config(high_sigma_config())
                .with_extract(loose_delta_options()),
            3,
        ),
    ];

    let keys: Vec<(usize, String)> = matrix
        .iter()
        .map(|(_, overlay, group)| {
            let (config, extract, _) =
                overlay.resolve(&base_config, &base_extract, CorrelationMode::Proposed);
            (
                *group,
                module_fingerprint(&netlist, &config, &extract).to_hex(),
            )
        })
        .collect();
    for (i, (gi, ki)) in keys.iter().enumerate() {
        for (j, (gj, kj)) in keys.iter().enumerate().skip(i + 1) {
            if gi == gj {
                assert_eq!(
                    ki, kj,
                    "{} and {} must share store keys",
                    matrix[i].0, matrix[j].0
                );
            } else {
                assert_ne!(
                    ki, kj,
                    "{} and {} must have disjoint store keys",
                    matrix[i].0, matrix[j].0
                );
            }
        }
    }

    // The engine agrees: a batch over the full matrix resolves exactly
    // one fingerprint per group and extracts each group once.
    let (spec, _) = quad_adder_spec();
    let set: ScenarioSet = matrix
        .iter()
        .map(|(name, overlay, _)| Scenario::with_overlay(*name, overlay.clone()))
        .collect();
    let mut engine = Engine::new(SstaConfig::paper());
    let batch = engine.analyze_batch(&spec, &set).expect("batch");
    assert_eq!(batch.stats.scenarios, 7);
    assert_eq!(batch.stats.distinct_fingerprints, 4);
    assert_eq!(batch.stats.extractions, 4, "one extraction per key group");
}

#[test]
fn eight_parallel_scenarios_extract_once() {
    // Eight scenarios, all resolving to the same extraction inputs
    // (overlays touch only analysis-level knobs), racing in parallel:
    // the single-flight table must collapse them to exactly one
    // extraction.
    let (spec, _) = quad_adder_spec();
    let mut set = ScenarioSet::new();
    for i in 0..8 {
        let mut s = Scenario::new(format!("s{i}")).with_yield_target(1200.0 + 50.0 * i as f64);
        if i % 2 == 1 {
            s = s.with_mode(CorrelationMode::GlobalOnly);
        }
        set.push(s);
    }

    let mut engine = Engine::with_options(
        SstaConfig::paper(),
        EngineOptions {
            threads: 8,
            ..EngineOptions::default()
        },
    );
    let batch = engine.analyze_batch(&spec, &set).expect("batch");
    assert_eq!(batch.stats.scenarios, 8);
    assert_eq!(batch.stats.distinct_fingerprints, 1);
    assert_eq!(
        batch.stats.extractions, 1,
        "single-flight: one extraction for the whole parallel batch"
    );
    // Every other scenario either coalesced onto the in-flight
    // extraction or (if scheduled after it finished) hit the session
    // cache; none extracted.
    assert_eq!(batch.stats.coalesced + batch.stats.memory_hits, 7);

    // Bit-identical to running the scenarios serially on fresh engines.
    let serial = serial_reference(&spec, &set, None);
    for (batch_run, serial_run) in batch.scenarios.iter().zip(&serial) {
        assert_eq!(batch_run.timing.po_arrivals, serial_run.timing.po_arrivals);
        assert_eq!(
            batch_run.timing.delay.mean().to_bits(),
            serial_run.timing.delay.mean().to_bits()
        );
        assert_eq!(
            batch_run.timing.delay.std_dev().to_bits(),
            serial_run.timing.delay.std_dev().to_bits()
        );
    }

    // The mode overlays were applied: proposed and global-only scenarios
    // disagree on sigma, while equal-mode scenarios agree bit-exactly.
    let proposed = &batch.scenarios[0].timing;
    let global_only = &batch.scenarios[1].timing;
    assert_eq!(proposed.mode, CorrelationMode::Proposed);
    assert_eq!(global_only.mode, CorrelationMode::GlobalOnly);
    assert_ne!(
        proposed.delay.std_dev().to_bits(),
        global_only.delay.std_dev().to_bits()
    );
    assert_eq!(
        batch.scenarios[0].timing.po_arrivals,
        batch.scenarios[2].timing.po_arrivals
    );

    // Yield targets were read off the final distribution per scenario.
    for (i, run) in batch.scenarios.iter().enumerate() {
        let y = run.timing_yield.expect("yield requested");
        let expected = yield_analysis::timing_yield(&run.timing.delay, 1200.0 + 50.0 * i as f64);
        assert_eq!(y.to_bits(), expected.to_bits());
    }
}

#[test]
fn warm_sweep_over_c880_extracts_at_most_distinct_fingerprints() {
    let spec = single_module_spec(generators::iscas85("c880").expect("c880"));
    let backend = Arc::new(MemoryBackend::new());

    // Warm the store with the nominal configuration.
    let warmup = Engine::new(SstaConfig::paper())
        .with_backend(Arc::clone(&backend))
        .analyze(&spec)
        .expect("warmup");
    assert_eq!(warmup.stats.extractions, 1);
    assert_eq!(warmup.stats.store_writes, 1);

    // Four scenarios: three share the nominal fingerprint (analysis-level
    // overlays only), one re-keys via a looser pruning threshold.
    let set = ScenarioSet::new()
        .with(Scenario::new("nominal"))
        .with(Scenario::new("global-only").with_mode(CorrelationMode::GlobalOnly))
        .with(Scenario::new("yield").with_yield_target(2000.0))
        .with(Scenario::new("loose-delta").with_extract(loose_delta_options()));

    let mut engine = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&backend));
    let batch = engine.analyze_batch(&spec, &set).expect("warm sweep");
    assert_eq!(batch.stats.scenarios, 4);
    assert_eq!(batch.stats.distinct_fingerprints, 2);
    assert!(
        batch.stats.extractions >= 1,
        "the re-keyed scenario must extract"
    );
    assert!(
        batch.stats.extractions <= batch.stats.distinct_fingerprints,
        "a batch never extracts more than its distinct fingerprints"
    );
    // The nominal fingerprint family is served from the warm store, not
    // re-extracted.
    assert!(batch.stats.store_hits >= 1);

    // Bit-identical to running the scenarios serially against the same
    // library.
    let serial = serial_reference(&spec, &set, Some(Arc::clone(&backend)));
    for (batch_run, serial_run) in batch.scenarios.iter().zip(&serial) {
        assert_eq!(
            batch_run.timing.po_arrivals, serial_run.timing.po_arrivals,
            "scenario `{}` must match its serial run bit for bit",
            batch_run.scenario
        );
        assert_eq!(
            batch_run.timing.delay.mean().to_bits(),
            serial_run.timing.delay.mean().to_bits()
        );
    }

    // The loose-delta model is a genuinely different artifact.
    assert_ne!(
        batch
            .scenario("nominal")
            .expect("nominal run")
            .timing
            .delay
            .mean()
            .to_bits(),
        batch
            .scenario("loose-delta")
            .expect("loose-delta run")
            .timing
            .delay
            .mean()
            .to_bits()
    );
}

#[test]
fn batch_with_config_overlays_matches_serial_runs() {
    let (spec, _) = quad_adder_spec();
    let set = ScenarioSet::new()
        .with(Scenario::new("nominal").with_yield_target(1500.0))
        .with(Scenario::new("high-sigma").with_config(high_sigma_config()))
        .with(Scenario::new("loose-delta").with_extract(loose_delta_options()))
        .with(Scenario::new("global-only").with_mode(CorrelationMode::GlobalOnly));

    let mut engine = Engine::new(SstaConfig::paper());
    let batch = engine.analyze_batch(&spec, &set).expect("batch");
    assert_eq!(batch.stats.distinct_fingerprints, 3);
    assert_eq!(batch.stats.extractions, 3);

    let serial = serial_reference(&spec, &set, None);
    for (batch_run, serial_run) in batch.scenarios.iter().zip(&serial) {
        assert_eq!(
            batch_run.timing.po_arrivals, serial_run.timing.po_arrivals,
            "scenario `{}` must match its serial run bit for bit",
            batch_run.scenario
        );
    }

    // Higher sigmas must widen the distribution.
    let nominal = batch.scenario("nominal").expect("nominal");
    let high = batch.scenario("high-sigma").expect("high-sigma");
    assert!(high.timing.delay.std_dev() > nominal.timing.delay.std_dev());

    // Scenario labels and order are preserved.
    let names: Vec<&str> = batch
        .scenarios
        .iter()
        .map(|s| s.scenario.as_str())
        .collect();
    assert_eq!(
        names,
        ["nominal", "high-sigma", "loose-delta", "global-only"]
    );
}

#[test]
fn session_cache_is_shared_across_batches() {
    // A second sweep on the same engine resolves everything from memory.
    let (spec, _) = quad_adder_spec();
    let set = ScenarioSet::new()
        .with(Scenario::new("nominal"))
        .with(Scenario::new("global-only").with_mode(CorrelationMode::GlobalOnly));
    let mut engine = Engine::new(SstaConfig::paper());
    let cold = engine.analyze_batch(&spec, &set).expect("cold batch");
    assert_eq!(cold.stats.extractions, 1);

    let warm = engine.analyze_batch(&spec, &set).expect("warm batch");
    assert_eq!(warm.stats.extractions, 0);
    assert_eq!(warm.stats.coalesced, 0);
    assert_eq!(
        warm.stats.memory_hits, 2,
        "one session-cache hit per scenario"
    );
    for (c, w) in cold.scenarios.iter().zip(&warm.scenarios) {
        assert_eq!(c.timing.po_arrivals, w.timing.po_arrivals);
    }
}

#[test]
fn invalidate_drops_overlay_keyed_models_too() {
    // A module resolved under several scenario overlays is cached under
    // several keys; invalidating it must drop all of them from both
    // tiers, not just the base-configuration key.
    let (spec, m) = quad_adder_spec();
    let backend = Arc::new(MemoryBackend::new());
    let set = ScenarioSet::new()
        .with(Scenario::new("nominal"))
        .with(Scenario::new("high-sigma").with_config(high_sigma_config()))
        .with(Scenario::new("loose-delta").with_extract(loose_delta_options()));

    let mut engine = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&backend));
    let first = engine.analyze_batch(&spec, &set).expect("first batch");
    assert_eq!(first.stats.extractions, 3);
    assert_eq!(backend.len().expect("store len"), 3);

    assert!(engine.invalidate(&spec, m).expect("invalidate"));
    assert_eq!(
        backend.len().expect("store len"),
        0,
        "every overlay's artifact is removed"
    );

    let second = engine.analyze_batch(&spec, &set).expect("second batch");
    assert_eq!(
        second.stats.extractions, 3,
        "no scenario may be served a stale invalidated model"
    );
    assert_eq!(second.stats.memory_hits, 0);
    assert_eq!(second.stats.store_hits, 0);
    for (a, b) in first.scenarios.iter().zip(&second.scenarios) {
        assert_eq!(a.timing.po_arrivals, b.timing.po_arrivals);
    }
}

#[test]
fn empty_scenario_sets_are_rejected() {
    let (spec, _) = quad_adder_spec();
    let mut engine = Engine::new(SstaConfig::paper());
    assert!(matches!(
        engine.analyze_batch(&spec, &ScenarioSet::new()),
        Err(EngineError::Spec { .. })
    ));
}

#[test]
fn analyze_is_a_single_scenario_batch() {
    // The thin-wrapper contract: `analyze` and a one-scenario batch
    // produce bit-identical timing and the same accounting.
    let (spec, _) = quad_adder_spec();
    let mut a = Engine::new(SstaConfig::paper());
    let plain = a.analyze(&spec).expect("plain analyze");

    let mut b = Engine::new(SstaConfig::paper());
    let batch = b
        .analyze_batch(&spec, &ScenarioSet::baseline())
        .expect("baseline batch");
    let run = &batch.scenarios[0];
    assert_eq!(plain.timing.po_arrivals, run.timing.po_arrivals);
    assert_eq!(plain.stats.extractions, run.stats.extractions);
    assert_eq!(plain.stats.distinct_modules, run.stats.distinct_modules);
    assert_eq!(plain.stats.memory_hits, run.stats.memory_hits);
}
