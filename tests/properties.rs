//! Property-based tests (proptest) of the core invariants:
//!
//! * canonical-form algebra (moment identities, bounds, symmetry);
//! * graph reduction preserves the statistical delay matrix;
//! * PCA round trips covariance;
//! * variable replacement preserves moments for random module placements.

use hier_ssta::core::CanonicalForm;
use hier_ssta::math::{cholesky, Matrix, PcaBasis, PcaOptions};
use proptest::prelude::*;

fn coeff() -> impl Strategy<Value = f64> {
    -2.0..2.0f64
}

fn form(n_globals: usize, n_locals: usize) -> impl Strategy<Value = CanonicalForm> {
    (
        10.0..500.0f64,
        proptest::collection::vec(coeff(), n_globals),
        proptest::collection::vec(coeff(), n_locals),
        0.0..3.0f64,
    )
        .prop_map(|(nom, g, l, r)| CanonicalForm::from_parts(nom, g, l, r).expect("finite"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sum_variance_identity(a in form(2, 5), b in form(2, 5)) {
        // Var(A+B) = Var(A) + Var(B) + 2 Cov(A,B) must hold exactly.
        let s = a.sum(&b);
        let want = a.variance() + b.variance() + 2.0 * a.covariance(&b);
        prop_assert!((s.variance() - want).abs() < 1e-9 * want.abs().max(1.0));
        prop_assert!((s.mean() - a.mean() - b.mean()).abs() < 1e-9);
    }

    #[test]
    fn sum_is_commutative(a in form(2, 5), b in form(2, 5)) {
        let ab = a.sum(&b);
        let ba = b.sum(&a);
        prop_assert_eq!(ab.mean(), ba.mean());
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-12);
    }

    #[test]
    fn max_dominates_means(a in form(2, 5), b in form(2, 5)) {
        let m = a.maximum(&b);
        prop_assert!(m.mean() >= a.mean().max(b.mean()) - 1e-9);
    }

    #[test]
    fn max_is_symmetric_in_distribution(a in form(2, 5), b in form(2, 5)) {
        let ab = a.maximum(&b);
        let ba = b.maximum(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7 * ab.variance().max(1.0));
    }

    #[test]
    fn max_with_self_matches_collapsed_random_semantics(a in form(2, 5)) {
        // Under the collapsed-random convention a clone's private random
        // part is an independent variable, so max(A, A') is the max of
        // two variables that differ only in ±a_r noise: the mean grows by
        // exactly θ·φ(0) with θ = √2·a_r (Clark with α = 0).
        let m = a.maximum(&a.clone());
        let theta = std::f64::consts::SQRT_2 * a.random();
        let want = a.mean() + theta * hier_ssta::math::normal_pdf(0.0);
        prop_assert!((m.mean() - want).abs() < 1e-9, "mean {} want {}", m.mean(), want);
        // With a_r = 0 the identity is exact.
        let b = CanonicalForm::from_parts(
            a.mean(), a.globals().to_vec(), a.locals().to_vec(), 0.0,
        ).expect("finite");
        let mb = b.maximum(&b.clone());
        prop_assert!((mb.mean() - b.mean()).abs() < 1e-9);
        prop_assert!((mb.variance() - b.variance()).abs() < 1e-9);
    }

    #[test]
    fn covariance_is_symmetric_and_bounded(a in form(2, 5), b in form(2, 5)) {
        prop_assert_eq!(a.covariance(&b), b.covariance(&a));
        // |Cov| <= sigma_a * sigma_b (Cauchy-Schwarz on shared variables).
        prop_assert!(a.covariance(&b).abs() <= a.std_dev() * b.std_dev() + 1e-9);
    }

    #[test]
    fn cdf_quantile_round_trip(a in form(2, 5), p in 0.01..0.99f64) {
        prop_assume!(a.std_dev() > 1e-6);
        let t = a.quantile(p);
        prop_assert!((a.cdf(t) - p).abs() < 1e-8);
    }

    #[test]
    fn negation_preserves_variance(a in form(2, 5)) {
        let n = a.negated();
        prop_assert_eq!(n.variance(), a.variance());
        prop_assert_eq!(n.mean(), -a.mean());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PCA of any synthetic SPD covariance reconstructs it.
    #[test]
    fn pca_reconstructs_covariance(seed_entries in proptest::collection::vec(-1.0..1.0f64, 25)) {
        let b = Matrix::from_vec(5, 5, seed_entries).expect("5x5");
        // A = B Bᵀ + I is symmetric positive definite.
        let mut a = b.matmul(&b.transposed()).expect("square");
        for i in 0..5 {
            a[(i, i)] += 1.0;
        }
        prop_assert!(cholesky::is_positive_definite(&a));
        let pca = PcaBasis::from_covariance(&a, PcaOptions::default()).expect("pca");
        let back = pca.transform().matmul(&pca.transform().transposed()).expect("mul");
        prop_assert!(back.max_abs_diff(&a).expect("shape") < 1e-7);
    }

    /// Serial/parallel reduction preserves the statistical delay matrix of
    /// random layered graphs (mean within Clark re-association noise).
    #[test]
    fn reduction_preserves_random_graph_delay_matrix(seed in 0u64..500) {
        use hier_ssta::core::{ModuleContext, SstaConfig, ExtractOptions};
        use hier_ssta::netlist::generators::{generate_layered, LayeredSpec};

        let spec = LayeredSpec {
            name: format!("prop-{seed}"),
            n_inputs: 6,
            n_outputs: 4,
            n_gates: 40,
            pin_connections: 85,
            depth: 6,
            seed,
        };
        let netlist = generate_layered(&spec).expect("generator");
        let ctx = ModuleContext::characterize(netlist, &SstaConfig::paper()).expect("ctx");
        // delta = 0: merges only, no pruning.
        let model = ctx
            .extract_model(&ExtractOptions { delta: 0.0, ..Default::default() })
            .expect("extract");
        let orig = ctx.delay_matrix().expect("matrix");
        let red = model.delay_matrix().expect("matrix");
        let (_, mismatched) = orig.compare_with(&red, |d| d.mean());
        prop_assert_eq!(mismatched, 0);
        for (i, j, d) in orig.iter() {
            let r = red.get(i, j).expect("connected");
            let rel = (d.mean() - r.mean()).abs() / d.mean();
            prop_assert!(rel < 0.015, "pair ({}, {}) drift {}", i, j, rel);
        }
    }
}
