//! SDF interchange contract:
//!
//! * the canonical writer is a fixpoint under parsing — for arbitrary
//!   generated files, write → parse → write is byte-identical
//!   (property-tested);
//! * exporting real extracted models round-trips the same way;
//! * approximate (no-`SSTM`) imports analyze within tolerance of the
//!   exact models in global-only correlation mode;
//! * malformed SDF is rejected with positioned errors.

use hier_ssta::core::{
    analyze_sequential, extract_registered, CorrelationMode, DesignBuilder, ExtractOptions,
    ModuleContext, SequentialAnalyzeOptions, SstaConfig, TimingModel,
};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::sdf::{
    export_models, import_sdf_models, parse_sdf, write_sdf, Cell, Delay, Edge, ExportOptions,
    IoPath, Period, RecRem, Sdf, SetupHold, Width,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Generators (built on the vendored proptest subset: ranges, tuples,
// Just, prop_map, collection::vec).
// ---------------------------------------------------------------------

/// `Some` for half the draws.
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (0usize..2, s).prop_map(|(k, v)| if k == 1 { Some(v) } else { None })
}

/// A word over `alphabet`, `min..max` characters long.
fn word(alphabet: &'static str, min: usize, max: usize) -> impl Strategy<Value = String> {
    let chars: Vec<char> = alphabet.chars().collect();
    vec(0usize..chars.len(), min..max).prop_map(move |ix| ix.iter().map(|&i| chars[i]).collect())
}

fn port() -> impl Strategy<Value = String> {
    (
        0usize..26,
        word("abcdefghijklmnopqrstuvwxyz0123456789_", 0, 8),
    )
        .prop_map(|(first, rest)| format!("{}{rest}", (b'a' + first as u8) as char))
}

fn quoted() -> impl Strategy<Value = String> {
    // Anything the writer emits between quotes verbatim: no quote
    // characters, but spaces, parens-free punctuation etc. are fine.
    word("abcdefghijklmnopqrstuvwxyzABC0123456789 ._:/-", 0, 13)
}

fn edge() -> impl Strategy<Value = Edge> {
    (0usize..3, port()).prop_map(|(k, p)| match k {
        0 => Edge::Plain(p),
        1 => Edge::Posedge(p),
        _ => Edge::Negedge(p),
    })
}

fn num() -> impl Strategy<Value = f64> {
    (0usize..4, -1e12f64..1e12, -1e-3f64..1e-3).prop_map(|(k, big, small)| match k {
        0 => big,
        1 => small,
        2 => 0.0,
        _ => 1.0 / 3.0,
    })
}

fn delay() -> impl Strategy<Value = Delay> {
    (num(), num(), num()).prop_map(|(min, typ, max)| Delay { min, typ, max })
}

fn iopath() -> impl Strategy<Value = IoPath> {
    (edge(), edge(), delay(), delay()).prop_map(|(from, to, rise, fall)| IoPath {
        from,
        to,
        rise,
        fall,
    })
}

fn setuphold() -> impl Strategy<Value = SetupHold> {
    (edge(), edge(), opt(delay()), opt(delay())).prop_map(|(edge_d, edge_c, setup, hold)| {
        SetupHold {
            edge_d,
            edge_c,
            setup,
            hold,
        }
    })
}

fn recrem() -> impl Strategy<Value = RecRem> {
    (edge(), edge(), opt(delay()), opt(delay())).prop_map(|(edge_r, edge_c, recovery, removal)| {
        RecRem {
            edge_r,
            edge_c,
            recovery,
            removal,
        }
    })
}

fn cell() -> impl Strategy<Value = Cell> {
    (
        (
            quoted(),
            opt(port()),
            vec(iopath(), 0..4),
            vec(setuphold(), 0..3),
        ),
        (
            vec(recrem(), 0..2),
            vec(
                (edge(), delay()).prop_map(|(edge, val)| Period { edge, val }),
                0..2,
            ),
            vec(
                (edge(), delay()).prop_map(|(edge, val)| Width { edge, val }),
                0..2,
            ),
            opt(word("0123456789abcdef", 0, 17)),
        ),
    )
        .prop_map(
            |((celltype, instance, iopath, setuphold), (recrem, period, width, sstm))| Cell {
                celltype,
                instance,
                iopath,
                setuphold,
                recrem,
                period,
                width,
                sstm,
            },
        )
}

fn sdf() -> impl Strategy<Value = Sdf> {
    (
        (
            opt(quoted()),
            opt(quoted()),
            opt(quoted()),
            opt(word("/.", 1, 2)),
        ),
        opt((0usize..2).prop_map(|k| {
            if k == 0 {
                "1ps".to_string()
            } else {
                "10 ps".to_string()
            }
        })),
        vec(cell(), 0..3),
    )
        .prop_map(
            |((sdfversion, design, vendor, divider), timescale, cells)| Sdf {
                sdfversion,
                design,
                date: None,
                vendor,
                program: None,
                version: None,
                divider,
                timescale,
                cells,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_write_is_byte_identical(sdf in sdf()) {
        let text = write_sdf(&sdf);
        let parsed = parse_sdf(&text).expect("canonical output must parse");
        prop_assert_eq!(&parsed, &sdf);
        prop_assert_eq!(write_sdf(&parsed), text);
    }
}

// ---------------------------------------------------------------------
// Real models.
// ---------------------------------------------------------------------

fn registered_models(options: &ExportOptions) -> (SstaConfig, Vec<Arc<TimingModel>>, String) {
    let stages = generators::registered_pipeline(&["rca4", "rca4", "rca4"], "DFF").unwrap();
    let config = SstaConfig::paper();
    let models: Vec<Arc<TimingModel>> = stages
        .iter()
        .map(|stage| {
            let ctx = ModuleContext::characterize(stage.core().clone(), &config).unwrap();
            Arc::new(
                extract_registered(&ctx, stage.register(), &ExtractOptions::default()).unwrap(),
            )
        })
        .collect();
    let text = write_sdf(&export_models(models.iter().map(Arc::as_ref), options).unwrap());
    (config, models, text)
}

#[test]
fn exported_models_round_trip_byte_identically() {
    let (_, _, text) = registered_models(&ExportOptions::default());
    let parsed = parse_sdf(&text).expect("exported SDF parses");
    assert_eq!(write_sdf(&parsed), text);
}

#[test]
fn approximate_import_analyzes_within_tolerance() {
    let opts = ExportOptions {
        embed_sstm: false,
        ..ExportOptions::default()
    };
    let (config, exact, text) = registered_models(&opts);
    let approx: Vec<Arc<TimingModel>> =
        import_sdf_models(&parse_sdf(&text).unwrap(), &config, opts.sigmas)
            .expect("import")
            .into_iter()
            .map(Arc::new)
            .collect();

    // Approximate models carry no PCA basis, so compare in global-only
    // mode, where both sides treat local variation as independent.
    let chain = |models: &[Arc<TimingModel>]| {
        let die = DieRect {
            width: 1000.0,
            height: 1000.0,
        };
        let mut b = DesignBuilder::new("sdf-approx", die, config.clone());
        let mut ids = Vec::new();
        for (k, model) in models.iter().enumerate() {
            ids.push(
                b.add_instance(
                    format!("s{k}"),
                    model.clone(),
                    None,
                    (100.0 * k as f64, 0.0),
                )
                .unwrap(),
            );
        }
        for w in ids.windows(2) {
            for p in 0..models[1].n_inputs() {
                b.connect(w[0], p % models[0].n_outputs(), w[1], p, 0.0)
                    .unwrap();
            }
        }
        for p in 0..models[0].n_inputs() {
            b.expose_input(vec![(ids[0], p)]).unwrap();
        }
        for j in 0..models.last().unwrap().n_outputs() {
            b.expose_output(*ids.last().unwrap(), j).unwrap();
        }
        b.finish().unwrap()
    };
    let options = SequentialAnalyzeOptions {
        mode: CorrelationMode::GlobalOnly,
        ..SequentialAnalyzeOptions::with_period(1500.0)
    };
    let reference = analyze_sequential(&chain(&exact), &options).expect("exact");
    let imported = analyze_sequential(&chain(&approx), &options).expect("approx");

    // The corner projection is deliberately lossy: folding correlated
    // global/local structure into one independent random term makes
    // Clark's max more pessimistic, so the approximate result sits a
    // few percent above the exact one. 15% is the documented envelope;
    // per-arc means and sigmas are reproduced exactly (tested in the
    // sdf crate), so all drift comes from lost correlation.
    let rel = (reference.min_period.mean() - imported.min_period.mean()).abs()
        / reference.min_period.mean();
    assert!(rel < 0.15, "min-period mean drifted {rel:.4}");
    // Per-stage drift is normalized by the design's critical period —
    // the shared timing scale — rather than each stage's own required
    // period, which for a PI-fed first stage is just the tiny setup
    // constraint and would turn a few picoseconds into a huge ratio.
    for (a, b) in reference.stages.iter().zip(&imported.stages) {
        let rel = (a.required_period.mean() - b.required_period.mean()).abs()
            / reference.min_period.mean();
        assert!(rel < 0.15, "stage {}: drifted {rel:.4}", a.instance);
    }
}

// ---------------------------------------------------------------------
// Malformed input.
// ---------------------------------------------------------------------

#[test]
fn malformed_sdf_is_rejected_with_positions() {
    // (text, expected line, expected column, expected message fragment)
    let fixtures: [(&str, usize, usize, &str); 6] = [
        ("(DELAYFILE", 1, 11, "end of input"),
        ("(DELAYFILE\n  (FREQUENCY \"10\")\n)", 2, 4, "FREQUENCY"),
        ("(DELAYFILE (DESIGN \"unterminated))", 1, 20, "unterminated"),
        (
            "(DELAYFILE (DESIGN \"a\") (DESIGN \"b\"))",
            1,
            26,
            "duplicate",
        ),
        (
            "(DELAYFILE (CELL (CELLTYPE \"x\")\n  (DELAY (INCREMENT))))",
            2,
            11,
            "INCREMENT",
        ),
        ("(DELAYFILE) trailing", 1, 13, "unexpected"),
    ];
    for (text, line, col, fragment) in fixtures {
        let err = parse_sdf(text).expect_err(text);
        assert_eq!((err.line, err.col), (line, col), "position for {text:?}");
        assert!(
            err.message.contains(fragment),
            "message {:?} should mention {fragment:?}",
            err.message
        );
        // Display renders the position for operators.
        assert!(err.to_string().contains(&format!("line {line}")));
    }
}
