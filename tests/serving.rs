//! The serving-layer contract, end to end:
//!
//! * a cancelled in-flight request stops at the next pipeline
//!   checkpoint — before the assemble phase runs — while the partial
//!   work its flight leadership published (extracted models in the
//!   shared store) stays valid, and an identical follow-up request
//!   succeeds *from* that work instead of redoing it;
//! * deadline tokens turn latency budgets into automatic mid-pipeline
//!   stops;
//! * every submitted request — completed, queue-full-rejected, shed or
//!   cancelled — receives exactly one terminal response;
//! * the two-lane queue neither starves batch work behind interactive
//!   streams nor interactive work behind sweeps (batch-courtesy
//!   ordering is deterministic with one worker);
//! * a queue-full burst answers `Rejected` immediately instead of
//!   blocking the submitter or deadlocking the pool;
//! * identical requests racing on different workers coalesce to at
//!   most one extraction per distinct fingerprint.

use hier_ssta::core::{CancelToken, SstaConfig};
use hier_ssta::engine::{
    DesignSpec, Engine, EngineError, EngineOptions, MemoryBackend, ScenarioSet, StorageBackend,
};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::serve::{AnalyzeRequest, Priority, Rejection, ServeOptions, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A spec with `widths.len()` structurally distinct adder modules, one
/// instance each, all inputs exposed — several distinct fingerprints so
/// the resolve stage has multiple flights and therefore multiple
/// cancellation checkpoints.
fn multi_module_spec(widths: &[usize]) -> DesignSpec {
    let mut b = DesignSpec::builder(
        "multi",
        DieRect {
            width: 40.0 * widths.len() as f64,
            height: 40.0,
        },
    );
    for (i, &w) in widths.iter().enumerate() {
        let netlist = generators::ripple_carry_adder(w).expect("adder");
        let n_in = netlist.n_inputs();
        let n_out = netlist.n_outputs();
        let m = b.add_module(netlist);
        let u = b
            .add_instance(format!("u{i}"), m, (40.0 * i as f64, 0.0))
            .expect("instance");
        for k in 0..n_in {
            b.expose_input(vec![(u, k)]);
        }
        for k in 0..n_out {
            b.expose_output(u, k);
        }
    }
    b.finish().expect("spec")
}

/// A shared `MemoryBackend` that cancels a token the moment the first
/// artifact is written — a deterministic "cancel arrives mid-request,
/// right after the first extraction published" probe, with no timing
/// races.
#[derive(Debug)]
struct CancelOnFirstPut {
    inner: Arc<MemoryBackend>,
    token: CancelToken,
    puts: AtomicUsize,
}

impl StorageBackend for CancelOnFirstPut {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
        self.inner.get(key)
    }
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
        self.inner.put(key, bytes)?;
        if self.puts.fetch_add(1, Ordering::SeqCst) == 0 {
            self.token.cancel();
        }
        Ok(())
    }
    fn remove(&self, key: &str) -> Result<bool, EngineError> {
        self.inner.remove(key)
    }
    fn list_keys(&self) -> Result<Vec<String>, EngineError> {
        self.inner.list_keys()
    }
    fn clear(&self) -> Result<(), EngineError> {
        self.inner.clear()
    }
}

fn serial_engine_options() -> EngineOptions {
    EngineOptions {
        threads: 1,
        ..EngineOptions::default()
    }
}

#[test]
fn cancelled_in_flight_request_stops_before_assemble_and_its_work_survives() {
    let spec = multi_module_spec(&[2, 3, 4]);
    let memory = Arc::new(MemoryBackend::new());
    let token = CancelToken::new();

    // Request A: cancelled deterministically the instant its first
    // extraction is published to the store.
    let mut engine_a = Engine::with_options(SstaConfig::paper(), serial_engine_options())
        .with_backend(Arc::new(CancelOnFirstPut {
            inner: Arc::clone(&memory),
            token: token.clone(),
            puts: AtomicUsize::new(0),
        }));
    let err = engine_a
        .analyze_batch_cancellable(&spec, &ScenarioSet::baseline(), &token)
        .expect_err("request A must be cancelled mid-pipeline");
    assert!(
        matches!(err, EngineError::Cancelled),
        "expected Cancelled, got {err}"
    );
    // A stopped inside resolve: exactly one of the three distinct
    // modules was extracted, and assemble (which needs all three) never
    // ran — a cancelled request does not burn the analysis tail.
    assert_eq!(
        memory.len().expect("len"),
        1,
        "A must stop after its first extraction published"
    );

    // Request B: identical, live token, same shared store. It succeeds,
    // reusing A's published extraction instead of redoing it.
    let mut engine_b = Engine::with_options(SstaConfig::paper(), serial_engine_options())
        .with_backend(Arc::clone(&memory));
    let run = engine_b
        .analyze_batch(&spec, &ScenarioSet::baseline())
        .expect("identical request succeeds after A's cancellation");
    assert_eq!(run.stats.store_hits, 1, "B reuses A's extraction");
    assert_eq!(run.stats.extractions, 2, "B extracts only what A didn't");
}

#[test]
fn deadline_token_cancels_a_running_batch() {
    let spec = multi_module_spec(&[2, 3]);
    let mut engine = Engine::with_options(SstaConfig::paper(), serial_engine_options());
    // Already-expired budget: the first checkpoint fires before any
    // work, so this is deterministic.
    let token = CancelToken::with_timeout(Duration::ZERO);
    let err = engine
        .analyze_batch_cancellable(&spec, &ScenarioSet::baseline(), &token)
        .expect_err("expired deadline cancels");
    assert!(err.is_cancelled());
}

#[test]
fn every_submitted_request_gets_exactly_one_terminal_response() {
    let spec = Arc::new(multi_module_spec(&[2]));
    let server = Server::start(
        SstaConfig::paper(),
        Arc::new(MemoryBackend::new()),
        ServeOptions {
            workers: 2,
            queue_depth: 3,
            start_paused: true,
            engine: serial_engine_options(),
            ..ServeOptions::default()
        },
    );
    // Stage while paused: 3 admitted (one of which we cancel), then 2
    // rejected queue-full.
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(&spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    let rejected: Vec<_> = (0..2)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(&spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    tickets[2].cancel();
    for ticket in rejected {
        let response = ticket.wait();
        assert!(
            matches!(
                response.outcome,
                hier_ssta::serve::Outcome::Rejected(Rejection::QueueFull { depth: 3 })
            ),
            "burst past the bound rejects immediately, got {}",
            response.outcome.label()
        );
    }
    server.resume();
    let outcomes: Vec<String> = tickets
        .into_iter()
        .map(|t| t.wait().outcome.label().to_owned())
        .collect();
    assert_eq!(outcomes[0], "completed");
    assert_eq!(outcomes[1], "completed");
    assert_eq!(outcomes[2], "cancelled");

    let snapshot = server.shutdown();
    assert_eq!(snapshot.submitted, 5);
    assert_eq!(snapshot.terminal(), 5, "one terminal response each");
    assert_eq!(snapshot.lost(), 0);
    assert_eq!(snapshot.completed, 2);
    assert_eq!(snapshot.rejected_queue_full, 2);
    assert_eq!(snapshot.cancelled, 1);
}

#[test]
fn batch_courtesy_orders_lanes_deterministically() {
    let spec = Arc::new(multi_module_spec(&[2]));
    let server = Server::start(
        SstaConfig::paper(),
        Arc::new(MemoryBackend::new()),
        ServeOptions {
            workers: 1,
            batch_courtesy: 2,
            start_paused: true,
            engine: serial_engine_options(),
            ..ServeOptions::default()
        },
    );
    // One sweep staged first, then a stream of interactive requests.
    let sweep = server.submit(
        AnalyzeRequest::new(Arc::clone(&spec), ScenarioSet::baseline())
            .with_priority(Priority::Batch),
    );
    let small: Vec<_> = (0..4)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(&spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    server.resume();

    // With one worker the service order is exactly the dequeue order:
    // interactive jumps the sweep (lane priority), but after
    // `batch_courtesy = 2` interactive picks the sweep goes ahead of
    // the remaining stream — neither lane starves.
    let sweep_seq = sweep.wait().stats.sequence;
    let small_seqs: Vec<u64> = small.into_iter().map(|t| t.wait().stats.sequence).collect();
    assert_eq!(small_seqs[0], 0, "interactive preferred");
    assert_eq!(small_seqs[1], 1);
    assert_eq!(sweep_seq, 2, "courtesy lets the sweep through");
    assert_eq!(small_seqs[2], 3);
    assert_eq!(small_seqs[3], 4);

    let snapshot = server.shutdown();
    assert_eq!(snapshot.completed, 5);
    assert_eq!(snapshot.lost(), 0);
}

#[test]
fn backlogged_deadline_request_is_shed_at_admission() {
    let spec = Arc::new(multi_module_spec(&[2]));
    let server = Server::start(
        SstaConfig::paper(),
        Arc::new(MemoryBackend::new()),
        ServeOptions {
            workers: 1,
            service_estimate: Duration::from_millis(200),
            start_paused: true,
            engine: serial_engine_options(),
            ..ServeOptions::default()
        },
    );
    let backlog: Vec<_> = (0..4)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(&spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    // Estimated wait 4 x 200 ms on one worker >> the 100 ms budget.
    let doomed = server.submit(
        AnalyzeRequest::new(Arc::clone(&spec), ScenarioSet::baseline())
            .with_deadline(Duration::from_millis(100)),
    );
    let response = doomed.wait();
    match response.outcome {
        hier_ssta::serve::Outcome::Rejected(Rejection::Shed {
            estimated_wait,
            deadline,
        }) => {
            assert!(estimated_wait > deadline);
            assert_eq!(deadline, Duration::from_millis(100));
        }
        ref other => panic!("expected shed, got {}", other.label()),
    }
    server.resume();
    for ticket in backlog {
        assert!(ticket.wait().outcome.is_completed());
    }
    let snapshot = server.shutdown();
    assert_eq!(snapshot.shed, 1);
    assert_eq!(snapshot.lost(), 0);
}

#[test]
fn identical_requests_across_workers_coalesce_extractions() {
    let spec = Arc::new(multi_module_spec(&[3]));
    let server = Server::start(
        SstaConfig::paper(),
        Arc::new(MemoryBackend::new()),
        ServeOptions {
            workers: 4,
            engine: serial_engine_options(),
            ..ServeOptions::default()
        },
    );
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(&spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    for ticket in tickets {
        assert!(ticket.wait().outcome.is_completed());
    }
    let snapshot = server.shutdown();
    assert_eq!(snapshot.completed, 8);
    assert_eq!(snapshot.lost(), 0);
    assert!(
        snapshot.extractions <= 1,
        "8 identical requests over 4 workers must coalesce to <= 1 extraction, got {}",
        snapshot.extractions
    );
    // However the race played out, every module resolution was
    // answered by the one extraction, a cache tier, or a coalesced
    // flight.
    assert_eq!(
        snapshot.extractions + snapshot.coalesced + snapshot.memory_hits + snapshot.store_hits,
        8
    );
}
