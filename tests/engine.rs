//! The engine contract, end to end:
//!
//! * a design with ≥ 4 instances of one module performs exactly one
//!   characterization/extraction (fingerprint deduplication);
//! * a warm-cache engine run performs zero extractions (persistent model
//!   library);
//! * parallel and serial engine runs produce bit-identical results;
//! * invalidating one module recomputes only that module;
//! * the versioned on-disk format round-trips models bit-exactly and
//!   rejects corrupt or wrong-version artifacts cleanly.

use hier_ssta::core::{analyze, CorrelationMode, DesignBuilder, SstaConfig};
use hier_ssta::engine::{
    store, DesignSpec, Engine, EngineError, EngineOptions, ModelStore, ModuleId,
};
use hier_ssta::netlist::{generators, DieRect};
use std::path::PathBuf;
use std::sync::Arc;

/// A fresh scratch directory for a persistent store.
fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hier-ssta-engine-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Four instances of one 4-bit adder in a 2×2 arrangement, chained
/// through their carry inputs, everything else driven from design PIs.
fn quad_adder_spec() -> (DesignSpec, ModuleId) {
    let netlist = generators::ripple_carry_adder(4).expect("adder");
    let mut b = DesignSpec::builder(
        "quad-adder",
        DieRect {
            width: 60.0,
            height: 60.0,
        },
    );
    let m = b.add_module(netlist);
    let u0 = b.add_instance("u0", m, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", m, (25.0, 0.0)).expect("u1");
    let u2 = b.add_instance("u2", m, (0.0, 25.0)).expect("u2");
    let u3 = b.add_instance("u3", m, (25.0, 25.0)).expect("u3");
    // Carry chain through the quad: sum bit 0 feeds the next carry-in
    // (input port 8 of the 9-input adder).
    b.connect(u0, 0, u1, 8);
    b.connect(u1, 0, u2, 8);
    b.connect(u2, 0, u3, 8);
    for (i, inst) in [u0, u1, u2, u3].into_iter().enumerate() {
        for k in 0..8 {
            b.expose_input(vec![(inst, k)]);
        }
        if i == 0 {
            b.expose_input(vec![(inst, 8)]); // only u0's carry-in is a PI
        }
    }
    for k in 0..5 {
        b.expose_output(u3, k);
    }
    (b.finish().expect("spec"), m)
}

/// Two structurally different modules (a 4-bit and a 5-bit adder) chained.
fn two_module_spec() -> (DesignSpec, ModuleId, ModuleId) {
    let small = generators::ripple_carry_adder(4).expect("adder4");
    let large = generators::ripple_carry_adder(5).expect("adder5");
    let mut b = DesignSpec::builder(
        "mixed",
        DieRect {
            width: 80.0,
            height: 40.0,
        },
    );
    let ms = b.add_module(small);
    let ml = b.add_module(large);
    let u0 = b.add_instance("u0", ms, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", ml, (30.0, 0.0)).expect("u1");
    // u0's five outputs feed u1's first five inputs.
    for k in 0..5 {
        b.connect(u0, k, u1, k);
    }
    for k in 0..9 {
        b.expose_input(vec![(u0, k)]);
    }
    for k in 5..11 {
        b.expose_input(vec![(u1, k)]);
    }
    for k in 0..6 {
        b.expose_output(u1, k);
    }
    (b.finish().expect("spec"), ms, ml)
}

#[test]
fn four_instances_extract_once() {
    let (spec, _) = quad_adder_spec();
    let mut engine = Engine::new(SstaConfig::paper());
    let run = engine.analyze(&spec).expect("analysis");
    assert_eq!(run.stats.instances, 4);
    assert_eq!(run.stats.distinct_modules, 1);
    assert_eq!(run.stats.extractions, 1, "one definition, one extraction");
    assert!(run.timing.delay.mean() > 0.0);
    assert!(run.timing.delay.std_dev() > 0.0);

    // Re-analysis in the same session: everything from memory.
    let again = engine.analyze(&spec).expect("re-analysis");
    assert_eq!(again.stats.extractions, 0);
    assert_eq!(again.stats.memory_hits, 1);
    assert_eq!(again.timing.po_arrivals, run.timing.po_arrivals);
}

#[test]
fn duplicate_definitions_dedupe_by_content() {
    // The same netlist registered as two separate module definitions
    // still characterizes once: dedupe is by content, not by id.
    let mut b = DesignSpec::builder(
        "dup",
        DieRect {
            width: 60.0,
            height: 40.0,
        },
    );
    // Same structure under a *different* name: the name is a label and
    // must not defeat content deduplication.
    let ma = b.add_module(generators::ripple_carry_adder(4).expect("adder"));
    let mb = b.add_module(
        generators::ripple_carry_adder(4)
            .expect("adder")
            .renamed("alu_west"),
    );
    let u0 = b.add_instance("u0", ma, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", mb, (30.0, 0.0)).expect("u1");
    for k in 0..9 {
        b.expose_input(vec![(u0, k)]);
        b.expose_input(vec![(u1, k)]);
    }
    b.expose_output(u0, 4);
    b.expose_output(u1, 4);
    let spec = b.finish().expect("spec");

    let mut engine = Engine::new(SstaConfig::paper());
    let run = engine.analyze(&spec).expect("analysis");
    assert_eq!(run.stats.distinct_modules, 1);
    assert_eq!(run.stats.extractions, 1);
}

#[test]
fn warm_store_run_performs_zero_extractions() {
    let dir = temp_store_dir("warm");
    let (spec, _) = quad_adder_spec();

    // Cold run: extract once, write the artifact.
    let mut cold = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    let cold_run = cold.analyze(&spec).expect("cold analysis");
    assert_eq!(cold_run.stats.extractions, 1);
    assert_eq!(cold_run.stats.store_writes, 1);
    assert_eq!(cold.store().expect("store").len().expect("len"), 1);

    // Warm run: a *fresh* engine (new process, in spirit) with the same
    // library performs zero extractions.
    let mut warm = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    let warm_run = warm.analyze(&spec).expect("warm analysis");
    assert_eq!(warm_run.stats.extractions, 0, "warm cache: no extraction");
    assert_eq!(warm_run.stats.store_hits, 1);

    // And the cached model yields bit-identical timing.
    assert_eq!(warm_run.timing.po_arrivals, cold_run.timing.po_arrivals);
    assert_eq!(
        warm_run.timing.delay.mean().to_bits(),
        cold_run.timing.delay.mean().to_bits()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_and_serial_runs_are_bit_identical() {
    let (spec, _, _) = {
        let s = two_module_spec();
        (s.0, s.1, s.2)
    };
    let run_with_threads = |threads: usize| {
        let mut engine = Engine::with_options(
            SstaConfig::paper(),
            EngineOptions {
                threads,
                ..EngineOptions::default()
            },
        );
        engine.analyze(&spec).expect("analysis")
    };
    let serial = run_with_threads(1);
    let parallel = run_with_threads(4);
    assert_eq!(serial.stats.extractions, 2);
    assert_eq!(parallel.stats.extractions, 2);
    assert_eq!(
        serial.timing.po_arrivals, parallel.timing.po_arrivals,
        "arrival times must be bit-identical across thread counts"
    );
    assert_eq!(
        serial.timing.delay.mean().to_bits(),
        parallel.timing.delay.mean().to_bits()
    );
    assert_eq!(
        serial.timing.delay.std_dev().to_bits(),
        parallel.timing.delay.std_dev().to_bits()
    );
}

#[test]
fn invalidation_recomputes_only_that_module() {
    let (spec, ms, _) = two_module_spec();
    let mut engine = Engine::new(SstaConfig::paper());
    let first = engine.analyze(&spec).expect("first analysis");
    assert_eq!(first.stats.extractions, 2);

    // Invalidate the small adder: only it recomputes, the large adder is
    // served from the session cache.
    assert!(engine.invalidate(&spec, ms).expect("invalidate"));
    let second = engine.analyze(&spec).expect("second analysis");
    assert_eq!(second.stats.extractions, 1, "only the invalidated module");
    assert_eq!(second.stats.memory_hits, 1, "the other module is cached");
    assert_eq!(second.timing.po_arrivals, first.timing.po_arrivals);

    // Invalidating an unknown module id is a spec error.
    assert!(matches!(
        engine.invalidate(&spec, ModuleId(99)),
        Err(EngineError::Spec { .. })
    ));
}

#[test]
fn unused_module_definitions_cost_nothing() {
    // A registered definition with no instances must not be
    // characterized, extracted, or counted.
    let mut b = DesignSpec::builder(
        "partial",
        DieRect {
            width: 60.0,
            height: 40.0,
        },
    );
    let used = b.add_module(generators::ripple_carry_adder(4).expect("adder"));
    let _unused = b.add_module(generators::ripple_carry_adder(12).expect("big adder"));
    let u0 = b.add_instance("u0", used, (0.0, 0.0)).expect("u0");
    for k in 0..9 {
        b.expose_input(vec![(u0, k)]);
    }
    b.expose_output(u0, 4);
    let spec = b.finish().expect("spec");

    let mut engine = Engine::new(SstaConfig::paper());
    let run = engine.analyze(&spec).expect("analysis");
    assert_eq!(run.stats.distinct_modules, 1);
    assert_eq!(run.stats.extractions, 1, "unused definition not extracted");
}

#[test]
fn invalidate_all_clears_artifacts_from_other_engines() {
    let dir = temp_store_dir("invalidate-all");
    let (spec, _) = quad_adder_spec();
    Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store")
        .analyze(&spec)
        .expect("seed the store");

    // A *fresh* engine (empty memory tier) must still clear the store.
    let mut fresh = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    fresh.invalidate_all().expect("invalidate all");
    assert_eq!(fresh.store().expect("store").len().expect("len"), 0);
    let run = fresh.analyze(&spec).expect("post-invalidate analysis");
    assert_eq!(run.stats.store_hits, 0);
    assert_eq!(run.stats.extractions, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_matches_the_direct_analysis_path() {
    // The engine adds scheduling and caching, not semantics: assembling
    // the same design by hand must give identical timing.
    let (spec, _) = quad_adder_spec();
    let config = SstaConfig::paper();
    let mut engine = Engine::new(config.clone());
    let run = engine.analyze(&spec).expect("engine analysis");

    let netlist = generators::ripple_carry_adder(4).expect("adder");
    let (model, _) = engine.model_for(&netlist).expect("cached model");
    let mut b = DesignBuilder::new(
        "quad-adder",
        DieRect {
            width: 60.0,
            height: 60.0,
        },
        config,
    );
    let mut insts = Vec::new();
    for (name, origin) in [
        ("u0", (0.0, 0.0)),
        ("u1", (25.0, 0.0)),
        ("u2", (0.0, 25.0)),
        ("u3", (25.0, 25.0)),
    ] {
        insts.push(
            b.add_instance(name, Arc::clone(&model), None, origin)
                .expect("instance"),
        );
    }
    for w in insts.windows(2) {
        b.connect(w[0], 0, w[1], 8, 0.0).expect("carry wire");
    }
    for (i, &inst) in insts.iter().enumerate() {
        for k in 0..8 {
            b.expose_input(vec![(inst, k)]).expect("pi");
        }
        if i == 0 {
            b.expose_input(vec![(inst, 8)]).expect("pi");
        }
    }
    for k in 0..5 {
        b.expose_output(insts[3], k).expect("po");
    }
    let design = b.finish().expect("design");
    let direct = analyze(&design, CorrelationMode::Proposed).expect("direct analysis");

    assert_eq!(run.timing.po_arrivals, direct.po_arrivals);
}

#[test]
fn store_round_trip_preserves_the_model_bit_exactly() {
    let dir = temp_store_dir("roundtrip");
    let store = ModelStore::open(&dir).expect("open");
    let netlist = generators::ripple_carry_adder(6).expect("adder");
    let config = SstaConfig::paper();
    let ctx = hier_ssta::core::ModuleContext::characterize(netlist, &config).expect("ctx");
    let model = ctx
        .extract_model(&hier_ssta::core::ExtractOptions::default())
        .expect("extract");

    let key = "a".repeat(64);
    assert!(!store.contains(&key));
    assert!(store.load(&key).expect("absent is not an error").is_none());
    store.save(&key, &model).expect("save");
    assert!(store.contains(&key));
    let back = store.load(&key).expect("load").expect("present");

    assert_eq!(back.name(), model.name());
    assert_eq!(back.edge_count(), model.edge_count());
    let a = model.delay_matrix().expect("matrix");
    let b = back.delay_matrix().expect("matrix");
    let (worst_mean, mismatched) = a.compare_with(&b, |d| d.mean());
    assert_eq!(mismatched, 0);
    assert_eq!(worst_mean, 0.0, "bit-exact mean preservation");
    let (worst_sigma, _) = a.compare_with(&b, |d| d.std_dev());
    assert_eq!(worst_sigma, 0.0, "bit-exact sigma preservation");

    assert!(store.remove(&key).expect("remove"));
    assert!(!store.contains(&key));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_rejects_corrupt_and_wrong_version_artifacts() {
    let dir = temp_store_dir("rejects");
    let store = ModelStore::open(&dir).expect("open");
    let netlist = generators::ripple_carry_adder(2).expect("adder");
    let config = SstaConfig::paper();
    let ctx = hier_ssta::core::ModuleContext::characterize(netlist, &config).expect("ctx");
    let model = ctx
        .extract_model(&hier_ssta::core::ExtractOptions::default())
        .expect("extract");
    let key = "b".repeat(64);
    store.save(&key, &model).expect("save");

    // Locate the artifact on disk.
    let path = {
        let mut found = None;
        for shard in std::fs::read_dir(&dir).expect("read root") {
            let shard = shard.expect("entry").path();
            if shard.is_dir() {
                for f in std::fs::read_dir(&shard).expect("read shard") {
                    found = Some(f.expect("entry").path());
                }
            }
        }
        found.expect("artifact exists")
    };
    let pristine = std::fs::read(&path).expect("read artifact");

    // Flip one payload byte: integrity stamp mismatch.
    let mut corrupt = pristine.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    std::fs::write(&path, &corrupt).expect("write corrupt");
    assert!(matches!(
        store.load(&key),
        Err(EngineError::Store { reason }) if reason.contains("integrity")
    ));

    // Bump the version field: unsupported version.
    let mut wrong_version = pristine.clone();
    wrong_version[4] = store::FORMAT_VERSION as u8 + 1;
    std::fs::write(&path, &wrong_version).expect("write versioned");
    assert!(matches!(
        store.load(&key),
        Err(EngineError::Store { reason }) if reason.contains("version")
    ));

    // Truncate below the header: rejected, not a panic.
    std::fs::write(&path, &pristine[..10]).expect("write truncated");
    assert!(matches!(
        store.load(&key),
        Err(EngineError::Store { reason }) if reason.contains("truncated")
    ));

    // Restore the pristine bytes: loads again.
    std::fs::write(&path, &pristine).expect("restore");
    assert!(store.load(&key).expect("pristine loads").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_store_writes_do_not_fail_the_analysis() {
    // A read-only or broken library is a degraded cache, not an error:
    // the analysis must still return, counting the failed write.
    let dir = temp_store_dir("write-fail");
    let (spec, _) = quad_adder_spec();
    let mut engine = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    // Sabotage the shard: a *file* where the shard directory must go
    // makes save()'s create_dir_all fail, while load treats the missing
    // path as a miss.
    let key = engine.module_key(&generators::ripple_carry_adder(4).expect("adder"));
    std::fs::write(dir.join(&key[..2]), b"not a directory").expect("plant file");

    let run = engine.analyze(&spec).expect("analysis still succeeds");
    assert_eq!(run.stats.extractions, 1);
    assert_eq!(run.stats.store_writes, 0);
    assert_eq!(run.stats.store_write_failures, 1);
    assert!(run.timing.delay.mean() > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_recovers_from_a_corrupt_store_artifact() {
    let dir = temp_store_dir("recover");
    let (spec, _) = quad_adder_spec();
    let mut engine = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    let cold = engine.analyze(&spec).expect("cold");
    assert_eq!(cold.stats.extractions, 1);

    // Corrupt the stored artifact behind the engine's back.
    for shard in std::fs::read_dir(&dir).expect("read root") {
        let shard = shard.expect("entry").path();
        if shard.is_dir() {
            for f in std::fs::read_dir(&shard).expect("read shard") {
                let p = f.expect("entry").path();
                let mut bytes = std::fs::read(&p).expect("read");
                let last = bytes.len() - 1;
                bytes[last] ^= 0xFF;
                std::fs::write(&p, bytes).expect("write");
            }
        }
    }

    // A fresh engine rejects the artifact, recomputes and heals the
    // store.
    let mut fresh = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    let healed = fresh.analyze(&spec).expect("healed analysis");
    assert_eq!(healed.stats.store_rejects, 1);
    assert_eq!(healed.stats.extractions, 1);
    assert_eq!(healed.timing.po_arrivals, cold.timing.po_arrivals);

    // And the rewritten artifact now serves a warm run.
    let mut warm = Engine::new(SstaConfig::paper())
        .with_store(&dir)
        .expect("store");
    let warm_run = warm.analyze(&spec).expect("warm");
    assert_eq!(warm_run.stats.extractions, 0);
    assert_eq!(warm_run.stats.store_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
