//! Property-based tests (proptest) of the levelized pull propagation
//! engine against the push-based reference on random DAGs:
//!
//! * scalar algebra: pull ≡ push bit-exactly (f64 max/+ is
//!   order-insensitive), forward and backward;
//! * canonical algebra: backward is bit-identical (same per-vertex
//!   reduction order as the reference), forward agrees within working
//!   precision (Clark's `maximum` is order-sensitive, so pull's fixed
//!   in-edge order re-associates it);
//! * every thread count produces bit-identical results to serial, for
//!   both algebras and both directions;
//! * one `LevelSchedule` serves arbitrarily many passes — the build
//!   counter moves once per graph, not once per pass.

use hier_ssta::core::CanonicalForm;
use hier_ssta::timing::{levels, LevelSchedule, TimingGraph, VertexId};
use proptest::prelude::*;

/// A random DAG encoded as a vertex count plus candidate edges; pairs are
/// oriented low → high index, so the graph is acyclic by construction.
#[derive(Debug, Clone)]
struct RandomDag {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
}

fn dag() -> impl Strategy<Value = RandomDag> {
    (4usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.1..25.0f64), 3..4 * n).prop_map(move |raw| {
            RandomDag {
                n,
                edges: raw
                    .into_iter()
                    .filter(|(u, v, _)| u != v)
                    .map(|(u, v, d)| (u.min(v), u.max(v), d))
                    .collect(),
            }
        })
    })
}

fn scalar_graph(dag: &RandomDag) -> (TimingGraph<f64>, Vec<VertexId>) {
    let mut g = TimingGraph::new();
    let mut vs = Vec::with_capacity(dag.n);
    vs.push(g.add_input());
    for _ in 1..dag.n {
        vs.push(g.add_vertex());
    }
    g.mark_output(vs[dag.n - 1]);
    for &(u, v, d) in &dag.edges {
        g.add_edge(vs[u], vs[v], d);
    }
    (g, vs)
}

/// Lifts the scalar DAG into canonical forms: each delay gets sensitivity
/// coefficients derived deterministically from its nominal value, so the
/// graph exercises the full algebra without a second random source.
fn canonical_graph(dag: &RandomDag) -> (TimingGraph<CanonicalForm>, Vec<VertexId>) {
    let mut g = TimingGraph::new();
    let mut vs = Vec::with_capacity(dag.n);
    vs.push(g.add_input());
    for _ in 1..dag.n {
        vs.push(g.add_vertex());
    }
    g.mark_output(vs[dag.n - 1]);
    for (k, &(u, v, d)) in dag.edges.iter().enumerate() {
        let s = 0.05 * d;
        let globals = vec![s * (1.0 + (k % 3) as f64), -0.5 * s];
        let locals = vec![s, 0.25 * s * ((k % 5) as f64 - 2.0), -0.75 * s];
        let form =
            CanonicalForm::from_parts(10.0 + d, globals, locals, 0.1 * s).expect("finite form");
        g.add_edge(vs[u], vs[v], form);
    }
    (g, vs)
}

fn czero() -> CanonicalForm {
    CanonicalForm::constant(0.0, 2, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scalar_pull_forward_is_bit_identical_to_push(dag in dag()) {
        let (g, vs) = scalar_graph(&dag);
        let sources = [(vs[0], 0.0)];
        let push = hier_ssta::timing::propagate::forward(&g, &sources).unwrap();
        let schedule = LevelSchedule::build(&g).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let pull = levels::forward(&g, &schedule, &sources, workers).unwrap();
            prop_assert_eq!(&pull, &push, "workers = {}", workers);
        }
    }

    #[test]
    fn scalar_pull_backward_is_bit_identical_to_push(dag in dag()) {
        let (g, vs) = scalar_graph(&dag);
        let sinks = [(vs[dag.n - 1], 0.0)];
        let push = hier_ssta::timing::propagate::backward(&g, &sinks).unwrap();
        let schedule = LevelSchedule::build(&g).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let pull = levels::backward(&g, &schedule, &sinks, workers).unwrap();
            prop_assert_eq!(&pull, &push, "workers = {}", workers);
        }
    }

    #[test]
    fn canonical_pull_forward_matches_push_within_tolerance(dag in dag()) {
        // Clark's moment-matched `maximum` is order-sensitive: pull
        // reduces each vertex's in-edges in edge-index order, push in
        // predecessor-completion order. The two must agree to working
        // precision (this re-association is why the module fingerprint
        // payload was bumped to v4), not bit-exactly.
        let (g, vs) = canonical_graph(&dag);
        let sources = [(vs[0], czero())];
        let push = hier_ssta::timing::propagate::forward(&g, &sources).unwrap();
        let schedule = LevelSchedule::build(&g).unwrap();
        let pull = levels::forward(&g, &schedule, &sources, 1).unwrap();
        for (slot, (a, b)) in pull.iter().zip(&push).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => {
                    let rel = (a.mean() - b.mean()).abs() / b.mean().abs().max(1.0);
                    prop_assert!(rel < 0.02, "vertex {} mean drift {}", slot, rel);
                    let ds = (a.std_dev() - b.std_dev()).abs()
                        / b.std_dev().max(1e-9);
                    prop_assert!(ds < 0.1, "vertex {} sigma drift {}", slot, ds);
                }
                (None, None) => {}
                _ => prop_assert!(false, "reachability mismatch at vertex {}", slot),
            }
        }
    }

    #[test]
    fn canonical_pull_backward_is_bit_identical_to_push(dag in dag()) {
        // The backward reduction (seed first, then out-edges in edge-index
        // order) reproduces the reference's per-vertex fold exactly, so
        // even the order-sensitive algebra must match bit for bit.
        let (g, vs) = canonical_graph(&dag);
        let sinks = [(vs[dag.n - 1], czero())];
        let push = hier_ssta::timing::propagate::backward(&g, &sinks).unwrap();
        let schedule = LevelSchedule::build(&g).unwrap();
        let pull = levels::backward(&g, &schedule, &sinks, 1).unwrap();
        prop_assert_eq!(pull, push);
    }

    #[test]
    fn canonical_threading_is_bit_identical_across_worker_counts(dag in dag()) {
        let (g, vs) = canonical_graph(&dag);
        let sources = [(vs[0], czero())];
        let sinks = [(vs[dag.n - 1], czero())];
        let schedule = LevelSchedule::build(&g).unwrap();
        let fwd1 = levels::forward(&g, &schedule, &sources, 1).unwrap();
        let bwd1 = levels::backward(&g, &schedule, &sinks, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let fwd = levels::forward(&g, &schedule, &sources, workers).unwrap();
            prop_assert_eq!(&fwd, &fwd1, "forward, workers = {}", workers);
            let bwd = levels::backward(&g, &schedule, &sinks, workers).unwrap();
            prop_assert_eq!(&bwd, &bwd1, "backward, workers = {}", workers);
        }
    }

    #[test]
    fn one_schedule_serves_many_passes(dag in dag()) {
        // Regression guard for the historical bug where every propagate
        // call re-ran Kahn's algorithm: the build counter must move
        // exactly once per graph no matter how many passes run.
        let (g, vs) = scalar_graph(&dag);
        let before = levels::schedule_builds();
        let schedule = LevelSchedule::build(&g).unwrap();
        for _ in 0..5 {
            levels::forward(&g, &schedule, &[(vs[0], 0.0)], 1).unwrap();
            levels::backward(&g, &schedule, &[(vs[dag.n - 1], 0.0)], 1).unwrap();
        }
        prop_assert_eq!(levels::schedule_builds(), before + 1);
    }
}
