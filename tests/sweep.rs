//! The corner-grid mega-sweep contract, end to end:
//!
//! * fingerprint-collapsed planning — a cold sweep over N corners
//!   performs exactly `distinct_fingerprints` extractions, however many
//!   corners the analysis-level axes multiply in;
//! * bit-identity — every retained corner result matches a fresh
//!   one-scenario engine run with the corner's overlay resolved by
//!   hand, bit for bit (also property-tested over random grids);
//! * streaming aggregation — peak resident full results stay bounded by
//!   the worker count unless `retain_results` asks for everything;
//! * warm re-sweeps resolve every group from session memory and
//!   reproduce the cold records exactly;
//! * duplicate scenario names are rejected up front with a clear spec
//!   error;
//! * the serving layer runs sweeps: `AnalyzeRequest::sweep` resolves to
//!   `Outcome::Swept` with sane counters.

use hier_ssta::core::{yield_analysis, CorrelationModel, SstaConfig};
use hier_ssta::engine::{
    CornerGrid, DesignSpec, Engine, EngineError, EngineOptions, EngineRun, GridAxis, MemoryBackend,
    Scenario, ScenarioSet, SweepOptions,
};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::serve::{AnalyzeRequest, ServeOptions, Server};
use proptest::prelude::*;
use std::sync::Arc;

/// Four instances of one 4-bit adder, carry-chained — one module
/// fingerprint per extraction-relevant configuration.
fn quad_adder_spec() -> DesignSpec {
    let netlist = generators::ripple_carry_adder(4).expect("adder");
    let mut b = DesignSpec::builder(
        "quad-adder",
        DieRect {
            width: 60.0,
            height: 60.0,
        },
    );
    let m = b.add_module(netlist);
    let u0 = b.add_instance("u0", m, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", m, (25.0, 0.0)).expect("u1");
    let u2 = b.add_instance("u2", m, (0.0, 25.0)).expect("u2");
    let u3 = b.add_instance("u3", m, (25.0, 25.0)).expect("u3");
    b.connect(u0, 0, u1, 8);
    b.connect(u1, 0, u2, 8);
    b.connect(u2, 0, u3, 8);
    for (i, inst) in [u0, u1, u2, u3].into_iter().enumerate() {
        for k in 0..8 {
            b.expose_input(vec![(inst, k)]);
        }
        if i == 0 {
            b.expose_input(vec![(inst, 8)]);
        }
    }
    for k in 0..5 {
        b.expose_output(u3, k);
    }
    b.finish().expect("spec")
}

/// Runs every corner of `grid` serially on its own fresh engine via the
/// plain single-run `analyze` path with the overlay resolved by hand —
/// the reference a sweep must match bit for bit.
fn serial_reference(spec: &DesignSpec, grid: &CornerGrid) -> Vec<EngineRun> {
    let base_config = SstaConfig::paper();
    let base_options = EngineOptions::default();
    grid.iter()
        .map(|s| {
            let (config, extract, mode) =
                s.overlay
                    .resolve(&base_config, &base_options.extract, base_options.mode);
            let options = EngineOptions {
                extract,
                mode,
                ..EngineOptions::default()
            };
            Engine::with_options(config, options)
                .analyze(spec)
                .expect("serial corner analysis")
        })
        .collect()
}

/// Asserts one sweep (with `retain_results`) matches its serial
/// reference bit for bit, corner by corner.
fn assert_sweep_matches_serial(
    summary: &hier_ssta::engine::SweepSummary,
    grid: &CornerGrid,
    serial: &[EngineRun],
) {
    assert_eq!(summary.records.len(), grid.len());
    assert_eq!(summary.retained.len(), grid.len());
    for (index, (corner, serial_run)) in grid.iter().zip(serial).enumerate() {
        let record = &summary.records[index];
        assert_eq!(
            record.scenario, corner.name,
            "records must follow grid index order"
        );
        assert_eq!(
            record.mean_ps.to_bits(),
            serial_run.timing.delay.mean().to_bits(),
            "corner `{}` mean drifted from its serial run",
            corner.name
        );
        assert_eq!(
            record.sigma_ps.to_bits(),
            serial_run.timing.delay.std_dev().to_bits(),
            "corner `{}` sigma drifted from its serial run",
            corner.name
        );
        match corner.overlay.yield_target_ps {
            Some(target) => {
                let want = yield_analysis::timing_yield(&serial_run.timing.delay, target);
                assert_eq!(
                    record.timing_yield.expect("yield requested").to_bits(),
                    want.to_bits()
                );
            }
            None => assert!(record.timing_yield.is_none()),
        }

        let kept = &summary.retained[index];
        assert_eq!(kept.scenario, corner.name);
        assert_eq!(
            kept.timing.po_arrivals, serial_run.timing.po_arrivals,
            "corner `{}` must match its serial run bit for bit",
            corner.name
        );
        assert_eq!(
            kept.timing.delay.mean().to_bits(),
            serial_run.timing.delay.mean().to_bits()
        );
        assert_eq!(
            kept.timing.delay.std_dev().to_bits(),
            serial_run.timing.delay.std_dev().to_bits()
        );
        assert!(record.critical_po < kept.timing.po_arrivals.len());
    }
}

#[test]
fn cold_sweep_extracts_once_per_distinct_fingerprint() {
    // 2 sigma × 2 corr × 2 modes × 4 clocks = 32 corners. Only the
    // sigma and correlation axes are extraction-relevant: 4 distinct
    // fingerprints, and the planner must schedule exactly 4 extractions
    // without ever racing the single-flight table.
    let spec = quad_adder_spec();
    let paper = CorrelationModel::paper();
    let short_range = CorrelationModel {
        cutoff_grids: 8.0,
        ..paper
    };
    let grid = CornerGrid::builder()
        .axis(GridAxis::sigma_scales("process", &[1.0, 1.2]))
        .axis(GridAxis::correlations(
            "corr",
            [("paper", paper), ("short-range", short_range)],
        ))
        .axis(GridAxis::modes("mode"))
        .axis(GridAxis::yield_targets(
            "clock",
            &[900.0, 1000.0, 1100.0, 1200.0],
        ))
        .finish()
        .expect("grid");
    assert_eq!(grid.len(), 32);

    let mut engine = Engine::new(SstaConfig::paper());
    let cold = engine
        .analyze_sweep(&spec, &grid, &SweepOptions::default())
        .expect("cold sweep");
    assert_eq!(cold.scenarios, 32);
    assert_eq!(cold.groups, 4, "sigma × corr fingerprint groups");
    assert_eq!(cold.distinct_fingerprints, 4);
    assert_eq!(
        cold.extractions, cold.distinct_fingerprints,
        "a cold sweep extracts exactly once per distinct fingerprint"
    );
    assert_eq!(cold.analyses, 8, "one analysis per group × mode bucket");
    // Streaming (the default): no full results retained, peak residency
    // bounded by the worker count.
    assert!(cold.retained.is_empty());
    assert!(
        cold.peak_retained_results <= cold.workers,
        "streaming sweep retained {} full results with {} workers",
        cold.peak_retained_results,
        cold.workers
    );

    // Warm re-sweep on the same engine: zero extractions, every group
    // from session memory, records bit-identical to the cold pass.
    let warm = engine
        .analyze_sweep(&spec, &grid, &SweepOptions::default())
        .expect("warm sweep");
    assert_eq!(warm.extractions, 0);
    assert_eq!(warm.memory_hits, warm.distinct_fingerprints);
    for (c, w) in cold.records.iter().zip(&warm.records) {
        assert_eq!(c.scenario, w.scenario);
        assert_eq!(c.mean_ps.to_bits(), w.mean_ps.to_bits());
        assert_eq!(c.sigma_ps.to_bits(), w.sigma_ps.to_bits());
    }
}

#[test]
fn retained_sweep_matches_serial_runs_bit_for_bit() {
    // 2 sigma × 2 modes × 2 clocks = 8 corners, 2 fingerprint groups.
    let spec = quad_adder_spec();
    let grid = CornerGrid::builder()
        .axis(GridAxis::sigma_scales("process", &[1.0, 1.15]))
        .axis(GridAxis::modes("mode"))
        .axis(GridAxis::yield_targets("clock", &[950.0, 1150.0]))
        .finish()
        .expect("grid");

    let options = SweepOptions {
        retain_results: true,
        ..SweepOptions::default()
    };
    let summary = Engine::new(SstaConfig::paper())
        .analyze_sweep(&spec, &grid, &options)
        .expect("retained sweep");
    assert_eq!(summary.extractions, summary.distinct_fingerprints);
    assert_eq!(summary.distinct_fingerprints, 2);

    let serial = serial_reference(&spec, &grid);
    assert_sweep_matches_serial(&summary, &grid, &serial);

    // The named accessors agree with positional order.
    let name = &grid.scenario(3).name;
    assert_eq!(
        summary.record(name).expect("record by name").scenario,
        summary.records[3].scenario
    );
    assert_eq!(
        summary
            .retained_result(name)
            .expect("retained by name")
            .scenario,
        summary.retained[3].scenario
    );
}

#[test]
fn duplicate_scenario_names_are_rejected_up_front() {
    let spec = quad_adder_spec();
    let set = ScenarioSet::new()
        .with(Scenario::new("nominal"))
        .with(Scenario::new("other"))
        .with(Scenario::new("nominal"));
    let err = Engine::new(SstaConfig::paper())
        .analyze_batch(&spec, &set)
        .expect_err("duplicate names must be rejected");
    assert!(
        matches!(err, EngineError::Spec { .. }),
        "expected a spec error, got {err}"
    );
    assert!(
        err.to_string().contains("\"nominal\""),
        "the error must name the duplicate: {err}"
    );
}

#[test]
fn serving_layer_runs_sweeps() {
    let spec = Arc::new(quad_adder_spec());
    let grid = CornerGrid::builder()
        .axis(GridAxis::sigma_scales("process", &[1.0, 1.2]))
        .axis(GridAxis::modes("mode"))
        .axis(GridAxis::yield_targets("clock", &[900.0, 1100.0]))
        .finish()
        .expect("grid");

    let server = Server::start(
        SstaConfig::paper(),
        Arc::new(MemoryBackend::new()),
        ServeOptions::default(),
    );
    let ticket = server.submit(AnalyzeRequest::sweep(
        Arc::clone(&spec),
        grid.clone(),
        SweepOptions::default(),
    ));
    let response = ticket.wait();
    assert!(
        response.outcome.is_completed(),
        "sweep request must complete"
    );
    let summary = response.outcome.sweep().expect("swept outcome");
    assert_eq!(summary.scenarios, grid.len());
    assert_eq!(summary.extractions, summary.distinct_fingerprints);
    assert_eq!(summary.records.len(), grid.len());

    let snapshot = server.shutdown();
    assert_eq!(snapshot.completed, 1);
    assert_eq!(snapshot.lost(), 0);
}

/// Strategy: a random 1–3-axis grid mixing one extraction-relevant axis
/// (sigma scaling) with analysis-level axes (mode, clock target), up to
/// 3 × 2 × 2 = 12 corners. Axis points are contiguous windows into
/// fixed pools (the vendored proptest has no subsequence strategy).
fn random_grid() -> impl Strategy<Value = CornerGrid> {
    const SIGMAS: [f64; 5] = [0.85, 0.95, 1.0, 1.1, 1.25];
    const CLOCKS: [f64; 3] = [850.0, 1000.0, 1200.0];
    (1usize..4, 0usize..3, 0u32..2, 0usize..3, 0usize..2).prop_map(
        |(n_sigmas, sigma_at, with_modes, n_clocks, clock_at)| {
            let sigmas = &SIGMAS[sigma_at..sigma_at + n_sigmas];
            let mut b = CornerGrid::builder().axis(GridAxis::sigma_scales("process", sigmas));
            if with_modes == 1 {
                b = b.axis(GridAxis::modes("mode"));
            }
            if n_clocks > 0 {
                let clocks = &CLOCKS[clock_at..(clock_at + n_clocks).min(CLOCKS.len())];
                b = b.axis(GridAxis::yield_targets("clock", clocks));
            }
            b.finish().expect("random grid is valid by construction")
        },
    )
}

proptest! {
    // Each case runs a full sweep plus one serial engine per corner;
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_grid_sweeps_match_one_by_one_analyses(grid in random_grid()) {
        let spec = quad_adder_spec();
        let options = SweepOptions {
            retain_results: true,
            ..SweepOptions::default()
        };
        let summary = Engine::new(SstaConfig::paper())
            .analyze_sweep(&spec, &grid, &options)
            .expect("sweep");

        // The planner's collapse: one extraction per distinct sigma
        // scale, no matter which analysis-level axes multiplied in.
        prop_assert_eq!(summary.scenarios, grid.len());
        prop_assert_eq!(summary.extractions, summary.distinct_fingerprints);
        prop_assert_eq!(summary.distinct_fingerprints, grid.axes()[0].len());

        let serial = serial_reference(&spec, &grid);
        assert_sweep_matches_serial(&summary, &grid, &serial);
    }
}
