//! Cross-checks for the fast assembly path introduced with the parallel
//! design-level pipeline:
//!
//! * property tests of the Householder + implicit-shift QL eigensolver
//!   against the cyclic Jacobi oracle on random SPD covariance matrices;
//! * a bit-identity regression of the parallel design-level analysis
//!   against the serial path on a multi-instance design.

use hier_ssta::core::{
    analyze_with, AnalyzeOptions, CorrelationMode, Design, DesignBuilder, ExtractOptions,
    ModuleContext, SstaConfig,
};
use hier_ssta::math::eigen::symmetric_eigen_jacobi;
use hier_ssta::math::tridiag::symmetric_eigen_ql;
use hier_ssta::math::Matrix;
use hier_ssta::netlist::{generators, DieRect};
use proptest::prelude::*;
use std::sync::Arc;

/// A random symmetric positive-definite matrix `B·Bᵀ + ε·I` of size `n`.
fn spd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.5..1.5f64, n * n).prop_map(move |entries| {
        let b = Matrix::from_vec(n, n, entries).expect("n*n entries");
        let mut spd = b.matmul(&b.transposed()).expect("square product");
        for i in 0..n {
            spd[(i, i)] += 1e-3;
        }
        spd
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ql_solver_matches_jacobi_oracle_on_random_spd(a in spd_matrix(10)) {
        let ql = symmetric_eigen_ql(&a).expect("QL solve");
        let jacobi = symmetric_eigen_jacobi(&a).expect("Jacobi solve");
        let scale = (0..a.rows()).map(|i| a[(i, i)].abs()).fold(1.0, f64::max);

        // Sorted spectrum, descending, and agreeing with the oracle.
        for w in ql.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1], "spectrum not sorted: {:?}", ql.eigenvalues);
        }
        for (x, y) in ql.eigenvalues.iter().zip(&jacobi.eigenvalues) {
            prop_assert!((x - y).abs() <= 1e-8 * scale, "eigenvalue drift: {x} vs {y}");
        }

        // Orthonormal eigenvectors.
        let vtv = ql.eigenvectors.transposed().matmul(&ql.eigenvectors).expect("square");
        let ortho_err = vtv.max_abs_diff(&Matrix::identity(a.rows())).expect("same shape");
        prop_assert!(ortho_err < 1e-8, "eigenvectors not orthonormal: {ortho_err}");

        // Reconstruction A = V·Λ·Vᵀ to 1e-9 (relative to the scale).
        let n = a.rows();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = ql.eigenvalues[i];
        }
        let back = ql.eigenvectors.matmul(&lam).expect("shape")
            .matmul(&ql.eigenvectors.transposed()).expect("shape");
        let recon_err = back.max_abs_diff(&a).expect("same shape");
        prop_assert!(recon_err <= 1e-9 * scale.max(1.0), "reconstruction error {recon_err}");
    }
}

/// Six adder instances tiled 3×2 on one die, chained left to right — big
/// enough that partition, covariance, PCA and replacement all do real
/// work, and every parallel fan-out has more items than workers.
fn six_instance_design() -> Design {
    let netlist = generators::ripple_carry_adder(4).expect("generator");
    let config = SstaConfig::paper();
    let ctx = Arc::new(ModuleContext::characterize(netlist, &config).expect("characterize"));
    let model = Arc::new(
        ctx.extract_model(&ExtractOptions::default())
            .expect("extract"),
    );
    let (mw, mh) = model.geometry().extent_um();
    let die = DieRect {
        width: 3.0 * mw,
        height: 2.0 * mh,
    };
    let mut b = DesignBuilder::new("hex", die, config);
    let ids: Vec<usize> = (0..6)
        .map(|i| {
            let (r, c) = (i / 3, i % 3);
            b.add_instance(
                format!("u{i}"),
                Arc::clone(&model),
                None,
                (c as f64 * mw, r as f64 * mh),
            )
            .expect("place")
        })
        .collect();
    // Chain: sum bits (outputs 0..4) of u_i feed the a-inputs of u_{i+1},
    // carry-out (output 4) feeds carry-in (input 8).
    for w in ids.windows(2) {
        for k in 0..4 {
            b.connect(w[0], k, w[1], k, 0.0).expect("wire");
        }
        b.connect(w[0], 4, w[1], 8, 0.0).expect("wire");
    }
    // First instance: all 9 inputs are PIs; the rest expose inputs 4..8.
    for k in 0..9 {
        b.expose_input(vec![(ids[0], k)]).expect("pi");
    }
    for &id in &ids[1..] {
        for k in 4..8 {
            b.expose_input(vec![(id, k)]).expect("pi");
        }
    }
    for k in 0..5 {
        b.expose_output(*ids.last().expect("nonempty"), k)
            .expect("po");
    }
    b.finish().expect("design")
}

#[test]
fn parallel_design_analysis_is_bit_identical_to_serial() {
    let design = six_instance_design();
    for mode in [CorrelationMode::Proposed, CorrelationMode::GlobalOnly] {
        let serial =
            analyze_with(&design, mode, &AnalyzeOptions { threads: 1 }).expect("serial analysis");
        for threads in [2, 3, 8, 0] {
            let parallel = analyze_with(&design, mode, &AnalyzeOptions { threads })
                .expect("parallel analysis");
            assert_eq!(
                parallel.po_arrivals, serial.po_arrivals,
                "{mode:?} with {threads} threads diverged from serial"
            );
            assert_eq!(parallel.delay, serial.delay);
            assert_eq!(parallel.n_local_components, serial.n_local_components);
        }
    }
}

#[test]
fn phase_timings_cover_the_elapsed_time() {
    let design = six_instance_design();
    let t = analyze_with(
        &design,
        CorrelationMode::Proposed,
        &AnalyzeOptions::default(),
    )
    .expect("analysis");
    assert!(t.phases.total_seconds() > 0.0);
    assert!(t.phases.total_seconds() <= t.elapsed_seconds + 1e-9);
    assert!(t.phases.eigen_seconds > 0.0, "eigen phase untimed");
}
