//! Cross-process conformance of the sharded filesystem backend.
//!
//! Spawns several copies of the `store_race` worker binary against one
//! store root. Workers race put/get/remove on a small shared key set
//! with self-consistent payloads; the atomic temp-file+rename write
//! path must guarantee that no reader in any process ever observes a
//! torn artifact, and that each worker's durable key survives its
//! siblings' traffic.

use hier_ssta::engine::{FsBackend, StorageBackend};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const WORKERS: u8 = 4;
const ITERS: usize = 60;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hier-ssta-store-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Mirrors `store_race`'s payload contract (one byte value repeated,
/// length encoding the tag).
fn assert_consistent(key: &str, bytes: &[u8]) {
    let tag = bytes[0];
    assert_eq!(bytes.len(), 100 + tag as usize, "key {key}: bad length");
    assert!(bytes.iter().all(|&b| b == tag), "key {key}: torn artifact");
}

#[test]
fn concurrent_processes_never_tear_or_lose_artifacts() {
    let root = temp_dir();
    let children: Vec<_> = (0..WORKERS)
        .map(|id| {
            Command::new(env!("CARGO_BIN_EXE_store_race"))
                .arg(&root)
                .arg(id.to_string())
                .arg(ITERS.to_string())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    for (id, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("wait");
        assert!(
            out.status.success(),
            "worker {id} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "ok");
    }

    // Post-mortem from the parent: everything still stored is whole,
    // and every worker's durable key survived.
    let backend = FsBackend::open(&root).expect("open");
    let keys = backend.list_keys().expect("list");
    for key in &keys {
        let bytes = backend.get(key).expect("get").expect("listed key present");
        assert_consistent(key, &bytes);
    }
    for id in 0..WORKERS {
        let durable = format!("{:x}", 0xa + id as u32).repeat(64);
        let bytes = backend
            .get(&durable)
            .expect("get durable")
            .unwrap_or_else(|| panic!("worker {id}'s durable key was lost"));
        assert_consistent(&durable, &bytes);
        assert_eq!(bytes[0], id);
    }
    let _ = std::fs::remove_dir_all(&root);
}
