//! End-to-end extraction flow across crates: generate a benchmark,
//! characterize it, extract a timing model, and validate the model's
//! statistical delay matrix against Monte Carlo of the original netlist —
//! the paper's Table I acceptance criteria at test scale.

use hier_ssta::core::{ExtractOptions, ModuleContext, SstaConfig};
use hier_ssta::mc::{model_vs_mc, module_delay_matrix, McOptions};
use hier_ssta::netlist::generators;

fn mc_options() -> McOptions {
    McOptions {
        samples: 3000,
        ..Default::default()
    }
}

#[test]
fn c432_model_matches_monte_carlo_within_paper_band() {
    let ctx = ModuleContext::characterize(
        generators::iscas85("c432").expect("benchmark"),
        &SstaConfig::paper(),
    )
    .expect("characterize");
    let model = ctx
        .extract_model(&ExtractOptions::default())
        .expect("extract");
    let mc = module_delay_matrix(&ctx, &mc_options()).expect("MC");
    let err = model_vs_mc(&model.delay_matrix().expect("matrix"), &mc);

    assert_eq!(err.connectivity_mismatches, 0);
    // Paper band: merr <= 1.21%, verr <= 1.6% across ISCAS85 (at 10k
    // samples); allow headroom for the reduced MC effort here.
    assert!(err.merr < 0.02, "merr = {}", err.merr);
    assert!(err.verr < 0.06, "verr = {}", err.verr);
    // Compression actually happened.
    assert!(model.stats().edge_ratio() < 0.6);
    assert!(model.stats().vertex_ratio() < 0.6);
}

#[test]
fn adder_model_is_equivalent_for_design_use() {
    // For a module whose model and original graph are both available, the
    // analytic delay matrices must agree pair-by-pair within tolerance.
    let ctx = ModuleContext::characterize(
        generators::ripple_carry_adder(12).expect("adder"),
        &SstaConfig::paper(),
    )
    .expect("characterize");
    let model = ctx
        .extract_model(&ExtractOptions::default())
        .expect("extract");
    let orig = ctx.delay_matrix().expect("matrix");
    let compressed = model.delay_matrix().expect("matrix");
    for (i, j, d) in orig.iter() {
        let r = compressed.get(i, j).expect("connectivity preserved");
        let mean_rel = (d.mean() - r.mean()).abs() / d.mean();
        assert!(mean_rel < 0.02, "pair ({i},{j}) mean error {mean_rel}");
        let sigma_rel = (d.std_dev() - r.std_dev()).abs() / d.std_dev();
        assert!(sigma_rel < 0.08, "pair ({i},{j}) sigma error {sigma_rel}");
    }
}

#[test]
fn extraction_scales_across_benchmark_sizes() {
    // Extraction must succeed and compress on a spread of circuit sizes.
    for name in ["c432", "c499", "c880"] {
        let ctx = ModuleContext::characterize(
            generators::iscas85(name).expect("benchmark"),
            &SstaConfig::paper(),
        )
        .expect("characterize");
        let model = ctx
            .extract_model(&ExtractOptions::default())
            .expect("extract");
        let stats = model.stats();
        assert!(
            stats.model_edges < stats.original_edges,
            "{name}: no compression"
        );
        assert_eq!(model.n_inputs(), ctx.netlist().n_inputs(), "{name}");
        assert_eq!(model.n_outputs(), ctx.netlist().n_outputs(), "{name}");
    }
}
