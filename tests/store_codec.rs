//! The storage subsystem contract, across backends and codecs:
//!
//! * every [`StorageBackend`] passes one shared conformance suite
//!   (`FsBackend` and `MemoryBackend` are interchangeable);
//! * malformed store keys are rejected before they can touch a backend;
//! * the binary codec round-trips arbitrary extracted models to
//!   identical bytes, and binary-loaded models analyze bit-identically
//!   to JSON-loaded ones (property-tested);
//! * a v1/JSON envelope written by the pre-v2 code still loads, and is
//!   migrated to v2 in place on the hit;
//! * the binary c880 artifact is at most half the JSON payload size.

use hier_ssta::core::{ExtractOptions, ModuleContext, SstaConfig, TimingModel};
use hier_ssta::engine::store::envelope;
use hier_ssta::engine::{
    Codec, DesignSpec, Engine, EngineError, EngineOptions, FaultInjectingBackend, FaultPlan,
    FsBackend, MemoryBackend, ModelStore, RemoteBackend, StorageBackend, TieredBackend,
    TieredOptions,
};
use hier_ssta::math::digest::sha256;
use hier_ssta::netlist::{generators, DieRect};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hier-ssta-store-codec-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn extract(netlist: hier_ssta::netlist::Netlist, config: &SstaConfig) -> TimingModel {
    let ctx = ModuleContext::characterize(netlist, config).expect("characterize");
    ctx.extract_model(&ExtractOptions::default())
        .expect("extract")
}

fn hex_key(fill: u8) -> String {
    (fill as char).to_string().repeat(64)
}

// ---------------------------------------------------------------------
// Backend conformance: every backend obeys the same contract.
// ---------------------------------------------------------------------

/// The suite, parameterized over how payloads become stored bytes.
/// Plain backends move raw bytes (`encode` is the identity); a
/// verifying [`RemoteBackend`] re-checks the SSTM envelope on every
/// get, so its conformance run stores real envelopes.
fn backend_conformance_encoded<B: StorageBackend>(backend: &B, encode: &dyn Fn(&[u8]) -> Vec<u8>) {
    let (ka, kb) = (hex_key(b'a'), hex_key(b'b'));
    let (alpha, alpha_v2, beta) = (encode(b"alpha"), encode(b"alpha v2"), encode(b"beta"));

    // Empty store.
    assert!(backend.is_empty().expect("is_empty"));
    assert_eq!(backend.len().expect("len"), 0);
    assert_eq!(backend.list_keys().expect("list"), Vec::<String>::new());
    assert!(backend.get(&ka).expect("get absent").is_none());
    assert!(!backend.contains(&ka).expect("contains absent"));
    assert!(!backend.remove(&ka).expect("remove absent"));

    // Put / get round trip.
    backend.put(&kb, &beta).expect("put");
    backend.put(&ka, &alpha).expect("put");
    assert_eq!(backend.get(&ka).expect("get"), Some(alpha));
    assert!(backend.contains(&ka).expect("contains"));
    assert!(!backend.is_empty().expect("is_empty"));
    assert_eq!(backend.len().expect("len"), 2);
    // Keys come back sorted, whatever the insertion order.
    assert_eq!(
        backend.list_keys().expect("list"),
        vec![ka.clone(), kb.clone()]
    );

    // Overwrite replaces.
    backend.put(&ka, &alpha_v2).expect("overwrite");
    assert_eq!(backend.get(&ka).expect("get"), Some(alpha_v2));
    assert_eq!(backend.len().expect("len"), 2);

    // Remove reports prior existence.
    assert!(backend.remove(&ka).expect("remove"));
    assert!(!backend.remove(&ka).expect("second remove"));
    assert_eq!(backend.len().expect("len"), 1);

    // Clear empties everything.
    backend.clear().expect("clear");
    assert!(backend.is_empty().expect("is_empty after clear"));
    assert_eq!(
        backend.list_keys().expect("list after clear"),
        Vec::<String>::new()
    );
}

fn backend_conformance<B: StorageBackend>(backend: &B) {
    backend_conformance_encoded(backend, &|payload| payload.to_vec());
}

#[test]
fn fs_backend_passes_the_conformance_suite() {
    let dir = temp_dir("conformance-fs");
    let backend = FsBackend::open(&dir).expect("open");
    backend_conformance(&backend);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_backend_passes_the_conformance_suite() {
    backend_conformance(&MemoryBackend::new());
}

/// Self-validating payload: every byte is the writer's tag and the
/// length encodes it too, so any mix of two writes — a torn read —
/// fails both checks.
fn tagged_payload(tag: u8) -> Vec<u8> {
    vec![tag; 512 + tag as usize]
}

fn assert_intact(key: &str, bytes: &[u8]) {
    let tag = bytes[0];
    assert_eq!(
        bytes.len(),
        512 + tag as usize,
        "torn read under `{key}`: length disagrees with tag {tag}"
    );
    assert!(
        bytes.iter().all(|&b| b == tag),
        "torn read under `{key}`: mixed writer tags"
    );
}

#[test]
fn fs_backend_survives_concurrent_writers_without_torn_or_lost_artifacts() {
    const WRITERS: usize = 8;
    const ROUNDS: usize = 20;
    const PRIVATE_KEYS: usize = 4;

    let dir = temp_dir("concurrent-fs");
    let backend = FsBackend::open(&dir).expect("open");
    // One key every thread hammers (overwrite races on a single file)
    // plus per-thread key ranges (create/remove races across the
    // sharded tree).
    let contended = hex_key(b'f');
    let private = |writer: usize, slot: usize| format!("{:064x}", 1 + writer * PRIVATE_KEYS + slot);

    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let backend = &backend;
            let contended = &contended;
            scope.spawn(move || {
                let tag = writer as u8 + 1;
                for round in 0..ROUNDS {
                    backend.put(contended, &tagged_payload(tag)).expect("put");
                    if let Some(bytes) = backend.get(contended).expect("get") {
                        assert_intact(contended, &bytes);
                    }
                    let key = private(writer, round % PRIVATE_KEYS);
                    backend.put(&key, &tagged_payload(tag)).expect("put");
                    let bytes = backend.get(&key).expect("get").expect("own key present");
                    assert_intact(&key, &bytes);
                    // Churn: drop every other private slot, re-created
                    // next round — remove races put on neighbours' shards.
                    if round % 2 == 1 {
                        assert!(backend.remove(&key).expect("remove"), "own key vanished");
                    }
                }
            });
        }
    });

    // Quiesced store: the contended key holds one writer's payload in
    // full, every surviving private key is intact, and no key was lost.
    let survivor = backend
        .get(&contended)
        .expect("get")
        .expect("contended key survives");
    assert_intact(&contended, &survivor);
    let mut expected: Vec<String> = vec![contended.clone()];
    for writer in 0..WRITERS {
        for slot in 0..PRIVATE_KEYS {
            // ROUNDS is even, so odd slots saw a final remove and even
            // slots a final put.
            if slot % 2 == 0 {
                expected.push(private(writer, slot));
            }
        }
    }
    expected.sort();
    assert_eq!(backend.list_keys().expect("list"), expected);
    for key in &expected {
        let bytes = backend.get(key).expect("get").expect("listed key loads");
        assert_intact(key, &bytes);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fs_backend_gc_evicts_least_recently_modified_artifacts_first() {
    let dir = temp_dir("gc-fs");
    let backend = FsBackend::open(&dir).expect("open");

    // Three artifacts with strictly increasing mtimes and a known size
    // each. The sleeps keep the ordering unambiguous even on coarse
    // filesystem timestamp granularity.
    let keys = [hex_key(b'1'), hex_key(b'2'), hex_key(b'3')];
    for key in &keys {
        backend.put(key, &[0u8; 1000]).expect("put");
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    // Already under budget: nothing to do.
    assert_eq!(backend.gc(u64::MAX).expect("gc"), 0);
    assert_eq!(backend.health().gc_evictions, 0);
    assert_eq!(backend.len().expect("len"), 3);

    // Budget for two artifacts: the oldest one goes, newer ones stay.
    assert_eq!(backend.gc(2000).expect("gc"), 1);
    assert_eq!(backend.list_keys().expect("list"), keys[1..].to_vec());

    // Touching the survivor that is now oldest makes it newest again,
    // so the next collection evicts the other one.
    backend.put(&keys[1], &[0u8; 1000]).expect("refresh");
    std::thread::sleep(std::time::Duration::from_millis(25));
    assert_eq!(backend.gc(1000).expect("gc"), 1);
    assert_eq!(backend.list_keys().expect("list"), vec![keys[1].clone()]);

    // The counter surfaces through the health snapshot.
    assert_eq!(backend.health().gc_evictions, 2);

    // A zero budget clears the store entirely.
    assert_eq!(backend.gc(0).expect("gc"), 1);
    assert!(backend.is_empty().expect("is_empty"));
    assert_eq!(backend.health().gc_evictions, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn boxed_and_shared_backends_pass_the_conformance_suite() {
    // The smart-pointer impls the engine relies on behave identically.
    let boxed: Box<dyn StorageBackend> = Box::new(MemoryBackend::new());
    backend_conformance(&boxed);
    backend_conformance(&Arc::new(MemoryBackend::new()));
}

#[test]
fn tiered_backend_passes_the_conformance_suite() {
    backend_conformance(&TieredBackend::with_defaults(MemoryBackend::new()));
    // A hot tier too small for any entry degenerates to the cold tier
    // alone — same contract.
    let cold_only = TieredBackend::new(
        MemoryBackend::new(),
        TieredOptions {
            hot_capacity_bytes: 0,
            ..TieredOptions::default()
        },
    );
    backend_conformance(&cold_only);
}

#[test]
fn remote_backend_passes_the_conformance_suite() {
    // The verifying configuration (the default) re-checks the SSTM
    // envelope on every get, so its run stores real envelopes.
    let verifying = RemoteBackend::perfect(MemoryBackend::new());
    backend_conformance_encoded(&verifying, &|payload| {
        envelope::encode_envelope(Codec::Binary, payload)
    });
    assert!(verifying.quarantined_keys().is_empty());
    assert_eq!(verifying.health().retries, 0);

    // With verification off it is a plain byte store.
    let raw = RemoteBackend::perfect(MemoryBackend::new()).without_verification();
    backend_conformance(&raw);
}

#[test]
fn fault_injecting_backend_with_an_empty_plan_passes_the_conformance_suite() {
    let backend = FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::none());
    backend_conformance(&backend);
    assert_eq!(backend.counters().total(), 0, "empty plan injects nothing");
}

#[test]
fn the_full_backend_stack_passes_the_conformance_suite() {
    // The production fault-tolerant stack: hot tier over a retrying
    // remote over a (quiet) fault injector over memory.
    let transport = FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::none());
    let stack = TieredBackend::with_defaults(RemoteBackend::perfect(transport));
    backend_conformance_encoded(&stack, &|payload| {
        envelope::encode_envelope(Codec::Binary, payload)
    });
    // Cache traffic (hot hits, promotions) is expected; faults are not.
    let health = stack.health();
    assert_eq!(health.retries, 0);
    assert_eq!(health.quarantined, 0);
    assert_eq!(health.faults_injected, 0);
    assert_eq!(health.cold_failures, 0);
    assert_eq!(health.breaker_trips, 0);
}

// ---------------------------------------------------------------------
// Key validation: the store is not a path-interpolation gadget.
// ---------------------------------------------------------------------

#[test]
fn store_rejects_malformed_keys_before_the_backend_sees_them() {
    let dir = temp_dir("key-validation");
    let store = ModelStore::open(&dir).expect("open");
    let model = extract(
        generators::ripple_carry_adder(2).expect("adder"),
        &SstaConfig::paper(),
    );

    for bad in [
        "",
        "short",
        &hex_key(b'a')[..63],
        &format!("{}0", hex_key(b'a')),
        &hex_key(b'a').to_uppercase(),
        &hex_key(b'z'),
        "../../../../tmp/escape",
        &format!("..%2f{}", &hex_key(b'a')[..58]),
    ] {
        assert!(
            matches!(
                store.save(bad, &model),
                Err(EngineError::Store { ref reason }) if reason.contains("invalid store key")
            ),
            "save under `{bad}` must be rejected"
        );
        assert!(
            matches!(store.load(bad), Err(EngineError::Store { .. })),
            "load under `{bad}` must be rejected"
        );
        assert!(!store.contains(bad));
    }
    // Nothing leaked onto disk — not even outside the root.
    assert!(store.is_empty().expect("is_empty"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Codec round trips.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary extracted models survive the binary codec bit-exactly:
    /// decode ∘ encode is the identity on bytes, and the decoded model's
    /// statistical delay matrix is bit-identical.
    #[test]
    fn binary_codec_round_trips_arbitrary_models(
        kind in 0usize..3,
        size in 2usize..7,
        grid_side in 4usize..12,
    ) {
        let netlist = match kind {
            0 => generators::ripple_carry_adder(size).expect("adder"),
            1 => generators::parity_tree(size + 2).expect("parity"),
            _ => generators::array_multiplier(size.min(4)).expect("multiplier"),
        };
        let mut config = SstaConfig::paper();
        config.grid_side_cells = grid_side; // vary the PCA dimensions too
        let model = extract(netlist, &config);

        let bytes = hier_ssta::core::codec::encode_model(&model);
        let back = hier_ssta::core::codec::decode_model(&bytes).expect("decode");
        prop_assert_eq!(
            &hier_ssta::core::codec::encode_model(&back),
            &bytes,
            "re-encode must reproduce identical bytes"
        );

        let a = model.delay_matrix().expect("matrix");
        let b = back.delay_matrix().expect("matrix");
        let (worst_mean, mismatched) = a.compare_with(&b, |d| d.mean());
        prop_assert_eq!(mismatched, 0);
        prop_assert_eq!(worst_mean, 0.0);
        let (worst_sigma, _) = a.compare_with(&b, |d| d.std_dev());
        prop_assert_eq!(worst_sigma, 0.0);
    }
}

#[test]
fn both_codecs_round_trip_through_both_backends_bit_exactly() {
    let model = extract(
        generators::ripple_carry_adder(5).expect("adder"),
        &SstaConfig::paper(),
    );
    let key = hex_key(b'c');
    let reference = model.delay_matrix().expect("matrix");

    let dir = temp_dir("codec-matrix");
    for codec in [Codec::Json, Codec::Binary] {
        let fs_store = ModelStore::open(dir.join(codec.name()))
            .expect("open")
            .with_codec(codec);
        let mem_store = ModelStore::with_backend(MemoryBackend::new()).with_codec(codec);

        fs_store.save(&key, &model).expect("fs save");
        mem_store.save(&key, &model).expect("mem save");
        for (store_name, loaded) in [
            (
                "fs",
                fs_store.load(&key).expect("fs load").expect("present"),
            ),
            (
                "mem",
                mem_store.load(&key).expect("mem load").expect("present"),
            ),
        ] {
            let got = loaded.delay_matrix().expect("matrix");
            let (worst, mismatched) = reference.compare_with(&got, |d| d.mean());
            assert_eq!(mismatched, 0, "{store_name}/{codec}");
            assert_eq!(worst, 0.0, "{store_name}/{codec}: bit-exact mean");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// v1 migration.
// ---------------------------------------------------------------------

/// Builds a v1 envelope byte-for-byte the way the pre-v2 code did
/// (4-byte magic, u16 version 1, u64 length, 8-byte SHA-256 prefix) —
/// deliberately hand-rolled rather than calling today's encoder, so
/// this keeps failing loudly if the v1 layout is ever misremembered.
fn v1_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(22 + payload.len());
    out.extend_from_slice(b"SSTM");
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sha256(payload).prefix_u64().to_be_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn v1_json_artifacts_still_load_and_migrate_to_v2() {
    let model = extract(
        generators::ripple_carry_adder(4).expect("adder"),
        &SstaConfig::paper(),
    );
    let key = hex_key(b'd');

    // Plant a v1 artifact exactly as the old code wrote it.
    let backend = Arc::new(MemoryBackend::new());
    let json = serde_json::to_vec(&model).expect("serialize");
    let v1_bytes = v1_envelope(&json);
    // The hand-rolled layout matches the envelope module's own v1 encoder.
    assert_eq!(v1_bytes, envelope::encode_envelope_v1(&json));
    backend.put(&key, &v1_bytes).expect("plant v1 artifact");

    // The v2 reader serves it, reporting what it found.
    let store = ModelStore::with_backend(Arc::clone(&backend));
    let (loaded, info) = store
        .load_traced(&key)
        .expect("v1 artifact loads")
        .expect("present");
    assert_eq!(info.version, 1);
    assert_eq!(info.codec, Codec::Json);
    assert_eq!(info.bytes, v1_bytes.len());
    let a = model.delay_matrix().expect("matrix");
    let b = loaded.delay_matrix().expect("matrix");
    let (worst, mismatched) = a.compare_with(&b, |d| d.mean());
    assert_eq!(mismatched, 0);
    assert_eq!(worst, 0.0);

    // ... and the hit rewrote the artifact as v2/binary in place.
    let migrated = backend.get(&key).expect("get").expect("still present");
    let env = envelope::decode_envelope(&migrated).expect("valid envelope");
    assert_eq!(env.version, envelope::FORMAT_VERSION);
    assert_eq!(env.codec, Codec::Binary);
    assert!(
        migrated.len() * 2 <= v1_bytes.len(),
        "migration should also shrink the artifact ({} vs {})",
        migrated.len(),
        v1_bytes.len()
    );

    // The migrated artifact round-trips on its own.
    let again = store.load_traced(&key).expect("load").expect("present");
    assert_eq!(again.1.version, envelope::FORMAT_VERSION);
    assert_eq!(again.1.codec, Codec::Binary);
}

// ---------------------------------------------------------------------
// Payload size: the c880 acceptance criterion.
// ---------------------------------------------------------------------

#[test]
fn binary_c880_artifact_is_at_most_half_the_json_size() {
    let model = extract(
        generators::iscas85("c880").expect("c880"),
        &SstaConfig::paper(),
    );
    let json = serde_json::to_vec(&model).expect("serialize");
    let binary = hier_ssta::core::codec::encode_model(&model);
    assert!(
        binary.len() * 2 <= json.len(),
        "c880 binary payload {} bytes vs JSON {} bytes: expected ≤ 50%",
        binary.len(),
        json.len()
    );
}

// ---------------------------------------------------------------------
// Engine-level determinism across backends × codecs × scheduling.
// ---------------------------------------------------------------------

/// Two distinct modules so the parallel scheduler has real fan-out.
fn two_module_spec() -> DesignSpec {
    let mut b = DesignSpec::builder(
        "mixed",
        DieRect {
            width: 80.0,
            height: 40.0,
        },
    );
    let ms = b.add_module(generators::ripple_carry_adder(4).expect("adder4"));
    let ml = b.add_module(generators::ripple_carry_adder(5).expect("adder5"));
    let u0 = b.add_instance("u0", ms, (0.0, 0.0)).expect("u0");
    let u1 = b.add_instance("u1", ml, (30.0, 0.0)).expect("u1");
    for k in 0..5 {
        b.connect(u0, k, u1, k);
    }
    for k in 0..9 {
        b.expose_input(vec![(u0, k)]);
    }
    for k in 5..11 {
        b.expose_input(vec![(u1, k)]);
    }
    for k in 0..6 {
        b.expose_output(u1, k);
    }
    b.finish().expect("spec")
}

#[test]
fn parallel_vs_serial_runs_are_bit_identical_across_backends_and_codecs() {
    let spec = two_module_spec();
    let dir = temp_dir("determinism");
    let mut reference: Option<Vec<_>> = None;

    for codec in [Codec::Json, Codec::Binary] {
        for backend_name in ["fs", "memory"] {
            for threads in [1usize, 4] {
                let options = EngineOptions {
                    threads,
                    codec,
                    ..EngineOptions::default()
                };
                let engine = Engine::with_options(SstaConfig::paper(), options);
                let mut engine = match backend_name {
                    "fs" => engine
                        .with_store(dir.join(format!("{}-{threads}", codec.name())))
                        .expect("store"),
                    _ => engine.with_backend(MemoryBackend::new()),
                };
                // Cold run extracts and writes through the chosen
                // backend/codec; a second run reads everything back.
                let cold = engine.analyze(&spec).expect("cold analysis");
                assert_eq!(cold.stats.extractions, 2);
                assert_eq!(cold.stats.store_writes, 2);
                assert_eq!(cold.stats.store_codec, Some(codec));
                assert!(cold.stats.store_bytes_written > 0);

                let arrivals = &cold.timing.po_arrivals;
                match &reference {
                    None => reference = Some(arrivals.clone()),
                    Some(r) => assert_eq!(
                        arrivals, r,
                        "{backend_name}/{codec}/threads={threads} diverged"
                    ),
                }

                // Warm restart over the same backend: store hits only,
                // and byte accounting reflects the reads.
                if backend_name == "fs" {
                    let mut warm = Engine::with_options(
                        SstaConfig::paper(),
                        EngineOptions {
                            threads,
                            codec,
                            ..EngineOptions::default()
                        },
                    )
                    .with_store(dir.join(format!("{}-{threads}", codec.name())))
                    .expect("store");
                    let warm_run = warm.analyze(&spec).expect("warm analysis");
                    assert_eq!(warm_run.stats.extractions, 0);
                    assert_eq!(warm_run.stats.store_hits, 2);
                    assert!(warm_run.stats.store_bytes_read > 0);
                    assert_eq!(warm_run.stats.store_bytes_written, 0);
                    assert_eq!(
                        &warm_run.timing.po_arrivals,
                        reference.as_ref().expect("set above")
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engines_can_share_one_memory_backend() {
    let spec = two_module_spec();
    let shared = Arc::new(MemoryBackend::new());

    let mut first = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&shared));
    let cold = first.analyze(&spec).expect("cold");
    assert_eq!(cold.stats.extractions, 2);

    // A different engine over the same shared map starts warm.
    let mut second = Engine::new(SstaConfig::paper()).with_backend(Arc::clone(&shared));
    let warm = second.analyze(&spec).expect("warm");
    assert_eq!(warm.stats.extractions, 0);
    assert_eq!(warm.stats.store_hits, 2);
    assert_eq!(warm.timing.po_arrivals, cold.timing.po_arrivals);
    assert_eq!(shared.len().expect("len"), 2);
}
