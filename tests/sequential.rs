//! Acceptance tests for the sequential timing subsystem:
//!
//! * a 3-stage registered design of ISCAS85-class modules (c432, c880)
//!   analyzes hierarchically, and compressed (gray-box) models track
//!   uncompressed (paper-exact) models within 2% per stage;
//! * exporting the registered models to SDF, importing them into the
//!   engine's model store through the `SSTM` payload, and re-analyzing
//!   reproduces the hierarchical result bit-identically.

use hier_ssta::core::{
    analyze_sequential, extract_registered, Design, DesignBuilder, ExtractOptions, ModuleContext,
    SequentialAnalyzeOptions, SstaConfig, TimingModel,
};
use hier_ssta::engine::{MemoryBackend, ModelStore};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::sdf::{export_models, write_sdf, ExportOptions};
use std::sync::Arc;

const STAGES: [&str; 3] = ["c432", "c880", "c432"];

/// Extracts one registered model per pipeline stage.
fn stage_models(options: &ExtractOptions) -> (SstaConfig, Vec<Arc<TimingModel>>) {
    let stages = generators::registered_pipeline(&STAGES, "DFF").expect("generator");
    let config = SstaConfig::paper();
    let mut models = Vec::new();
    for stage in &stages {
        let ctx = ModuleContext::characterize(stage.core().clone(), &config).expect("context");
        models.push(Arc::new(
            extract_registered(&ctx, stage.register(), options).expect("extract"),
        ));
    }
    (config, models)
}

/// Chains the stage models into one registered design: stage `k`
/// outputs feed stage `k+1` register D pins round-robin.
fn chain(config: &SstaConfig, models: &[Arc<TimingModel>]) -> Design {
    let widths: Vec<f64> = models.iter().map(|m| m.geometry().extent_um().0).collect();
    let height = models
        .iter()
        .map(|m| m.geometry().extent_um().1)
        .fold(0.0f64, f64::max);
    let die = DieRect {
        width: widths.iter().sum::<f64>() + 100.0,
        height: height + 100.0,
    };
    let mut b = DesignBuilder::new("seq-acceptance", die, config.clone());
    let mut ids = Vec::new();
    let mut x = 0.0;
    for (k, model) in models.iter().enumerate() {
        let id = b
            .add_instance(format!("s{k}"), model.clone(), None, (x, 0.0))
            .expect("instance");
        x += widths[k];
        ids.push(id);
    }
    for k in 0..models.len() - 1 {
        let n_out = models[k].n_outputs();
        for p in 0..models[k + 1].n_inputs() {
            b.connect(ids[k], p % n_out, ids[k + 1], p, 0.0)
                .expect("connect");
        }
    }
    for p in 0..models[0].n_inputs() {
        b.expose_input(vec![(ids[0], p)]).expect("input");
    }
    for j in 0..models.last().unwrap().n_outputs() {
        b.expose_output(*ids.last().unwrap(), j).expect("output");
    }
    b.finish().expect("design")
}

#[test]
fn compressed_tracks_exact_within_two_percent_per_stage() {
    let (config, exact_models) = stage_models(&ExtractOptions::paper_exact());
    let (_, compressed_models) = stage_models(&ExtractOptions::default());
    let options = SequentialAnalyzeOptions::with_period(3000.0);
    let exact = analyze_sequential(&chain(&config, &exact_models), &options).expect("exact");
    let compressed =
        analyze_sequential(&chain(&config, &compressed_models), &options).expect("compressed");

    assert_eq!(exact.stages.len(), STAGES.len());
    for (a, b) in exact.stages.iter().zip(&compressed.stages) {
        let rel =
            (a.required_period.mean() - b.required_period.mean()).abs() / a.required_period.mean();
        assert!(
            rel < 0.02,
            "stage {}: required-period mean drifted {rel:.4}",
            a.instance
        );
        // Equivalent statement on the slack itself, normalized by the
        // stage's timing scale.
        let slack_drift =
            (a.setup_slack.mean() - b.setup_slack.mean()).abs() / a.required_period.mean();
        assert!(
            slack_drift < 0.02,
            "stage {}: slack mean drifted {slack_drift:.4}",
            a.instance
        );
    }
    let period_rel =
        (exact.min_period.mean() - compressed.min_period.mean()).abs() / exact.min_period.mean();
    assert!(period_rel < 0.02, "min-period mean drifted {period_rel:.4}");
}

#[test]
fn sdf_store_round_trip_reproduces_the_analysis_bit_identically() {
    let (config, models) = stage_models(&ExtractOptions::default());
    let options = SequentialAnalyzeOptions::with_period(3000.0);
    let original = analyze_sequential(&chain(&config, &models), &options).expect("analyze");

    // Export → SDF text → import into the engine's model store.
    let sdf =
        export_models(models.iter().map(Arc::as_ref), &ExportOptions::default()).expect("export");
    let text = write_sdf(&sdf);
    let store = ModelStore::with_backend(MemoryBackend::new());
    let receipts = store.import_sdf(&text, &config, 3.0).expect("import");
    assert_eq!(receipts.len(), models.len());
    assert!(receipts.iter().all(|r| r.bit_exact));

    // Re-assemble the design from the store's copies and re-analyze.
    let imported: Vec<Arc<TimingModel>> = receipts
        .iter()
        .map(|r| Arc::new(store.load(&r.key).expect("load").expect("present")))
        .collect();
    for (orig, imp) in models.iter().zip(&imported) {
        assert_eq!(orig.name(), imp.name());
    }
    let replay = analyze_sequential(&chain(&config, &imported), &options).expect("replay");

    assert_eq!(replay.min_period, original.min_period);
    assert_eq!(replay.worst_setup_slack, original.worst_setup_slack);
    assert_eq!(replay.worst_hold_slack, original.worst_hold_slack);
    for (a, b) in replay.stages.iter().zip(&original.stages) {
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.capture_arrival, b.capture_arrival);
        assert_eq!(a.required_period, b.required_period);
        assert_eq!(a.setup_slack, b.setup_slack);
        assert_eq!(a.hold_slack, b.hold_slack);
    }

    // Importing the same file again lands on the same keys — the
    // import is idempotent, not duplicating artifacts.
    let again = store.import_sdf(&text, &config, 3.0).expect("re-import");
    assert_eq!(again, receipts);
}
