//! The IP-handoff contract: a serialized timing model must behave
//! identically after a round trip — same ports, same delay matrix, same
//! design-level analysis results.

use hier_ssta::core::{
    analyze, CorrelationMode, DesignBuilder, ExtractOptions, ModuleContext, SstaConfig, TimingModel,
};
use hier_ssta::netlist::{generators, DieRect};
use std::sync::Arc;

fn extract_model() -> (ModuleContext, TimingModel) {
    let ctx = ModuleContext::characterize(
        generators::ripple_carry_adder(8).expect("adder"),
        &SstaConfig::paper(),
    )
    .expect("characterize");
    let model = ctx
        .extract_model(&ExtractOptions::default())
        .expect("extract");
    (ctx, model)
}

#[test]
fn json_round_trip_preserves_delay_matrix() {
    let (_, model) = extract_model();
    let json = serde_json::to_string(&model).expect("serialize");
    let back: TimingModel = serde_json::from_str(&json).expect("deserialize");

    let a = model.delay_matrix().expect("matrix");
    let b = back.delay_matrix().expect("matrix");
    let (worst_mean, mismatched) = a.compare_with(&b, |d| d.mean());
    assert_eq!(mismatched, 0);
    assert_eq!(worst_mean, 0.0, "bit-exact mean preservation");
    let (worst_sigma, _) = a.compare_with(&b, |d| d.std_dev());
    assert_eq!(worst_sigma, 0.0, "bit-exact sigma preservation");
}

#[test]
fn reloaded_model_analyzes_identically_in_a_design() {
    let (_, model) = extract_model();
    let json = serde_json::to_string(&model).expect("serialize");
    let reloaded: TimingModel = serde_json::from_str(&json).expect("deserialize");

    let build = |m: Arc<TimingModel>| {
        let (w, h) = m.geometry().extent_um();
        let mut b = DesignBuilder::new(
            "d",
            DieRect {
                width: 2.0 * w + 20.0,
                height: h + 20.0,
            },
            SstaConfig::paper(),
        );
        let u0 = b
            .add_instance("u0", m.clone(), None, (0.0, 0.0))
            .expect("u0");
        let u1 = b.add_instance("u1", m.clone(), None, (w, 0.0)).expect("u1");
        for k in 0..m.n_outputs().min(m.n_inputs()) {
            b.connect(u0, k, u1, k, 0.0).expect("wire");
        }
        for k in 0..m.n_inputs() {
            b.expose_input(vec![(u0, k)]).expect("pi");
        }
        for k in m.n_outputs().min(m.n_inputs())..m.n_inputs() {
            b.expose_input(vec![(u1, k)]).expect("pi");
        }
        for k in 0..m.n_outputs() {
            b.expose_output(u1, k).expect("po");
        }
        b.finish().expect("design")
    };

    let d1 = build(Arc::new(model));
    let d2 = build(Arc::new(reloaded));
    let t1 = analyze(&d1, CorrelationMode::Proposed).expect("analysis");
    let t2 = analyze(&d2, CorrelationMode::Proposed).expect("analysis");
    assert_eq!(t1.delay.mean(), t2.delay.mean());
    assert_eq!(t1.delay.std_dev(), t2.delay.std_dev());
}

#[test]
fn incompatible_config_is_caught_after_reload() {
    let (_, model) = extract_model();
    let json = serde_json::to_string(&model).expect("serialize");
    let reloaded: TimingModel = serde_json::from_str(&json).expect("deserialize");
    let mut other = SstaConfig::paper();
    other.grid_side_cells = 4;
    assert!(reloaded.check_compatible(&other).is_err());
}
