//! # hier-ssta — hierarchical statistical static timing analysis
//!
//! A Rust reproduction of *"On Hierarchical Statistical Static Timing
//! Analysis"* (Bing Li, Ning Chen, Manuel Schmidt, Walter Schneider,
//! Ulf Schlichtmann — DATE 2009).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`math`] — linear algebra, Gaussian math, Clark's max, statistics;
//! * [`netlist`] — gate-level netlists, the 90 nm-style cell library,
//!   ISCAS85-calibrated circuit generators, placement;
//! * [`timing`] — generic timing graphs, propagation, all-pairs
//!   input/output delays, a scalar STA baseline;
//! * [`core`] — the paper's contribution: canonical linear delay forms,
//!   grid-based spatial correlation, edge criticality, gray-box timing
//!   model extraction, and correlation-aware hierarchical analysis via
//!   independent-variable replacement;
//! * [`mc`] — Monte Carlo ground truth;
//! * [`engine`] — the analysis engine: a persistent content-addressed
//!   model library over pluggable storage backends (sharded filesystem
//!   or in-memory) with a compact binary artifact codec, a staged
//!   analysis pipeline (plan → resolve → assemble → report) with
//!   fingerprint-deduplicating parallel extraction, a scenario-sweep
//!   batch API with single-flight dedup of concurrent extractions, and
//!   incremental re-analysis with per-module invalidation;
//! * [`sdf`] — SDF (IEEE 1497) interchange: a position-tracking parser
//!   and deterministic writer for the subset the flow needs, plus a
//!   model exchange layer that exports statistical models as min/typ/max
//!   corners with an embedded bit-exact payload and imports foreign SDF
//!   as interface-only approximate models;
//! * [`serve`] — the in-process serving layer: a bounded two-lane
//!   request queue with admission control and load shedding, a worker
//!   pool of engines over one shared warm model store, cooperative
//!   per-request cancellation, and per-request/server-level serving
//!   statistics.
//!
//! # Quickstart
//!
//! ```
//! use hier_ssta::core::{ExtractOptions, ModuleContext, SstaConfig};
//! use hier_ssta::netlist::generators;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Generate a small combinational module and characterize it.
//! let netlist = generators::ripple_carry_adder(8)?;
//! let ctx = ModuleContext::characterize(netlist, &SstaConfig::default())?;
//!
//! // Extract a compressed gray-box statistical timing model.
//! let model = ctx.extract_model(&ExtractOptions::default())?;
//! assert!(model.edge_count() <= ctx.graph_edge_count());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios: IP-vendor model
//! handoff, the paper's four-multiplier hierarchical design, a
//! four-corner scenario sweep, and yield analysis.

pub use ssta_core as core;
pub use ssta_engine as engine;
pub use ssta_math as math;
pub use ssta_mc as mc;
pub use ssta_netlist as netlist;
pub use ssta_sdf as sdf;
pub use ssta_serve as serve;
pub use ssta_timing as timing;
