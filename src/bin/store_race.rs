//! Worker binary for the cross-process `FsBackend` conformance test
//! (`tests/store_race.rs`).
//!
//! Usage: `store_race <root> <id> <iters>`. The worker hammers a small
//! set of keys shared with its siblings — put, get, remove — using
//! self-consistent payloads (every byte equals the writer's tag, and
//! the length encodes the tag too), so any torn or interleaved write
//! is detectable by any reader. It finishes by publishing one durable
//! per-worker key the driver asserts afterwards, prints `ok`, and
//! exits 0. Any contract violation panics, failing the child's exit
//! status.

use hier_ssta::engine::{FsBackend, StorageBackend};

/// The shared keys all workers race on.
pub fn contended_keys() -> Vec<String> {
    (0..4).map(|k| format!("{k:x}").repeat(64)).collect()
}

/// The per-worker durable key the driver checks for afterwards.
pub fn durable_key(id: u8) -> String {
    format!("{:x}", 0xa + id as u32).repeat(64)
}

/// A self-consistent payload: `100 + tag` bytes, all equal to `tag`.
pub fn payload(tag: u8) -> Vec<u8> {
    vec![tag; 100 + tag as usize]
}

/// Checks the all-or-nothing property: any stored artifact must be some
/// writer's complete payload, never a mix.
pub fn assert_consistent(key: &str, bytes: &[u8]) {
    let tag = *bytes.first().unwrap_or_else(|| {
        panic!("key {key}: empty artifact");
    });
    assert_eq!(
        bytes.len(),
        100 + tag as usize,
        "key {key}: length does not match tag {tag}"
    );
    assert!(
        bytes.iter().all(|&b| b == tag),
        "key {key}: torn artifact (mixed writer tags)"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, root, id, iters] = &args[..] else {
        eprintln!("usage: store_race <root> <id> <iters>");
        std::process::exit(2);
    };
    let id: u8 = id.parse().expect("numeric worker id");
    let iters: usize = iters.parse().expect("numeric iteration count");
    let backend = FsBackend::open(root).expect("open backend");
    let keys = contended_keys();

    for i in 0..iters {
        let key = &keys[i % keys.len()];
        backend.put(key, &payload(id)).expect("put");
        if let Some(bytes) = backend.get(key).expect("get") {
            assert_consistent(key, &bytes);
        }
        // A sprinkle of removals keeps the present/absent transitions
        // racing too; absence is always a legal observation.
        if i % 7 == id as usize % 7 {
            backend.remove(key).expect("remove");
        }
        for key in backend.list_keys().expect("list") {
            if let Some(bytes) = backend.get(&key).expect("get listed") {
                assert_consistent(&key, &bytes);
            }
        }
    }

    // The durable key must survive: nobody else writes or removes it.
    backend
        .put(&durable_key(id), &payload(id))
        .expect("publish");
    println!("ok");
}
