//! Quickstart: characterize a module, extract a gray-box statistical
//! timing model, and read delay/yield numbers from it.
//!
//! Run with `cargo run --release --example quickstart`.

use hier_ssta::core::{yield_analysis, ExtractOptions, ModuleContext, SstaConfig};
use hier_ssta::netlist::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A combinational module: a 16-bit ripple-carry adder.
    let netlist = generators::ripple_carry_adder(16)?;
    println!(
        "module `{}`: {} gates, {} inputs, {} outputs, depth {}",
        netlist.name(),
        netlist.n_gates(),
        netlist.n_inputs(),
        netlist.n_outputs(),
        netlist.logic_depth()
    );

    // 2. Characterize under the paper's 90nm variation model: placement,
    //    spatial-correlation grids, PCA, canonical delay forms.
    let ctx = ModuleContext::characterize(netlist, &SstaConfig::paper())?;
    println!(
        "characterized: {} timing edges, {} PCA components, grid {}x{}",
        ctx.graph_edge_count(),
        ctx.layout().n_locals(),
        ctx.geometry().nx(),
        ctx.geometry().ny()
    );

    // 3. The module delay as a distribution (max over all outputs).
    let arrivals = hier_ssta::timing::sta::output_arrivals(ctx.graph(), || ctx.zero())?;
    let delay = arrivals
        .into_iter()
        .flatten()
        .reduce(|a, b| a.maximum(&b))
        .expect("outputs exist");
    println!(
        "module delay: mean {:.1} ps, sigma {:.1} ps ({:.1}% relative)",
        delay.mean(),
        delay.std_dev(),
        100.0 * delay.std_dev() / delay.mean()
    );
    for yield_target in [0.5, 0.9, 0.9973] {
        println!(
            "  period for {:6.2}% yield: {:.1} ps",
            100.0 * yield_target,
            yield_analysis::period_for_yield(&delay, yield_target)
        );
    }

    // 4. Extract the compressed timing model an IP vendor would ship.
    let model = ctx.extract_model(&ExtractOptions::default())?;
    let stats = model.stats();
    println!(
        "extracted model: {} -> {} edges ({:.0}%), {} -> {} vertices ({:.0}%) in {:.3}s",
        stats.original_edges,
        stats.model_edges,
        100.0 * stats.edge_ratio(),
        stats.original_vertices,
        stats.model_vertices,
        100.0 * stats.vertex_ratio(),
        stats.extraction_seconds
    );

    // 5. The model preserves the statistical input-to-output delays.
    let orig = ctx.delay_matrix()?;
    let compressed = model.delay_matrix()?;
    let (worst, mismatched) = orig.compare_with(&compressed, |d| d.mean());
    println!(
        "model fidelity: worst per-pair mean drift {:.3} ps, {} connectivity mismatches",
        worst, mismatched
    );
    Ok(())
}
