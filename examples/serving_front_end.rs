//! SSTA as a service: a front end submitting mixed traffic to an
//! in-process analysis server over one shared warm model store.
//!
//! The demo stages a deterministic burst while the server is paused —
//! a batch-priority corner sweep, a stream of interactive baseline
//! queries with deadlines, one request cancelled while queued, and one
//! request shed at admission because its deadline cannot survive the
//! backlog — then resumes the workers and prints each request's
//! terminal response as a serving-stats table. Every submission gets
//! exactly one response; the final snapshot shows zero lost requests
//! and the single-flight economy (identical modules extracted once,
//! everything else served from the shared store or coalesced).
//!
//! Run with `cargo run --release --example serving_front_end`.

use hier_ssta::core::{CorrelationMode, SstaConfig};
use hier_ssta::engine::{DesignSpec, MemoryBackend, Scenario, ScenarioSet};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::serve::{AnalyzeRequest, Priority, ServeOptions, Server, Ticket};
use std::sync::Arc;
use std::time::Duration;

/// A two-instance adder SoC — small enough that the demo runs in
/// moments, real enough that extraction dominates a cold request.
fn soc_spec() -> Result<DesignSpec, Box<dyn std::error::Error>> {
    const WIDTH: usize = 6;
    let netlist = generators::ripple_carry_adder(WIDTH)?;
    let n_in = netlist.n_inputs();
    let n_out = netlist.n_outputs();
    let mut b = DesignSpec::builder(
        "serving-soc",
        DieRect {
            width: 80.0,
            height: 40.0,
        },
    );
    let m = b.add_module(netlist);
    let u0 = b.add_instance("u0", m, (0.0, 0.0))?;
    let u1 = b.add_instance("u1", m, (40.0, 0.0))?;
    for k in 0..n_out.min(n_in) {
        b.connect(u0, k, u1, k);
    }
    for k in 0..n_in {
        b.expose_input(vec![(u0, k)]);
    }
    for k in n_out.min(n_in)..n_in {
        b.expose_input(vec![(u1, k)]);
    }
    for k in 0..n_out {
        b.expose_output(u1, k);
    }
    Ok(b.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = Arc::new(soc_spec()?);

    // Paused start: the whole burst is staged before any worker moves,
    // so the shed/cancel outcomes below are deterministic, not races.
    let server = Server::start(
        SstaConfig::paper(),
        Arc::new(MemoryBackend::new()),
        ServeOptions {
            workers: 2,
            service_estimate: Duration::from_millis(150),
            start_paused: true,
            ..ServeOptions::default()
        },
    );
    println!(
        "server up: {} workers, queue depth {}\n",
        server.worker_count(),
        server.queue_depth()
    );

    let mut traffic: Vec<(&str, Ticket)> = Vec::new();

    // A corner sweep rides the batch lane: it must not starve the
    // interactive queries submitted after it.
    let sweep = ScenarioSet::new()
        .with(Scenario::new("nominal"))
        .with(Scenario::new("global-only").with_mode(CorrelationMode::GlobalOnly));
    traffic.push((
        "sweep",
        server.submit(AnalyzeRequest::new(Arc::clone(&spec), sweep).with_priority(Priority::Batch)),
    ));

    // Interactive baseline queries, each with a generous deadline.
    for _ in 0..4 {
        traffic.push((
            "interactive",
            server.submit(
                AnalyzeRequest::new(Arc::clone(&spec), ScenarioSet::baseline())
                    .with_deadline(Duration::from_secs(30)),
            ),
        ));
    }

    // A client gives up while its request is still queued: the request
    // is dequeued, recognised as cancelled, and answered without
    // spending any service time.
    let doomed = server.submit(AnalyzeRequest::new(
        Arc::clone(&spec),
        ScenarioSet::baseline(),
    ));
    doomed.cancel();
    traffic.push(("cancelled-by-client", doomed));

    // Six requests are already queued on two workers; at ~150 ms each
    // the estimated wait dwarfs a 50 ms deadline, so admission control
    // sheds this one immediately instead of letting it time out inside.
    traffic.push((
        "tight-deadline",
        server.submit(
            AnalyzeRequest::new(Arc::clone(&spec), ScenarioSet::baseline())
                .with_deadline(Duration::from_millis(50)),
        ),
    ));

    server.resume();

    println!(
        "{:<20} {:>7} {:>18} {:>10} {:>11} {:>8} {:>9} {:>6}",
        "request", "id", "outcome", "wait [ms]", "serve [ms]", "extract", "coalesce", "hits"
    );
    for (label, ticket) in traffic {
        let response = ticket.wait();
        let s = &response.stats;
        println!(
            "{label:<20} {:>7} {:>18} {:>10.2} {:>11.2} {:>8} {:>9} {:>6}",
            response.id.to_string(),
            response.outcome.label(),
            1e3 * s.queue_wait.as_secs_f64(),
            1e3 * s.service_time.as_secs_f64(),
            s.extractions,
            s.coalesced,
            s.memory_hits + s.store_hits,
        );
    }

    let snapshot = server.shutdown();
    println!("\nfinal snapshot: {snapshot}");
    assert_eq!(snapshot.lost(), 0, "every request got a terminal response");
    assert!(
        snapshot.extractions <= 1,
        "one distinct module fingerprint -> at most one extraction"
    );
    Ok(())
}
