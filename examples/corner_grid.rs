//! Corner-grid mega-sweep: a three-axis cartesian grid analyzed in one
//! `Engine::analyze_sweep` call.
//!
//! The grid crosses an extraction-relevant axis (process sigma scaling)
//! with two analysis-level axes (correlation handling, clock target).
//! The sweep planner groups the corners by extraction fingerprint
//! before any work is scheduled, so the whole grid performs exactly one
//! extraction per sigma point — the mode and clock axes multiply only
//! the corner count, never the characterization cost. Results stream
//! through a bounded channel into per-corner roll-ups; full
//! `DesignTiming` results are retained here (`retain_results`) only to
//! print the table.
//!
//! Run with `cargo run --release --example corner_grid`.

use hier_ssta::core::SstaConfig;
use hier_ssta::engine::{CornerGrid, DesignSpec, Engine, GridAxis, SweepOptions};
use hier_ssta::netlist::{generators, DieRect};

/// Four 4-bit array multipliers in two columns with cross-connected
/// data paths, expressed as a pre-extraction spec.
fn soc_spec() -> Result<DesignSpec, Box<dyn std::error::Error>> {
    const WIDTH: usize = 4;
    let config = SstaConfig::paper();
    let netlist = generators::array_multiplier(WIDTH)?;
    let placement = hier_ssta::netlist::Placement::rows(&netlist, config.cell_pitch_um);
    let geometry = hier_ssta::core::GridGeometry::from_die(placement.die(), config.grid_pitch_um());
    let (mw, mh) = geometry.extent_um();
    let mut b = DesignSpec::builder(
        "corner-grid-soc",
        DieRect {
            width: 2.0 * mw,
            height: 2.0 * mh,
        },
    );
    let m = b.add_module(netlist);
    let m0 = b.add_instance("m0", m, (0.0, 0.0))?;
    let m1 = b.add_instance("m1", m, (0.0, mh))?;
    let m2 = b.add_instance("m2", m, (mw, 0.0))?;
    let m3 = b.add_instance("m3", m, (mw, mh))?;
    for k in 0..WIDTH {
        b.connect(m0, k, m2, k);
        b.connect(m1, k, m2, WIDTH + k);
        b.connect(m0, WIDTH + k, m3, k);
        b.connect(m1, WIDTH + k, m3, WIDTH + k);
    }
    for inst in [m0, m1] {
        for k in 0..2 * WIDTH {
            b.expose_input(vec![(inst, k)]);
        }
    }
    for inst in [m2, m3] {
        for k in 0..2 * WIDTH {
            b.expose_output(inst, k);
        }
    }
    Ok(b.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = soc_spec()?;

    // 3 sigma points × 2 modes × 4 clock targets = 24 corners,
    // 3 extraction-fingerprint groups, 6 analyses (group × mode).
    let grid = CornerGrid::builder()
        .axis(GridAxis::sigma_scales("process", &[0.9, 1.0, 1.2]))
        .axis(GridAxis::modes("mode"))
        .axis(GridAxis::yield_targets(
            "clock",
            &[1500.0, 1650.0, 1800.0, 1950.0],
        ))
        .finish()?;
    println!(
        "grid: {} corners over {} axes",
        grid.len(),
        grid.axes().len()
    );

    let options = SweepOptions {
        retain_results: true,
        ..SweepOptions::default()
    };
    let summary = Engine::new(SstaConfig::paper()).analyze_sweep(&spec, &grid, &options)?;

    println!("{summary}");
    println!();
    println!(
        "{:<46} {:>9} {:>8} {:>11} {:>7}  {:>9} {:>9}",
        "corner", "mean [ps]", "σ [ps]", "p99.73 [ps]", "yield", "prop [ms]", "analysis"
    );
    for record in &summary.records {
        println!(
            "{:<46} {:>9.1} {:>8.1} {:>11.1} {:>6.1}%  {:>9.2} {:>9}",
            record.scenario,
            record.mean_ps,
            record.sigma_ps,
            record.p9973_ps,
            100.0 * record.timing_yield.unwrap_or(f64::NAN),
            1e3 * record.phases.propagate_seconds,
            if record.reused_analysis {
                "shared"
            } else {
                "led"
            },
        );
    }
    println!();
    println!(
        "collapse: {} corners -> {} fingerprint groups -> {} analyses, \
         {} extractions ({} distinct fingerprints), {} coalesced / memory hits",
        summary.scenarios,
        summary.groups,
        summary.analyses,
        summary.extractions,
        summary.distinct_fingerprints,
        summary.coalesced + summary.memory_hits,
    );
    println!(
        "streaming: peak {} full results resident across {} workers \
         (retain_results held the rest for this table)",
        summary.peak_retained_results, summary.workers,
    );
    Ok(())
}
