//! Delay-yield analysis: what SSTA buys over corner-based STA (the §I
//! motivation of the paper).
//!
//! Compares the classical all-parameters-at-3σ corner against the actual
//! statistical quantiles for a mid-size benchmark, then prints a
//! delay-vs-yield table a designer would use to pick a clock period.
//!
//! Run with `cargo run --release --example yield_analysis`.

use hier_ssta::core::{yield_analysis, ModuleContext, SstaConfig};
use hier_ssta::netlist::generators;
use hier_ssta::timing::{sta, TimingGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = generators::iscas85("c1355")?;
    let config = SstaConfig::paper();

    // Corner STA: every parameter simultaneously at +3 sigma.
    let corner_graph: TimingGraph<f64> = TimingGraph::from_netlist(&netlist, |arc| {
        let cell = arc.cell();
        let derate: f64 = 1.0
            + config
                .parameters
                .iter()
                .map(|p| 3.0 * p.sigma_rel * cell.sensitivity().get(p.param))
                .sum::<f64>();
        arc.nominal_ps() * derate
    });
    let corner = sta::graph_delay(&corner_graph)?;

    // SSTA: full statistical propagation.
    let ctx = ModuleContext::characterize(netlist, &config)?;
    let delay = sta::output_arrivals(ctx.graph(), || ctx.zero())?
        .into_iter()
        .flatten()
        .reduce(|a, b| a.maximum(&b))
        .expect("outputs exist");

    println!("circuit c1355 under the paper's 90nm variation model\n");
    println!("corner STA (all parameters +3 sigma): {corner:9.1} ps");
    println!(
        "SSTA distribution:                    {:9.1} ps mean, {:.1} ps sigma\n",
        delay.mean(),
        delay.std_dev()
    );

    println!("{:>10} {:>12} {:>14}", "yield", "period (ps)", "vs corner");
    for target in [0.5, 0.8, 0.9, 0.99, 0.9973, 0.999999] {
        let period = yield_analysis::period_for_yield(&delay, target);
        println!(
            "{:>9.4}% {:>12.1} {:>13.1}%",
            100.0 * target,
            period,
            100.0 * (period - corner) / corner
        );
    }
    let pessimism = yield_analysis::corner_pessimism(&delay, corner, 0.9973);
    println!(
        "\nthe 3-sigma corner over-constrains the 99.73% yield point by {:.1} ps \
         ({:.1}% of the real requirement)",
        pessimism,
        100.0 * pessimism / yield_analysis::period_for_yield(&delay, 0.9973)
    );
    println!(
        "yield at the corner period would actually be {:.4}%",
        100.0 * yield_analysis::timing_yield(&delay, corner)
    );
    Ok(())
}
