//! The IP-vendor scenario that motivates gray-box timing models: the
//! vendor characterizes a block and ships a *serialized timing model*
//! instead of the netlist; the integrator loads it, verifies that it was
//! characterized compatibly, and uses it in design-level analysis — never
//! seeing the implementation.
//!
//! Two handoff vehicles are shown:
//!
//! 1. a raw JSON artifact moved by hand (the original paper-era flow);
//! 2. the engine's **persistent model library** — the vendor publishes
//!    into a content-addressed store, the integrator's engine pulls from
//!    it and analyzes the design with *zero* extractions.
//!
//! Run with `cargo run --release --example ip_model_handoff`.

use hier_ssta::core::{
    analyze, CorrelationMode, DesignBuilder, ExtractOptions, ModuleContext, SstaConfig, TimingModel,
};
use hier_ssta::engine::{DesignSpec, Engine, ModelSource};
use hier_ssta::netlist::{generators, DieRect};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------- vendor side ----------------
    let netlist = generators::iscas85("c880")?;
    let config = SstaConfig::paper();
    let ctx = ModuleContext::characterize(netlist, &config)?;
    let model = ctx.extract_model(&ExtractOptions::default())?;
    println!(
        "vendor: extracted `{}` model with {} edges ({}% of the netlist's timing graph)",
        model.name(),
        model.edge_count(),
        (100.0 * model.stats().edge_ratio()).round()
    );

    // Serialize — the handoff artifact. (JSON here for inspectability;
    // any serde format works.)
    let artifact = serde_json::to_vec(&model)?;
    println!("vendor: serialized model is {} KiB", artifact.len() / 1024);

    // ---------------- integrator side ----------------
    let loaded: TimingModel = serde_json::from_slice(&artifact)?;
    loaded.check_compatible(&config)?;
    println!(
        "integrator: loaded `{}` ({} inputs, {} outputs), compatible with design config",
        loaded.name(),
        loaded.n_inputs(),
        loaded.n_outputs()
    );

    // Two instances of the black-box IP side by side; the first feeds the
    // second through the first 26 input ports.
    let ip = Arc::new(loaded);
    let (w, h) = ip.geometry().extent_um();
    let die = DieRect {
        width: 2.0 * w,
        height: h,
    };
    let mut b = DesignBuilder::new("two-ip", die, config.clone());
    let u0 = b.add_instance("u0", ip.clone(), None, (0.0, 0.0))?;
    let u1 = b.add_instance("u1", ip.clone(), None, (w, 0.0))?;
    for k in 0..ip.n_outputs() {
        b.connect(u0, k, u1, k, 0.0)?;
    }
    for k in 0..ip.n_inputs() {
        b.expose_input(vec![(u0, k)])?;
    }
    for k in ip.n_outputs()..ip.n_inputs() {
        b.expose_input(vec![(u1, k)])?;
    }
    for k in 0..ip.n_outputs() {
        b.expose_output(u1, k)?;
    }
    let design = b.finish()?;

    let proposed = analyze(&design, CorrelationMode::Proposed)?;
    let global = analyze(&design, CorrelationMode::GlobalOnly)?;
    println!(
        "integrator: design delay mean {:.1} ps, sigma {:.1} ps (proposed method)",
        proposed.delay.mean(),
        proposed.delay.std_dev()
    );
    println!(
        "integrator: ignoring inter-IP local correlation would report sigma {:.1} ps ({:+.1}%)",
        global.delay.std_dev(),
        100.0 * (global.delay.std_dev() / proposed.delay.std_dev() - 1.0)
    );

    // ---------------- engine-backed flow ----------------
    // The same handoff, production-shaped: the vendor publishes into a
    // persistent model library; the integrator's engine resolves the IP
    // from that library and never characterizes it.
    let library = std::env::temp_dir().join("hier-ssta-ip-library");
    let _ = std::fs::remove_dir_all(&library);

    let mut vendor = Engine::new(config.clone()).with_store(&library)?;
    let (_, source) = vendor.model_for(&generators::iscas85("c880")?)?;
    assert_eq!(source, ModelSource::Extracted);
    println!(
        "\nvendor: published `c880` to the model library ({} artifact)",
        vendor.store().expect("store attached").len()?
    );

    let mut b = DesignSpec::builder("two-ip-engine", die);
    let m = b.add_module(generators::iscas85("c880")?);
    let u0 = b.add_instance("u0", m, (0.0, 0.0))?;
    let u1 = b.add_instance("u1", m, (w, 0.0))?;
    for k in 0..ip.n_outputs() {
        b.connect(u0, k, u1, k);
    }
    for k in 0..ip.n_inputs() {
        b.expose_input(vec![(u0, k)]);
    }
    for k in ip.n_outputs()..ip.n_inputs() {
        b.expose_input(vec![(u1, k)]);
    }
    for k in 0..ip.n_outputs() {
        b.expose_output(u1, k);
    }
    let spec = b.finish()?;

    let mut integrator = Engine::new(config).with_store(&library)?;
    let run = integrator.analyze(&spec)?;
    println!("integrator: {}", run.stats);
    println!(
        "integrator: engine delay mean {:.1} ps, sigma {:.1} ps — identical to the manual flow: {}",
        run.timing.delay.mean(),
        run.timing.delay.std_dev(),
        run.timing.delay.mean().to_bits() == proposed.delay.mean().to_bits()
    );
    let _ = std::fs::remove_dir_all(&library);
    Ok(())
}
