//! Sequential pipeline walkthrough: generate a registered pipeline,
//! extract statistical register-bounded timing models, analyze the
//! design stage by stage, then round-trip the models through SDF and
//! the engine's model store and show the re-analysis is bit-identical.
//!
//! Run with `cargo run --release --example sequential_pipeline`.

use hier_ssta::core::{
    analyze_sequential, extract_registered, ExtractOptions, ModuleContext,
    SequentialAnalyzeOptions, SstaConfig, TimingModel,
};
use hier_ssta::engine::{MemoryBackend, ModelStore};
use hier_ssta::netlist::{generators, DieRect};
use hier_ssta::sdf::{export_models, write_sdf, ExportOptions};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 3-stage registered pipeline: each core's inputs sit behind a
    //    bank of DFFs sharing one clock.
    let cores = ["c432", "c880", "c432"];
    let stages = generators::registered_pipeline(&cores, "DFF")?;
    let config = SstaConfig::paper();
    for stage in &stages {
        println!(
            "stage `{}`: {} gates behind {} registers",
            stage.name(),
            stage.core().n_gates(),
            stage.n_registers()
        );
    }

    // 2. Extract one register-bounded timing model per stage: clock-to-q
    //    launch, setup and hold constraint arcs, all statistical.
    let models: Vec<Arc<TimingModel>> = stages
        .iter()
        .map(|stage| {
            let ctx = ModuleContext::characterize(stage.core().clone(), &config)?;
            Ok(Arc::new(extract_registered(
                &ctx,
                stage.register(),
                &ExtractOptions::default(),
            )?))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    for model in &models {
        let seq = model.sequential().expect("registered model");
        println!(
            "model `{}`: {} launch, {} setup, {} hold arcs (clock `{}`)",
            model.name(),
            seq.launch.len(),
            seq.setup.len(),
            seq.hold.len(),
            seq.clock_pin
        );
    }

    // 3. Chain the stages into one design and analyze it sequentially:
    //    arrivals propagate *through* the registered boundaries, and each
    //    stage reports its own required period and slack distributions.
    let design = chain("seq-pipeline", &config, &models);
    let options = SequentialAnalyzeOptions::with_period(3000.0);
    let timing = analyze_sequential(&design, &options)?;
    println!("\nclock period {} ps:", options.clock_period_ps);
    for stage in &timing.stages {
        println!(
            "  {}: required {:.1} ps, setup slack mean {:.1} ps (sigma {:.1})",
            stage.instance,
            stage.required_period.mean(),
            stage.setup_slack.mean(),
            stage.setup_slack.std_dev()
        );
    }
    println!(
        "  min period: mean {:.1} ps, sigma {:.1} ps",
        timing.min_period.mean(),
        timing.min_period.std_dev()
    );

    // 4. Export the models as SDF. Min/typ/max corners are mu-3sigma /
    //    mu / mu+3sigma of each statistical arc; the full canonical forms
    //    ride along in an SSTM payload so the import is lossless.
    let text = write_sdf(&export_models(
        models.iter().map(Arc::as_ref),
        &ExportOptions::default(),
    )?);
    println!(
        "\nexported {} cells as SDF ({} bytes)",
        models.len(),
        text.len()
    );

    // 5. Import the SDF into the engine's content-addressed model store
    //    and re-run the analysis from the store's copies: bit-identical.
    let store = ModelStore::with_backend(MemoryBackend::new());
    let receipts = store.import_sdf(&text, &config, 3.0)?;
    let imported: Vec<Arc<TimingModel>> = receipts
        .iter()
        .map(|r| Ok(Arc::new(store.load(&r.key)?.expect("just imported"))))
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    for receipt in &receipts {
        println!(
            "  imported `{}` -> {} ({})",
            receipt.name,
            &receipt.key[..12],
            if receipt.bit_exact {
                "bit-exact"
            } else {
                "approximate"
            }
        );
    }
    let replay = analyze_sequential(&chain("seq-pipeline", &config, &imported), &options)?;
    assert_eq!(replay.min_period, timing.min_period);
    assert_eq!(replay.worst_setup_slack, timing.worst_setup_slack);
    println!("re-analysis from the imported models is bit-identical");
    Ok(())
}

/// Chains stage models left to right: stage `k` outputs feed stage
/// `k+1` register D pins round-robin.
fn chain(name: &str, config: &SstaConfig, models: &[Arc<TimingModel>]) -> hier_ssta::core::Design {
    let widths: Vec<f64> = models.iter().map(|m| m.geometry().extent_um().0).collect();
    let height = models
        .iter()
        .map(|m| m.geometry().extent_um().1)
        .fold(0.0f64, f64::max);
    let die = DieRect {
        width: widths.iter().sum(),
        height,
    };
    let mut b = hier_ssta::core::DesignBuilder::new(name, die, config.clone());
    let mut ids = Vec::new();
    let mut x = 0.0;
    for (k, model) in models.iter().enumerate() {
        ids.push(
            b.add_instance(format!("s{k}"), Arc::clone(model), None, (x, 0.0))
                .expect("stage fits"),
        );
        x += widths[k];
    }
    for k in 0..models.len() - 1 {
        for p in 0..models[k + 1].n_inputs() {
            b.connect(ids[k], p % models[k].n_outputs(), ids[k + 1], p, 0.0)
                .expect("wire");
        }
    }
    for p in 0..models[0].n_inputs() {
        b.expose_input(vec![(ids[0], p)]).expect("pi");
    }
    for j in 0..models.last().unwrap().n_outputs() {
        b.expose_output(*ids.last().unwrap(), j).expect("po");
    }
    b.finish().expect("design")
}
