//! The paper's Fig. 7 experiment at example scale: four array multipliers
//! placed in two columns with cross-connected data paths, analyzed with
//! the proposed variable-replacement method, the global-correlation-only
//! baseline, and validated against flattened Monte Carlo.
//!
//! Run with `cargo run --release --example hierarchical_soc`.

use hier_ssta::core::{
    analyze, CorrelationMode, DesignBuilder, ExtractOptions, ModuleContext, SstaConfig,
};
use hier_ssta::mc::{flat_design_delay, McOptions};
use hier_ssta::netlist::{generators, DieRect};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WIDTH: usize = 8; // 16 reproduces the paper's c6288 exactly

    // One multiplier IP, characterized and compressed once, instantiated
    // four times — the reuse pattern hierarchical SSTA exists for.
    let config = SstaConfig::paper();
    let ctx = Arc::new(ModuleContext::characterize(
        generators::array_multiplier(WIDTH)?,
        &config,
    )?);
    let model = Arc::new(ctx.extract_model(&ExtractOptions::default())?);
    println!(
        "multiplier model: {} -> {} edges ({:.0}% of original)",
        model.stats().original_edges,
        model.edge_count(),
        100.0 * model.stats().edge_ratio()
    );

    let (w, h) = model.geometry().extent_um();
    let mut b = DesignBuilder::new(
        "soc",
        DieRect {
            width: 2.0 * w,
            height: 2.0 * h,
        },
        config,
    );
    let m0 = b.add_instance("m0", model.clone(), Some(ctx.clone()), (0.0, 0.0))?;
    let m1 = b.add_instance("m1", model.clone(), Some(ctx.clone()), (0.0, h))?;
    let m2 = b.add_instance("m2", model.clone(), Some(ctx.clone()), (w, 0.0))?;
    let m3 = b.add_instance("m3", model.clone(), Some(ctx.clone()), (w, h))?;

    // Cross-connect: column-1 product bits feed column-2 operands.
    for k in 0..WIDTH {
        b.connect(m0, k, m2, k, 0.0)?;
        b.connect(m1, k, m2, WIDTH + k, 0.0)?;
        b.connect(m0, WIDTH + k, m3, k, 0.0)?;
        b.connect(m1, WIDTH + k, m3, WIDTH + k, 0.0)?;
    }
    for inst in [m0, m1] {
        for k in 0..2 * WIDTH {
            b.expose_input(vec![(inst, k)])?;
        }
    }
    for inst in [m2, m3] {
        for k in 0..2 * WIDTH {
            b.expose_output(inst, k)?;
        }
    }
    let design = b.finish()?;

    let proposed = analyze(&design, CorrelationMode::Proposed)?;
    let global = analyze(&design, CorrelationMode::GlobalOnly)?;
    let mc = flat_design_delay(
        &design,
        &McOptions {
            samples: 2000,
            ..Default::default()
        },
    )?;

    println!("\n                 mean (ps)   sigma (ps)");
    println!(
        "Monte Carlo      {:9.1}    {:8.1}   (flattened netlist, ground truth)",
        mc.mean(),
        mc.std_dev()
    );
    println!(
        "proposed         {:9.1}    {:8.1}   ({:+.1}% sigma vs MC)",
        proposed.delay.mean(),
        proposed.delay.std_dev(),
        100.0 * (proposed.delay.std_dev() / mc.std_dev() - 1.0)
    );
    println!(
        "global-only      {:9.1}    {:8.1}   ({:+.1}% sigma vs MC)",
        global.delay.mean(),
        global.delay.std_dev(),
        100.0 * (global.delay.std_dev() / mc.std_dev() - 1.0)
    );
    // The analysis doubles as a profiling demo: each DesignTiming carries
    // a per-phase wall-clock breakdown of the design-level assembly.
    println!(
        "\nassembly phases ({:.1} ms total, proposed):",
        1e3 * proposed.elapsed_seconds
    );
    println!("  {}", proposed.phases);
    println!(
        "assembly phases ({:.1} ms total, global-only — no partition/PCA):",
        1e3 * global.elapsed_seconds
    );
    println!("  {}", global.phases);

    println!(
        "\nconclusion: the correlation from local variation has a remarkable effect on the\n\
         circuit delay distribution, and the proposed replacement recovers it (Fig. 7)."
    );
    Ok(())
}
