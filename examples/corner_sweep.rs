//! Scenario sweep: one SoC spec analyzed under four named what-if
//! configurations in a single batch over one shared model library.
//!
//! The sweep shows the batch engine's two economies:
//!
//! * scenarios that differ only in *analysis-level* knobs (correlation
//!   mode, yield target) share the nominal scenario's extracted models
//!   outright — their cache keys are identical by construction;
//! * scenarios that change *extraction-relevant* configuration (sigmas,
//!   spatial correlation) are re-keyed and extracted exactly once each,
//!   with concurrent misses single-flighted so a racing sweep never
//!   characterizes the same module twice.
//!
//! Run with `cargo run --release --example corner_sweep`.

use hier_ssta::core::{CorrelationMode, CorrelationModel, SstaConfig};
use hier_ssta::engine::{DesignSpec, Engine, Scenario, ScenarioSet};
use hier_ssta::netlist::{generators, DieRect};

/// A small SoC: four 5-bit array multipliers in two columns with
/// cross-connected data paths (the paper's Fig. 7 topology at example
/// scale), expressed as a pre-extraction spec.
fn soc_spec() -> Result<DesignSpec, Box<dyn std::error::Error>> {
    const WIDTH: usize = 5;
    let config = SstaConfig::paper();
    let netlist = generators::array_multiplier(WIDTH)?;
    let placement = hier_ssta::netlist::Placement::rows(&netlist, config.cell_pitch_um);
    let geometry = hier_ssta::core::GridGeometry::from_die(placement.die(), config.grid_pitch_um());
    let (mw, mh) = geometry.extent_um();
    let mut b = DesignSpec::builder(
        "corner-sweep-soc",
        DieRect {
            width: 2.0 * mw,
            height: 2.0 * mh,
        },
    );
    let m = b.add_module(netlist);
    let m0 = b.add_instance("m0", m, (0.0, 0.0))?;
    let m1 = b.add_instance("m1", m, (0.0, mh))?;
    let m2 = b.add_instance("m2", m, (mw, 0.0))?;
    let m3 = b.add_instance("m3", m, (mw, mh))?;
    for k in 0..WIDTH {
        b.connect(m0, k, m2, k);
        b.connect(m1, k, m2, WIDTH + k);
        b.connect(m0, WIDTH + k, m3, k);
        b.connect(m1, WIDTH + k, m3, WIDTH + k);
    }
    for inst in [m0, m1] {
        for k in 0..2 * WIDTH {
            b.expose_input(vec![(inst, k)]);
        }
    }
    for inst in [m2, m3] {
        for k in 0..2 * WIDTH {
            b.expose_output(inst, k);
        }
    }
    Ok(b.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = soc_spec()?;

    // The sweep's yield read-out target: a clock period around the
    // nominal p90, where the corners visibly disagree.
    let target_ps = 1750.0;

    // High-sigma corner: every process sigma scaled 1.5x.
    let mut high_sigma = SstaConfig::paper();
    for p in &mut high_sigma.parameters {
        p.sigma_rel = (p.sigma_rel * 1.5).min(0.9);
    }

    // Tight spatial correlation: local variation decays half as fast and
    // reaches twice as far, so neighbouring modules track each other.
    let mut tight_corr = SstaConfig::paper();
    tight_corr.correlation = CorrelationModel {
        decay_per_grid: tight_corr.correlation.decay_per_grid / 2.0,
        cutoff_grids: tight_corr.correlation.cutoff_grids * 2.0,
        ..tight_corr.correlation
    };

    let set = ScenarioSet::new()
        .with(Scenario::new("nominal").with_yield_target(target_ps))
        .with(
            Scenario::new("high-sigma")
                .with_config(high_sigma)
                .with_yield_target(target_ps),
        )
        .with(
            Scenario::new("tight-spatial-corr")
                .with_config(tight_corr)
                .with_yield_target(target_ps),
        )
        // Analysis-level overlay only: shares the nominal scenario's
        // extracted models, no extra extraction.
        .with(
            Scenario::new("global-only")
                .with_mode(CorrelationMode::GlobalOnly)
                .with_yield_target(target_ps),
        );

    let mut engine = Engine::new(SstaConfig::paper());
    let batch = engine.analyze_batch(&spec, &set)?;

    println!("sweep: {}", batch.stats);
    println!();
    let yield_header = format!("yield@{target_ps:.0}ps");
    println!(
        "{:<18} {:>10} {:>9} {:>11} {:>13}  per-scenario stats",
        "scenario", "mean [ps]", "σ [ps]", "p99.73 [ps]", yield_header
    );
    for run in &batch.scenarios {
        println!(
            "{:<18} {:>10.1} {:>9.1} {:>11.1} {:>12.1}%  {}",
            run.scenario,
            run.timing.delay.mean(),
            run.timing.delay.std_dev(),
            run.timing.delay.quantile(0.9973),
            100.0 * run.timing_yield.unwrap_or(f64::NAN),
            run.stats
        );
    }
    println!();
    println!(
        "dedup: {} scenarios resolved {} distinct fingerprints with {} extractions \
         ({} coalesced / served from shared caches)",
        batch.stats.scenarios,
        batch.stats.distinct_fingerprints,
        batch.stats.extractions,
        batch.stats.coalesced + batch.stats.memory_hits
    );
    Ok(())
}
