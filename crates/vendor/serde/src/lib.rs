//! Minimal offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment, so this
//! vendored crate provides the subset the workspace actually uses: the
//! [`Serialize`]/[`Deserialize`] traits (value-tree based rather than
//! visitor based), derive macros re-exported from `serde_derive`, and the
//! [`Value`] data model that `serde_json` renders to and from JSON text.
//!
//! The wire behaviour mirrors real serde where it matters for this
//! workspace: structs become string-keyed maps, newtype structs collapse
//! to their inner value, enums are externally tagged, maps serialize with
//! sorted keys (so output is deterministic and hashable).

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `name` in a map value; errors for missing keys/non-maps.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
            other => Err(DeError::custom(format!(
                "expected map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a sequence of exactly `n` elements.
    pub fn seq_n(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(DeError::custom(format!(
                "expected sequence of {n} elements, found {}",
                items.len()
            ))),
            other => Err(DeError::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::I64(x) => Ok(*x as f64),
            Value::U64(x) => Ok(*x as f64),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }

    fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Value::U64(x) => Ok(*x),
            Value::I64(x) if *x >= 0 => Ok(*x as u64),
            Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as u64),
            other => Err(DeError::custom(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, DeError> {
        match self {
            Value::I64(x) => Ok(*x),
            Value::U64(x) if *x <= i64::MAX as u64 => Ok(*x as i64),
            Value::F64(x) if x.fract() == 0.0 => Ok(*x as i64),
            other => Err(DeError::custom(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_u64()?;
                <$t>::try_from(x).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let x = v.as_i64()?;
                <$t>::try_from(x).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.seq_n(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.seq_n(LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Map(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn integer_coercions() {
        assert_eq!(u64::from_value(&Value::I64(5)).unwrap(), 5);
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(f64::from_value(&Value::I64(2)).unwrap(), 2.0);
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn maps_serialize_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        match m.to_value() {
            Value::Map(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            _ => panic!("expected map"),
        }
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<f64>::None.to_value(), Value::Null);
        assert_eq!(
            Option::<f64>::from_value(&Value::F64(1.0)).unwrap(),
            Some(1.0)
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }
}
