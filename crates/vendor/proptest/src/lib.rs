//! Minimal offline stand-in for `proptest`: deterministic random-input
//! testing without shrinking. Supports the subset this workspace uses —
//! range strategies over `f64`/integers, `collection::vec` (fixed or
//! ranged lengths), tuple strategies, `Just`, `prop_map`,
//! `prop_flat_map`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` family.
//!
//! Failing cases are reported with their case index and the generator is
//! seeded per test from the test name, so failures reproduce exactly.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Test-runner plumbing (the deterministic RNG lives here).
pub mod test_runner {
    /// A small deterministic SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Maps generated values into a dependent strategy (e.g. draw a size
    /// first, then a collection of that size).
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strategy: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.strategy.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A vector length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive; start + 1 for fixed sizes
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` draws; `size` is a fixed length
    /// or a half-open range of lengths.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = $cfg:expr;
      $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!("property `{}` failed at case {}: {}",
                               stringify!($name), __case, __msg);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.5..9.0f64, n in 3u64..17) {
            prop_assert!((1.5..9.0).contains(&x), "x = {}", x);
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0.0..1.0f64, 8)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn ranged_vec_lengths_stay_in_range(v in crate::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len = {}", v.len());
        }

        #[test]
        fn flat_map_draws_dependent_sizes(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(Just(n), n))
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == v.len()));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(y in (0.0..1.0f64).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
