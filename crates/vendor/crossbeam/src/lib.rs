//! Minimal offline stand-in for the `crossbeam` scoped-thread API,
//! implemented over `std::thread::scope` (stable since Rust 1.63). Only
//! the surface this workspace uses is provided: `thread::scope`, a
//! `Scope::spawn` whose closure receives the scope, and joinable handles.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A panic payload, as returned by [`ScopedJoinHandle::join`].
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Wrapper over [`std::thread::Scope`] mirroring crossbeam's API.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Wrapper over [`std::thread::ScopedJoinHandle`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (so it
        /// can spawn nested work), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed data may be shared with
    /// spawned threads; all threads are joined before returning.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (std's scope propagates child panics by
    /// panicking); the `Result` mirrors crossbeam's signature.
    pub fn scope<'env, F, T>(f: F) -> Result<T, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows_and_join() {
        let data: Vec<u64> = (0..100).collect();
        let total = super::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(30) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, data.iter().sum::<u64>());
    }
}
