//! Minimal offline stand-in for `serde_json`: renders the vendored
//! [`serde::Value`] model to JSON text and parses it back.
//!
//! Floats are written with Rust's shortest round-trip formatting, so a
//! serialize → parse → deserialize cycle is bit-exact for finite values
//! (non-finite floats become `null`, as in real serde_json).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Infallible for the value model in practice; kept fallible to mirror
/// the real `serde_json` API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns an error for non-UTF-8 input, malformed JSON or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(e.to_string()))?;
                    let c = s.chars().next().expect("non-empty");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|e| Error::new(e.to_string()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => {}
                b'.' | b'e' | b'E' => is_float = true,
                _ => break,
            }
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.797e308,
            -2.2250738585072014e-308,
            123_456_789.123_456_79,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.5, -0.25)];
        let s = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\tﬁ∂";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("nul").is_err());
        assert!(from_str::<f64>("1.5junk").is_err());
        assert!(from_slice::<f64>(&[0xff, 0xfe]).is_err());
    }
}
