//! Minimal offline stand-in for the `rand 0.8` API surface this
//! workspace uses: [`rngs::StdRng`] (a deterministic xoshiro256++
//! generator), [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen::<f64>()`, `gen_range`, `gen_bool`, and
//! [`seq::SliceRandom`]'s `shuffle`/`choose`.
//!
//! The stream differs from real `StdRng` (which is ChaCha12); everything
//! in this workspace only relies on determinism for a fixed seed, not on
//! a specific stream.

#![forbid(unsafe_code)]

/// The core of every generator: a source of raw 64-bit words.
pub trait RngCore {
    /// Produces the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

fn unit_f64(word: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T`; only `f64` (uniform `[0, 1)`) is
    /// supported by this shim.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution (shim: `f64` only).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// A deterministic xoshiro256++ generator (stands in for the real
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// Picks a uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn unit_floats_in_range_and_unbiased() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5..8);
            assert!((5..8).contains(&x));
            let y = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&y));
        }
        let hits: std::collections::HashSet<u32> = (0..200).map(|_| r.gen_range(0u32..3)).collect();
        assert_eq!(hits.len(), 3, "all values of a small range appear");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert!(v.choose(&mut r).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count() as f64 / n as f64;
        assert!((hits - 0.3).abs() < 0.01, "p {hits}");
    }
}
