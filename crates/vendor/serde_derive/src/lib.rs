//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes this workspace actually contains, parsing the raw token
//! stream directly (no `syn`/`quote` available offline):
//!
//! * structs with named fields (optionally generic over type parameters);
//! * tuple structs (newtypes collapse to the inner value, like serde);
//! * enums with unit and tuple variants (externally tagged, like serde);
//! * the field attributes `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]`.
//!
//! Anything outside that set panics at compile time with a clear message,
//! which is the right failure mode for a vendored shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default: Option<String>,
}

struct Variant {
    name: String,
    arity: usize,
}

enum Data {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    data: Data,
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility until the `struct`/`enum` keyword.
    let mut is_struct = true;
    loop {
        match tokens.get(i) {
            Some(tt) if is_punct(tt, '#') => i += 2,
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                i += 1;
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                } else if s == "struct" {
                    break;
                } else if s == "enum" {
                    is_struct = false;
                    break;
                }
            }
            Some(_) => i += 1,
            None => panic!("derive input has no struct/enum keyword"),
        }
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, got {other:?}"),
    };
    i += 1;

    // Generic type parameters: collect the first identifier of each
    // comma-separated slot inside the angle brackets (lifetimes and const
    // params are not used by any derived type in this workspace).
    let mut generics = Vec::new();
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        i += 1;
        let mut depth = 1usize;
        let mut expecting = true;
        while i < tokens.len() && depth > 0 {
            match &tokens[i] {
                tt if is_punct(tt, '<') => depth += 1,
                tt if is_punct(tt, '>') => depth -= 1,
                tt if is_punct(tt, ',') && depth == 1 => expecting = true,
                TokenTree::Ident(id) if expecting => {
                    generics.push(id.to_string());
                    expecting = false;
                }
                _ => {}
            }
            i += 1;
        }
    }

    // Skip any `where` clause tokens; the body is the first brace group
    // (named fields / enum variants) or paren group (tuple struct).
    while i < tokens.len() {
        if let TokenTree::Group(g) = &tokens[i] {
            match g.delimiter() {
                Delimiter::Brace => {
                    let data = if is_struct {
                        Data::Named(parse_named_fields(g.stream()))
                    } else {
                        Data::Enum(parse_variants(g.stream()))
                    };
                    return Item {
                        name,
                        generics,
                        data,
                    };
                }
                Delimiter::Parenthesis if is_struct => {
                    return Item {
                        name,
                        generics,
                        data: Data::Tuple(count_tuple_fields(g.stream())),
                    };
                }
                _ => {}
            }
        }
        i += 1;
    }
    panic!("could not find the body of `{name}`");
}

/// Extracts `skip`/`default = "path"` from a `#[serde(...)]` attribute
/// group (the bracket group following `#`); other attributes are ignored.
fn scan_attr(group: &proc_macro::Group, skip: &mut bool, default: &mut Option<String>) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        if let TokenTree::Ident(id) = &args[j] {
            match id.to_string().as_str() {
                "skip" => *skip = true,
                "default" => {
                    if args.get(j + 1).is_some_and(|t| is_punct(t, '=')) {
                        if let Some(TokenTree::Literal(lit)) = args.get(j + 2) {
                            let raw = lit.to_string();
                            *default = Some(raw.trim_matches('"').to_string());
                            j += 2;
                        }
                    }
                }
                other => panic!("unsupported serde attribute `{other}`"),
            }
        }
        j += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = None;
        while tokens.get(i).is_some_and(|t| is_punct(t, '#')) {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                scan_attr(g, &mut skip, &mut default);
            }
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma / end of fields
        };
        let name = id.to_string();
        i += 1;
        assert!(
            tokens.get(i).is_some_and(|t| is_punct(t, ':')),
            "expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type, tracking angle-bracket depth so commas inside
        // generic arguments do not end the field.
        let mut depth = 0i32;
        while i < tokens.len() {
            let tt = &tokens[i];
            if is_punct(tt, '<') {
                depth += 1;
            } else if is_punct(tt, '>') {
                depth -= 1;
            } else if is_punct(tt, ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while tokens.get(i).is_some_and(|t| is_punct(t, '#')) {
            i += 2; // variant doc comments etc.
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let mut arity = 0;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_tuple_fields(g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("struct-style enum variant `{name}` is not supported by the serde shim");
            }
            _ => {}
        }
        if tokens.get(i).is_some_and(|t| is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, arity });
    }
    variants
}

/// Counts the comma-separated type slots of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut slots = 0usize;
    let mut slot_has_content = false;
    for tt in stream {
        if is_punct(&tt, '<') {
            depth += 1;
        } else if is_punct(&tt, '>') {
            depth -= 1;
        } else if is_punct(&tt, ',') && depth == 0 {
            if slot_has_content {
                slots += 1;
            }
            slot_has_content = false;
            continue;
        }
        // `pub` and type tokens both count as content.
        slot_has_content = true;
    }
    if slot_has_content {
        slots += 1;
    }
    slots
}

/// Builds `impl<T: Bound, ...>` / `Name<T, ...>` strings for the impl.
fn impl_generics(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let decl = item
        .generics
        .iter()
        .map(|g| format!("{g}: {bound}"))
        .collect::<Vec<_>>()
        .join(", ");
    let used = item.generics.join(", ");
    (format!("<{decl}>"), format!("<{used}>"))
}

fn gen_serialize(item: &Item) -> String {
    let (decl, used) = impl_generics(item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let mut b = String::from("let mut m = ::std::vec::Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                b.push_str(&format!(
                    "m.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            b.push_str("::serde::Value::Map(m)");
            b
        }
        Data::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Seq(vec![{items}])")
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => arms.push_str(&format!(
                        "Self::{vn} => ::serde::Value::Str(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "Self::{vn}(f0) => ::serde::Value::Map(vec![(\
                         ::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    n => {
                        let binds = (0..n)
                            .map(|k| format!("f{k}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = (0..n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "Self::{vn}({binds}) => ::serde::Value::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Seq(vec![{items}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::Serialize for {name}{used} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (decl, used) = impl_generics(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    match &f.default {
                        Some(path) => inits.push_str(&format!("{}: {path}(),\n", f.name)),
                        None => inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        )),
                    }
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(v.field(\"{0}\")?)?,\n",
                        f.name
                    ));
                }
            }
            format!("::std::result::Result::Ok(Self {{\n{inits}}})")
        }
        Data::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Data::Tuple(n) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items = v.seq_n({n})?;\n\
                 ::std::result::Result::Ok(Self({items}))"
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match v.arity {
                    0 => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),\n"
                    )),
                    1 => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         Self::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    n => {
                        let items = (0..n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let items = inner.seq_n({n})?; \
                             ::std::result::Result::Ok(Self::{vn}({items})) }}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected enum representation for {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::Deserialize for {name}{used} {{\n\
         fn from_value(v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
