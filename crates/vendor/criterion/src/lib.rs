//! Minimal offline stand-in for `criterion`: same macro/API surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::bench_function`, `Bencher::iter`, `black_box`), but
//! measurement is a simple wall-clock sampler printing median/mean
//! per-iteration times instead of criterion's full statistical engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the workload.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Hands the workload closure to the measurement loop.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, autotuning the per-sample iteration count so one
    /// sample costs roughly a millisecond or one call, whichever is
    /// larger.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the cost of one call.
        let started = Instant::now();
        black_box(f());
        let once = started.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000);
        self.iters_per_sample = iters as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mut sorted = per_iter.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{group}/{id}: median {} mean {} ({} samples x {} iters)",
            fmt_time(median),
            fmt_time(mean),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_machinery_runs() {
        let mut c = super::Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }
}
