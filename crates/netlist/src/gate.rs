use serde::{Deserialize, Serialize};
use std::fmt;

/// The Boolean function computed by a gate.
///
/// Arity is a property of the [`CellType`](crate::CellType), not the kind:
/// `Nand` covers NAND2/NAND3/NAND4 and so on. Functions are defined for any
/// arity ≥ 1 (`Not` and `Buf` require exactly one input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Identity.
    Buf,
    /// Inversion.
    Not,
    /// Logical AND of all inputs.
    And,
    /// Logical OR of all inputs.
    Or,
    /// Negated AND.
    Nand,
    /// Negated OR.
    Nor,
    /// Odd parity (XOR reduction).
    Xor,
    /// Even parity (negated XOR reduction).
    Xnor,
}

impl GateKind {
    /// Evaluates the gate function over its input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or if a `Buf`/`Not` receives more than
    /// one input (an arity violation that [`Netlist`](crate::Netlist)
    /// construction prevents).
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(!inputs.is_empty(), "gate evaluated with no inputs");
        match self {
            GateKind::Buf => {
                assert_eq!(inputs.len(), 1, "Buf takes exactly one input");
                inputs[0]
            }
            GateKind::Not => {
                assert_eq!(inputs.len(), 1, "Not takes exactly one input");
                !inputs[0]
            }
            GateKind::And => inputs.iter().all(|&x| x),
            GateKind::Or => inputs.iter().any(|&x| x),
            GateKind::Nand => !inputs.iter().all(|&x| x),
            GateKind::Nor => !inputs.iter().any(|&x| x),
            GateKind::Xor => inputs.iter().fold(false, |acc, &x| acc ^ x),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &x| acc ^ x),
        }
    }

    /// All gate kinds, in a stable order.
    pub const ALL: [GateKind; 8] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_inputs() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expected) in cases {
            for (i, &want) in expected.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval(&[a, b]), want, "{kind}({a},{b})");
            }
        }
    }

    #[test]
    fn unary_gates() {
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Buf.eval(&[false]));
        assert!(!GateKind::Not.eval(&[true]));
        assert!(GateKind::Not.eval(&[false]));
    }

    #[test]
    fn three_input_parity() {
        assert!(GateKind::Xor.eval(&[true, true, true]));
        assert!(!GateKind::Xor.eval(&[true, true, false]));
        assert!(!GateKind::Xnor.eval(&[true, false, false]));
    }

    #[test]
    #[should_panic(expected = "no inputs")]
    fn empty_inputs_panic() {
        GateKind::And.eval(&[]);
    }

    #[test]
    #[should_panic(expected = "exactly one input")]
    fn buf_arity_violation_panics() {
        GateKind::Buf.eval(&[true, false]);
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
        assert_eq!(GateKind::Xnor.to_string(), "XNOR");
    }
}
