//! ISCAS85-calibrated benchmark circuits.
//!
//! Each spec reproduces the published timing-graph size of one ISCAS85
//! circuit exactly as reported in Table I of the DATE'09 paper
//! (`Eo = Σ fan-ins`, `Vo = gates + primary inputs`), with I/O counts from
//! the original benchmark descriptions and logic depths from Hansen et al.
//! (IEEE Design & Test 1999). c6288 is special-cased to a *real* 16×16
//! array multiplier because the Fig. 7 experiment depends on its array
//! structure; its size is within a few percent of the original (see
//! `DESIGN.md`).

use super::layered::{generate_layered, LayeredSpec};
use super::multiplier::array_multiplier;
use crate::{Netlist, NetlistError};

/// Shape parameters of one calibrated benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iscas85Spec {
    /// Benchmark name (`"c432"` … `"c7552"`).
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Gate count.
    pub gates: usize,
    /// Total fan-in pin connections — the paper's `Eo` column.
    pub pin_connections: usize,
    /// Logic depth in gate levels (Hansen et al.).
    pub depth: usize,
    /// `true` when the circuit is built structurally (c6288) rather than
    /// as a calibrated random DAG.
    pub structural: bool,
}

/// All ten benchmarks of the paper's Table I, in paper order.
pub const ISCAS85_SPECS: [Iscas85Spec; 10] = [
    Iscas85Spec {
        name: "c432",
        inputs: 36,
        outputs: 7,
        gates: 160,
        pin_connections: 336,
        depth: 17,
        structural: false,
    },
    Iscas85Spec {
        name: "c499",
        inputs: 41,
        outputs: 32,
        gates: 202,
        pin_connections: 408,
        depth: 11,
        structural: false,
    },
    Iscas85Spec {
        name: "c880",
        inputs: 60,
        outputs: 26,
        gates: 383,
        pin_connections: 729,
        depth: 24,
        structural: false,
    },
    Iscas85Spec {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        gates: 546,
        pin_connections: 1064,
        depth: 24,
        structural: false,
    },
    Iscas85Spec {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        gates: 880,
        pin_connections: 1498,
        depth: 40,
        structural: false,
    },
    Iscas85Spec {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        gates: 1193,
        pin_connections: 2076,
        depth: 32,
        structural: false,
    },
    Iscas85Spec {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        gates: 1669,
        pin_connections: 2939,
        depth: 47,
        structural: false,
    },
    Iscas85Spec {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        gates: 2307,
        pin_connections: 4386,
        depth: 49,
        structural: false,
    },
    Iscas85Spec {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        gates: 2406,
        pin_connections: 4800,
        depth: 124,
        structural: true,
    },
    Iscas85Spec {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        gates: 3512,
        pin_connections: 6144,
        depth: 43,
        structural: false,
    },
];

/// Looks up the spec for a benchmark name.
pub fn spec(name: &str) -> Option<&'static Iscas85Spec> {
    ISCAS85_SPECS.iter().find(|s| s.name == name)
}

/// Generates the calibrated stand-in for one ISCAS85 benchmark.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownCell`]-style config errors for unknown
/// names ([`NetlistError::InvalidGeneratorConfig`]).
///
/// # Example
///
/// ```
/// let c432 = ssta_netlist::generators::iscas85("c432")?;
/// let stats = c432.stats();
/// assert_eq!(stats.gates + stats.inputs, 196); // the paper's Vo
/// assert_eq!(stats.pin_connections, 336);      // the paper's Eo
/// # Ok::<(), ssta_netlist::NetlistError>(())
/// ```
pub fn iscas85(name: &str) -> Result<Netlist, NetlistError> {
    let spec = spec(name).ok_or_else(|| NetlistError::InvalidGeneratorConfig {
        reason: format!("unknown ISCAS85 benchmark `{name}`"),
    })?;
    if spec.structural {
        // c6288: a real 16×16 array multiplier (renamed for consistency).
        let netlist = array_multiplier(16)?;
        return Ok(netlist.renamed(spec.name));
    }
    generate_layered(&LayeredSpec {
        name: spec.name.to_owned(),
        n_inputs: spec.inputs,
        n_outputs: spec.outputs,
        n_gates: spec.gates,
        pin_connections: spec.pin_connections,
        depth: spec.depth,
        // Stable per-benchmark seed: the suffix digits of the name.
        seed: spec.name[1..].parse::<u64>().expect("cNNN name") * 7919,
    })
}

/// Generates all ten benchmarks in paper order.
///
/// # Errors
///
/// Propagates any generator error (none occur for the built-in specs).
pub fn iscas85_all() -> Result<Vec<Netlist>, NetlistError> {
    ISCAS85_SPECS.iter().map(|s| iscas85(s.name)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_random_benchmark_matches_table_one_exactly() {
        for spec in ISCAS85_SPECS.iter().filter(|s| !s.structural) {
            let n = iscas85(spec.name).unwrap();
            let stats = n.stats();
            assert_eq!(stats.inputs, spec.inputs, "{} inputs", spec.name);
            assert_eq!(stats.outputs, spec.outputs, "{} outputs", spec.name);
            assert_eq!(stats.gates, spec.gates, "{} gates", spec.name);
            assert_eq!(
                stats.pin_connections, spec.pin_connections,
                "{} Eo",
                spec.name
            );
            n.validate().unwrap();
        }
    }

    #[test]
    fn c6288_is_structural_multiplier() {
        let n = iscas85("c6288").unwrap();
        assert_eq!(n.name(), "c6288");
        assert_eq!(n.n_inputs(), 32);
        assert_eq!(n.n_outputs(), 32);
        assert!(n.logic_depth() > 100);
    }

    #[test]
    fn depths_are_near_published_values() {
        for spec in ISCAS85_SPECS.iter().filter(|s| !s.structural) {
            let n = iscas85(spec.name).unwrap();
            let d = n.logic_depth() as f64;
            let want = spec.depth as f64;
            assert!(
                (d - want).abs() <= want * 0.15 + 1.0,
                "{}: depth {d} vs published {want}",
                spec.name
            );
        }
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        assert!(iscas85("c9999").is_err());
    }

    #[test]
    fn spec_lookup() {
        assert_eq!(spec("c432").unwrap().gates, 160);
        assert!(spec("b17").is_none());
    }

    #[test]
    fn table_one_vo_identity_holds_for_all_specs() {
        // Vo(paper) = gates + inputs for every non-structural circuit —
        // the identity that justifies the calibration (see DESIGN.md).
        let paper_vo = [
            ("c432", 196),
            ("c499", 243),
            ("c880", 443),
            ("c1355", 587),
            ("c1908", 913),
            ("c2670", 1426),
            ("c3540", 1719),
            ("c5315", 2485),
            ("c7552", 3719),
        ];
        for (name, vo) in paper_vo {
            let s = spec(name).unwrap();
            assert_eq!(s.gates + s.inputs, vo, "{name}");
        }
    }
}
