//! NOR-based array multiplier — the c6288 stand-in.
//!
//! Hansen, Yalcin and Hayes ("Unveiling the ISCAS-85 benchmarks", IEEE
//! Design & Test 1999) reverse-engineered c6288 as a 16×16 array
//! multiplier built from 240 adders arranged in 15 rows, with the adder
//! cells implemented entirely in NOR logic. We rebuild that structure:
//!
//! * partial products from AND2 cells,
//! * full adders from the classic 9-NOR-gate cell,
//! * half adders from a 6-NOR-gate cell,
//! * 15 carry-save rows followed by a ripple carry-propagate row.
//!
//! The long ripple chains give the multiplier the deepest logic of all
//! ISCAS85 circuits (depth > 100), which is exactly the structural property
//! the paper's Fig. 7 experiment leans on. Functional correctness is
//! verified against integer multiplication in the tests.

use crate::library::library_90nm;
use crate::{Netlist, NetlistBuilder, NetlistError, Signal};
use std::sync::Arc;

/// 9-NOR full adder (the c6288 adder cell).
///
/// Derivation: with `g1 = NOR(a,b)`, `g4 = XNOR(a,b)` (4 NORs), the sum is
/// `XNOR(g4, cin)` (4 more NORs) and the carry is `NOR(g1, g5)` where
/// `g5 = NOR(g4, cin)` is already available — 9 NOR2 gates total.
fn full_adder(
    b: &mut NetlistBuilder,
    nor2: &str,
    a: Signal,
    bb: Signal,
    cin: Signal,
) -> Result<(Signal, Signal), NetlistError> {
    let g1 = b.add_gate_by_name(nor2, &[a, bb])?;
    let g2 = b.add_gate_by_name(nor2, &[a, g1])?;
    let g3 = b.add_gate_by_name(nor2, &[bb, g1])?;
    let g4 = b.add_gate_by_name(nor2, &[g2, g3])?; // XNOR(a, b)
    let g5 = b.add_gate_by_name(nor2, &[g4, cin])?;
    let g6 = b.add_gate_by_name(nor2, &[g4, g5])?;
    let g7 = b.add_gate_by_name(nor2, &[cin, g5])?;
    let sum = b.add_gate_by_name(nor2, &[g6, g7])?; // XNOR(XNOR(a,b), cin) = a^b^cin
    let cout = b.add_gate_by_name(nor2, &[g1, g5])?; // majority(a, b, cin)
    Ok((sum, cout))
}

/// 6-NOR half adder.
///
/// `sum = NOR(g1, g4) = XOR(a, b)`, `carry = NOR(g1, sum) = a·b`.
fn half_adder(
    b: &mut NetlistBuilder,
    nor2: &str,
    a: Signal,
    bb: Signal,
) -> Result<(Signal, Signal), NetlistError> {
    let g1 = b.add_gate_by_name(nor2, &[a, bb])?;
    let g2 = b.add_gate_by_name(nor2, &[a, g1])?;
    let g3 = b.add_gate_by_name(nor2, &[bb, g1])?;
    let g4 = b.add_gate_by_name(nor2, &[g2, g3])?; // XNOR(a, b)
    let sum = b.add_gate_by_name(nor2, &[g1, g4])?; // XOR(a, b)
    let carry = b.add_gate_by_name(nor2, &[g1, sum])?; // a AND b
    Ok((sum, carry))
}

/// Generates an `n×n` unsigned array multiplier.
///
/// Inputs (in order): `a[0..n]`, `b[0..n]`; outputs: `p[0..2n]`
/// (little-endian product bits). `array_multiplier(16)` is the c6288
/// stand-in.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] when `n < 2`.
///
/// # Example
///
/// ```
/// use ssta_netlist::generators::array_multiplier;
/// use ssta_netlist::simulate::{from_bits, simulate, to_bits};
///
/// # fn main() -> Result<(), ssta_netlist::NetlistError> {
/// let mul = array_multiplier(4)?;
/// let mut inputs = to_bits(13, 4);
/// inputs.extend(to_bits(11, 4));
/// let product = from_bits(&simulate(&mul, &inputs));
/// assert_eq!(product, 143);
/// # Ok(())
/// # }
/// ```
pub fn array_multiplier(n: usize) -> Result<Netlist, NetlistError> {
    if n < 2 {
        return Err(NetlistError::InvalidGeneratorConfig {
            reason: "multiplier width must be at least 2".into(),
        });
    }
    let lib = Arc::new(library_90nm());
    let mut b = Netlist::builder(format!("mul{n}x{n}"), lib, 2 * n);
    let nor2 = "NOR2";

    let a_bit = |j: usize| Signal::Input(j as u32);
    let b_bit = |i: usize| Signal::Input((n + i) as u32);

    // Partial products pp[i][j] = a[j] & b[i] (weight i + j).
    let mut pp = vec![vec![Signal::Input(0); n]; n];
    for (i, row) in pp.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = b.add_gate_by_name("AND2", &[a_bit(j), b_bit(i)])?;
        }
    }

    // Carry-save rows. Invariant after processing row i:
    //   value remaining = Σ_j S[j]·2^(i+j) + Σ_j C[j]·2^(i+j+1)
    // with product bits p_0..p_i already emitted (p_i = S[0] of row i).
    let mut product: Vec<Signal> = Vec::with_capacity(2 * n);

    // Row 0: S = pp[0], C = none.
    let mut s: Vec<Signal> = pp[0].clone();
    let mut c: Vec<Option<Signal>> = vec![None; n];
    product.push(s[0]);

    for pp_row in pp.iter().take(n).skip(1) {
        let mut s_next = Vec::with_capacity(n);
        let mut c_next: Vec<Option<Signal>> = Vec::with_capacity(n);
        for j in 0..n {
            let in_pp = pp_row[j];
            let in_s = if j + 1 < n { Some(s[j + 1]) } else { None };
            let in_c = c[j];
            let (sum, carry) = match (in_s, in_c) {
                (Some(x), Some(y)) => {
                    let (sm, cr) = full_adder(&mut b, nor2, in_pp, x, y)?;
                    (sm, Some(cr))
                }
                (Some(x), None) | (None, Some(x)) => {
                    let (sm, cr) = half_adder(&mut b, nor2, in_pp, x)?;
                    (sm, Some(cr))
                }
                (None, None) => (in_pp, None),
            };
            s_next.push(sum);
            c_next.push(carry);
        }
        s = s_next;
        c = c_next;
        product.push(s[0]);
    }

    // Final carry-propagate row over weights n .. 2n-1:
    // column k (weight n+k) receives S[k+1] (k < n-1) and C[k], plus the
    // ripple carry from column k-1.
    let mut ripple: Option<Signal> = None;
    for k in 0..n {
        let x = if k + 1 < n { Some(s[k + 1]) } else { None };
        let y = c[k];
        let mut operands: Vec<Signal> = [x, y, ripple].into_iter().flatten().collect();
        let (sum, carry) = match operands.len() {
            3 => {
                let (sm, cr) = full_adder(&mut b, nor2, operands[0], operands[1], operands[2])?;
                (sm, Some(cr))
            }
            2 => {
                let (sm, cr) = half_adder(&mut b, nor2, operands[0], operands[1])?;
                (sm, Some(cr))
            }
            1 => (operands.pop().expect("one operand"), None),
            _ => {
                // Weight column with no contributions: product bit is 0.
                // Cannot happen for n >= 2 (C[k] always exists for k < n).
                return Err(NetlistError::InvalidGeneratorConfig {
                    reason: format!("empty CPA column {k}"),
                });
            }
        };
        product.push(sum);
        ripple = carry;
    }
    // The carry out of the top column is mathematically zero for an n×n
    // product (max value fits in 2n bits); it is intentionally dropped.
    // The tests verify products exhaustively for small n and by sampling
    // for n = 16, which would catch a miswired top column.

    for p in &product {
        b.add_output(*p)?;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{from_bits, simulate, to_bits};

    fn check_product(n: usize, a: u64, x: u64, mul: &Netlist) {
        let mut inputs = to_bits(a, n);
        inputs.extend(to_bits(x, n));
        let got = from_bits(&simulate(mul, &inputs));
        assert_eq!(got, a * x, "{a} * {x} (n = {n})");
    }

    #[test]
    fn exhaustive_4x4() {
        let mul = array_multiplier(4).unwrap();
        mul.validate().unwrap();
        for a in 0..16u64 {
            for x in 0..16u64 {
                check_product(4, a, x, &mul);
            }
        }
    }

    #[test]
    fn exhaustive_2x2_and_3x3() {
        for n in [2usize, 3] {
            let mul = array_multiplier(n).unwrap();
            for a in 0..(1u64 << n) {
                for x in 0..(1u64 << n) {
                    check_product(n, a, x, &mul);
                }
            }
        }
    }

    #[test]
    fn sampled_16x16_matches_integer_multiplication() {
        use rand::{Rng, SeedableRng};
        let mul = array_multiplier(16).unwrap();
        mul.validate().unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xc6288);
        for _ in 0..200 {
            let a = rng.gen::<u16>() as u64;
            let x = rng.gen::<u16>() as u64;
            check_product(16, a, x, &mul);
        }
        // Corner cases.
        for (a, x) in [(0, 0), (0, 65535), (65535, 65535), (1, 65535), (32768, 2)] {
            check_product(16, a, x, &mul);
        }
    }

    #[test]
    fn c6288_standin_shape_is_close_to_paper() {
        let mul = array_multiplier(16).unwrap();
        let stats = mul.stats();
        assert_eq!(stats.inputs, 32);
        assert_eq!(stats.outputs, 32);
        // Paper timing graph: Vo = 2448, Eo = 4800. Our reconstruction is
        // within a few percent (see DESIGN.md).
        let vo = stats.gates + stats.inputs;
        assert!(
            (2300..=2600).contains(&vo),
            "vertex count {vo} out of expected band"
        );
        assert!(
            (4500..=5200).contains(&stats.pin_connections),
            "edge count {} out of expected band",
            stats.pin_connections
        );
        // Deep ripple structure: depth in excess of 100 levels.
        assert!(stats.logic_depth > 100, "depth {}", stats.logic_depth);
    }

    #[test]
    fn multiplier_is_mostly_nor_gates() {
        let mul = array_multiplier(8).unwrap();
        let usage = mul.cell_usage();
        let nor = usage.get("NOR2").copied().unwrap_or(0);
        let and = usage.get("AND2").copied().unwrap_or(0);
        assert_eq!(and, 64);
        assert!(nor > 4 * and, "NOR-dominated: nor = {nor}, and = {and}");
    }

    #[test]
    fn rejects_width_below_two() {
        assert!(array_multiplier(0).is_err());
        assert!(array_multiplier(1).is_err());
    }
}
