//! Circuit generators.
//!
//! Three families:
//!
//! * arithmetic building blocks ([`ripple_carry_adder`], [`parity_tree`])
//!   used by examples and tests;
//! * a real [`array_multiplier`] with the
//!   NOR-based adder cells of the original c6288 (Hansen et al., IEEE
//!   Design & Test 1999) — the module used in the paper's Fig. 7
//!   hierarchical experiment;
//! * [`generate_layered`] random DAGs calibrated to the published ISCAS85
//!   timing-graph sizes, dispatched by name through [`iscas`].

mod layered;
mod multiplier;

pub mod iscas;

pub use iscas::{iscas85, iscas85_all, Iscas85Spec, ISCAS85_SPECS};
pub use layered::{generate_layered, LayeredSpec};
pub use multiplier::array_multiplier;

use crate::library::library_90nm;
use crate::sequential::{seq_library_90nm, RegisteredModule};
use crate::{Netlist, NetlistError, Signal};
use std::sync::Arc;

/// Generates an `n`-bit ripple-carry adder.
///
/// Inputs (in order): `a[0..n]`, `b[0..n]`, `cin`; outputs: `sum[0..n]`,
/// `cout`. Built from XOR/AND/OR cells, so its cell mix differs from the
/// NOR-only multiplier — useful for exercising heterogeneous libraries.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] when `n == 0`.
pub fn ripple_carry_adder(n: usize) -> Result<Netlist, NetlistError> {
    if n == 0 {
        return Err(NetlistError::InvalidGeneratorConfig {
            reason: "adder width must be at least 1".into(),
        });
    }
    let lib = Arc::new(library_90nm());
    let mut b = Netlist::builder(format!("rca{n}"), lib, 2 * n + 1);

    let a = |i: usize| Signal::Input(i as u32);
    let bb = |i: usize| Signal::Input((n + i) as u32);
    let mut carry = Signal::Input(2 * n as u32); // cin

    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        // sum_i = a ^ b ^ carry; carry' = (a & b) | (carry & (a ^ b)).
        let axb = b.add_gate_by_name("XOR2", &[a(i), bb(i)])?;
        let sum = b.add_gate_by_name("XOR2", &[axb, carry])?;
        let and1 = b.add_gate_by_name("AND2", &[a(i), bb(i)])?;
        let and2 = b.add_gate_by_name("AND2", &[axb, carry])?;
        carry = b.add_gate_by_name("OR2", &[and1, and2])?;
        sums.push(sum);
    }
    for s in sums {
        b.add_output(s)?;
    }
    b.add_output(carry)?;
    b.finish()
}

/// Generates a balanced XOR parity tree over `n` inputs.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] when `n < 2`.
pub fn parity_tree(n: usize) -> Result<Netlist, NetlistError> {
    if n < 2 {
        return Err(NetlistError::InvalidGeneratorConfig {
            reason: "parity tree needs at least 2 inputs".into(),
        });
    }
    let lib = Arc::new(library_90nm());
    let mut b = Netlist::builder(format!("parity{n}"), lib, n);
    let mut level: Vec<Signal> = (0..n as u32).map(Signal::Input).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.add_gate_by_name("XOR2", &[pair[0], pair[1]])?);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    b.add_output(level[0])?;
    b.finish()
}

/// Generates the stages of a registered pipeline: each named core becomes
/// a [`RegisteredModule`] whose inputs are fed by a bank of `register`
/// cells (looked up in [`seq_library_90nm`]) sharing one clock.
///
/// Core names are ISCAS85 benchmark names (`"c432"`, `"c880"`, …) or the
/// arithmetic generators by prefix (`"rca<width>"` for a ripple-carry
/// adder, `"parity<n>"` for a parity tree). Each stage's core keeps its
/// own name suffixed with the stage index (`c432_s0`, `c432_s1`, …) so a
/// design can tell instances apart while identical structures still
/// dedupe to one characterization (the netlist *name* is excluded from
/// content fingerprints).
///
/// Wiring the stages together — stage `k` outputs into stage `k+1`
/// register D pins — is a design-level concern; this generator produces
/// the per-stage modules a `DesignBuilder` then connects.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] for an empty stage
/// list, [`NetlistError::UnknownCell`] for an unknown register name, and
/// propagates core-generator failures.
///
/// # Example
///
/// ```
/// use ssta_netlist::generators;
///
/// let stages = generators::registered_pipeline(&["rca4", "rca4", "rca4"], "DFF").unwrap();
/// assert_eq!(stages.len(), 3);
/// assert_eq!(stages[0].n_registers(), 9);
/// assert_eq!(stages[1].name(), "rca4_s1");
/// ```
pub fn registered_pipeline(
    cores: &[&str],
    register: &str,
) -> Result<Vec<RegisteredModule>, NetlistError> {
    if cores.is_empty() {
        return Err(NetlistError::InvalidGeneratorConfig {
            reason: "registered pipeline needs at least one stage".into(),
        });
    }
    let reg = seq_library_90nm().find(register)?.clone();
    cores
        .iter()
        .enumerate()
        .map(|(stage, name)| {
            let core = named_core(name)?.renamed(format!("{name}_s{stage}"));
            RegisteredModule::new(core, reg.clone())
        })
        .collect()
}

/// Dispatches a core name to the matching combinational generator.
fn named_core(name: &str) -> Result<Netlist, NetlistError> {
    let parse_suffix =
        |prefix: &str| -> Option<usize> { name.strip_prefix(prefix).and_then(|s| s.parse().ok()) };
    if name.starts_with('c') {
        iscas85(name)
    } else if let Some(width) = parse_suffix("rca") {
        ripple_carry_adder(width)
    } else if let Some(n) = parse_suffix("parity") {
        parity_tree(n)
    } else {
        Err(NetlistError::InvalidGeneratorConfig {
            reason: format!("unknown pipeline core `{name}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{from_bits, simulate, to_bits};

    #[test]
    fn adder_adds_exhaustively_for_small_widths() {
        let n = 3;
        let adder = ripple_carry_adder(n).unwrap();
        adder.validate().unwrap();
        for a in 0..(1u64 << n) {
            for b in 0..(1u64 << n) {
                for cin in 0..2u64 {
                    let mut inputs = to_bits(a, n);
                    inputs.extend(to_bits(b, n));
                    inputs.push(cin == 1);
                    let out = simulate(&adder, &inputs);
                    let got = from_bits(&out);
                    assert_eq!(got, a + b + cin, "{a} + {b} + {cin}");
                }
            }
        }
    }

    #[test]
    fn adder_shape() {
        let adder = ripple_carry_adder(8).unwrap();
        assert_eq!(adder.n_inputs(), 17);
        assert_eq!(adder.n_outputs(), 9);
        assert_eq!(adder.n_gates(), 8 * 5);
    }

    #[test]
    fn adder_rejects_zero_width() {
        assert!(ripple_carry_adder(0).is_err());
    }

    #[test]
    fn parity_tree_computes_parity() {
        let n = 9;
        let tree = parity_tree(n).unwrap();
        tree.validate().unwrap();
        for v in [0u64, 1, 0b101, 0b111111111, 0b100100100] {
            let out = simulate(&tree, &to_bits(v, n));
            assert_eq!(out[0], v.count_ones() % 2 == 1, "v = {v:b}");
        }
    }

    #[test]
    fn parity_tree_depth_is_logarithmic() {
        let tree = parity_tree(64).unwrap();
        assert_eq!(tree.logic_depth(), 6);
    }

    #[test]
    fn registered_pipeline_builds_named_stages() {
        let stages = registered_pipeline(&["c432", "c880", "c432"], "DFF").unwrap();
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].name(), "c432_s0");
        assert_eq!(stages[1].name(), "c880_s1");
        assert_eq!(stages[2].name(), "c432_s2");
        for stage in &stages {
            stage.core().validate().unwrap();
            assert_eq!(stage.register().name(), "DFF");
            assert_eq!(stage.n_registers(), stage.core().n_inputs());
        }
    }

    #[test]
    fn registered_pipeline_accepts_arithmetic_cores() {
        let stages = registered_pipeline(&["rca8", "parity16"], "DFFX2").unwrap();
        assert_eq!(stages[0].n_registers(), 17);
        assert_eq!(stages[1].n_outputs(), 1);
    }

    #[test]
    fn registered_pipeline_rejects_bad_configs() {
        assert!(matches!(
            registered_pipeline(&[], "DFF"),
            Err(NetlistError::InvalidGeneratorConfig { .. })
        ));
        assert!(matches!(
            registered_pipeline(&["c432"], "NOSUCHREG"),
            Err(NetlistError::UnknownCell { .. })
        ));
        assert!(registered_pipeline(&["mystery9"], "DFF").is_err());
    }
}
