//! Calibrated random layered DAG generator.
//!
//! The ISCAS85 netlists themselves are not available offline, but the
//! paper's Table I pins down each circuit's timing-graph size exactly
//! (`Vo = gates + primary inputs`, `Eo = Σ gate fan-ins`). This generator
//! produces a random combinational circuit with *exactly* the requested
//! number of inputs, outputs, gates and pin connections, and a target
//! logic depth — so the reproduced Table I starts from the same `Eo`/`Vo`
//! columns as the paper.
//!
//! Construction sketch:
//!
//! 1. distribute gates over `depth` layers (middle-heavy profile);
//! 2. give every gate a first input from the previous layer (this chains
//!    layers together and fixes the logic depth) and draw the remaining
//!    fan-in from earlier layers with a locality bias;
//! 3. steer each gate's fan-in so the total pin count lands exactly on
//!    `pin_connections`;
//! 4. attach unused primary inputs by rewiring spare pins;
//! 5. convert dangling gates into primary outputs, attaching any surplus
//!    back into later layers.

use crate::library::{library_90nm, CellTypeId, Library};
use crate::{Netlist, NetlistError, Signal};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Target shape for [`generate_layered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayeredSpec {
    /// Netlist name.
    pub name: String,
    /// Exact number of primary inputs (all will be used).
    pub n_inputs: usize,
    /// Exact number of primary outputs.
    pub n_outputs: usize,
    /// Exact number of gates.
    pub n_gates: usize,
    /// Exact total fan-in pin count (the paper's `Eo`).
    pub pin_connections: usize,
    /// Target logic depth in gate levels.
    pub depth: usize,
    /// RNG seed; the same spec and seed reproduce the same netlist.
    pub seed: u64,
}

impl LayeredSpec {
    fn validate(&self) -> Result<(), NetlistError> {
        let fail = |reason: String| Err(NetlistError::InvalidGeneratorConfig { reason });
        if self.n_inputs == 0 || self.n_outputs == 0 || self.n_gates == 0 {
            return fail("inputs, outputs and gates must all be positive".into());
        }
        if self.depth == 0 || self.depth > self.n_gates {
            return fail(format!(
                "depth {} must be in 1..={} (gate count)",
                self.depth, self.n_gates
            ));
        }
        if self.n_outputs > self.n_gates {
            return fail("more outputs than gates".into());
        }
        if self.pin_connections < self.n_gates || self.pin_connections > 4 * self.n_gates {
            return fail(format!(
                "pin count {} outside feasible band [{}, {}]",
                self.pin_connections,
                self.n_gates,
                4 * self.n_gates
            ));
        }
        // Every input must find a distinct pin somewhere.
        if self.pin_connections < self.n_inputs {
            return fail("fewer pins than primary inputs".into());
        }
        Ok(())
    }
}

/// Per-arity cell choices with NAND/NOR-heavy weights (typical of mapped
/// ISCAS85 netlists).
struct CellPalette {
    by_arity: [Vec<(CellTypeId, u32)>; 4],
}

impl CellPalette {
    fn new(lib: &Library) -> Self {
        let weight = |name: &str| -> u32 {
            match name {
                "INV" => 6,
                "BUF" => 1,
                "NAND2" | "NOR2" => 6,
                "NAND3" | "NOR3" => 4,
                "NAND4" | "NOR4" => 3,
                "AND2" | "OR2" => 2,
                "XOR2" | "XNOR2" => 2,
                _ => 1,
            }
        };
        let mut by_arity: [Vec<(CellTypeId, u32)>; 4] = Default::default();
        for (id, cell) in lib.iter() {
            by_arity[cell.arity() - 1].push((id, weight(cell.name())));
        }
        CellPalette { by_arity }
    }

    fn pick(&self, arity: usize, rng: &mut StdRng) -> CellTypeId {
        let pool = &self.by_arity[arity - 1];
        let total: u32 = pool.iter().map(|&(_, w)| w).sum();
        let mut roll = rng.gen_range(0..total);
        for &(id, w) in pool {
            if roll < w {
                return id;
            }
            roll -= w;
        }
        pool.last().expect("non-empty palette").0
    }
}

/// Generates a netlist matching `spec` exactly (inputs, outputs, gates and
/// pin connections; depth approximately).
///
/// Generation is randomized; a draw can occasionally paint itself into a
/// corner (a dangling gate that no later pin can absorb). Such draws are
/// detected by validation and retried with a derived seed — still fully
/// deterministic for a given `spec.seed`.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidGeneratorConfig`] for infeasible specs
/// or when no valid netlist is found within the retry budget.
pub fn generate_layered(spec: &LayeredSpec) -> Result<Netlist, NetlistError> {
    spec.validate()?;
    let mut last_err = None;
    for attempt in 0..16u64 {
        match generate_attempt(
            spec,
            spec.seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
        ) {
            Ok(netlist) => return Ok(netlist),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

fn generate_attempt(spec: &LayeredSpec, seed: u64) -> Result<Netlist, NetlistError> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5557_4153_5354_4121);
    let lib = Arc::new(library_90nm());
    let palette = CellPalette::new(&lib);

    let layer_sizes = distribute_layers(spec, &mut rng);
    debug_assert_eq!(layer_sizes.iter().sum::<usize>(), spec.n_gates);

    let mut b = Netlist::builder(spec.name.clone(), Arc::clone(&lib), spec.n_inputs);

    // signals_by_layer[0] = primary inputs; layer l gates live at index l+1.
    let mut signals_by_layer: Vec<Vec<Signal>> =
        vec![(0..spec.n_inputs as u32).map(Signal::Input).collect()];
    // Gates in the previous layer that nobody consumes yet.
    let mut gate_layer: Vec<usize> = Vec::with_capacity(spec.n_gates);

    let mut remaining_pins = spec.pin_connections;
    let mut remaining_gates = spec.n_gates;
    let mut fanout = vec![0usize; spec.n_inputs + spec.n_gates];

    for (l, &size) in layer_sizes.iter().enumerate() {
        // Previous-layer signals that still need a consumer, shuffled.
        let mut hungry: Vec<Signal> = signals_by_layer[l]
            .iter()
            .copied()
            .filter(|&s| fanout[flat_index(spec, s)] == 0)
            .collect();
        hungry.shuffle(&mut rng);

        let mut this_layer = Vec::with_capacity(size);
        for _ in 0..size {
            // Feasible fan-in window so the running pin budget stays exact.
            let f_min = remaining_pins
                .saturating_sub(4 * (remaining_gates - 1))
                .max(1);
            let f_max = (remaining_pins - (remaining_gates - 1)).min(4);
            debug_assert!(f_min <= f_max, "infeasible pin window");
            let ideal = remaining_pins as f64 / remaining_gates as f64;
            let jitter = rng.gen_range(-0.75..0.75);
            let f = ((ideal + jitter).round() as usize).clamp(f_min, f_max);

            // First input: previous layer, preferring unconsumed signals.
            let first = hungry.pop().unwrap_or_else(|| {
                *signals_by_layer[l]
                    .choose(&mut rng)
                    .expect("layer never empty")
            });
            let mut inputs = vec![first];
            for _ in 1..f {
                // Half the time, feed a signal that still has no consumer
                // (from any earlier layer); this keeps dangling gates rare.
                let starving: Option<Signal> =
                    if rng.gen_bool(0.5) {
                        signals_by_layer[..=l].iter().flatten().copied().find(|&s| {
                            matches!(s, Signal::Gate(_)) && fanout[flat_index(spec, s)] == 0
                        })
                    } else {
                        None
                    };
                inputs.push(
                    starving.unwrap_or_else(|| pick_earlier_signal(&signals_by_layer, l, &mut rng)),
                );
            }

            let cell = palette.pick(f, &mut rng);
            let sig = b.add_gate(cell, &inputs).expect("validated construction");
            for &s in &inputs {
                fanout[flat_index(spec, s)] += 1;
            }
            this_layer.push(sig);
            gate_layer.push(l);
            remaining_pins -= f;
            remaining_gates -= 1;
        }
        signals_by_layer.push(this_layer);
    }
    debug_assert_eq!(remaining_pins, 0);

    attach_unused_inputs(spec, &mut b, &mut fanout, &gate_layer, &mut rng)?;
    let outputs = select_outputs(spec, &mut b, &mut fanout, &gate_layer, &mut rng);
    for s in outputs {
        b.add_output(s)?;
    }

    let netlist = b.finish()?;
    netlist.validate()?;
    Ok(netlist)
}

fn flat_index(spec: &LayeredSpec, s: Signal) -> usize {
    match s {
        Signal::Input(i) => i as usize,
        Signal::Gate(g) => spec.n_inputs + g as usize,
    }
}

/// Middle-heavy layer profile: real circuits fan out from the inputs,
/// bulge in the middle and converge toward the outputs.
fn distribute_layers(spec: &LayeredSpec, rng: &mut StdRng) -> Vec<usize> {
    let d = spec.depth;
    let weights: Vec<f64> = (0..d)
        .map(|l| {
            let x = (l as f64 + 0.5) / d as f64;
            1.0 + 2.0 * (std::f64::consts::PI * x).sin() + rng.gen_range(0.0..0.5)
        })
        .collect();
    // The last layer is capped by the output count so all its gates can
    // become primary outputs.
    let total_w: f64 = weights.iter().sum();
    let spare = spec.n_gates - d; // one gate per layer is reserved
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| 1 + (spare as f64 * w / total_w) as usize)
        .collect();
    // Fix rounding drift.
    let mut assigned: usize = sizes.iter().sum();
    while assigned < spec.n_gates {
        let i = rng.gen_range(0..d);
        sizes[i] += 1;
        assigned += 1;
    }
    while assigned > spec.n_gates {
        let i = rng.gen_range(0..d);
        if sizes[i] > 1 {
            sizes[i] -= 1;
            assigned -= 1;
        }
    }
    // Enforce the last-layer cap, shifting overflow to the middle.
    let cap = spec.n_outputs.max(1);
    if sizes[d - 1] > cap {
        let overflow = sizes[d - 1] - cap;
        sizes[d - 1] = cap;
        for _ in 0..overflow {
            let i = if d > 1 { rng.gen_range(0..d - 1) } else { 0 };
            sizes[i] += 1;
        }
    }
    sizes
}

/// Draws a signal from layers `0..=l` (0 = primary inputs) with a bias
/// toward recent layers — mimicking the locality of synthesized logic.
fn pick_earlier_signal(layers: &[Vec<Signal>], l: usize, rng: &mut StdRng) -> Signal {
    // Geometric walk back from the previous layer.
    let mut idx = l as i64;
    while idx > 0 && rng.gen_bool(0.45) {
        idx -= 1;
    }
    let layer = &layers[idx as usize];
    *layer.choose(rng).expect("layers are non-empty")
}

/// Rewires spare pins so every primary input is consumed at least once.
fn attach_unused_inputs(
    spec: &LayeredSpec,
    b: &mut crate::NetlistBuilder,
    fanout: &mut [usize],
    gate_layer: &[usize],
    rng: &mut StdRng,
) -> Result<(), NetlistError> {
    let unused: Vec<u32> = (0..spec.n_inputs as u32)
        .filter(|&i| fanout[i as usize] == 0)
        .collect();
    if unused.is_empty() {
        return Ok(());
    }
    // Visit gates in random order; each donates at most one spare pin
    // (a non-first pin whose current source can afford to lose a fanout).
    let mut candidates: Vec<usize> = (0..gate_layer.len()).collect();
    candidates.shuffle(rng);

    let mut queue = unused.into_iter();
    let mut current = queue.next();
    for g in candidates {
        let Some(pi) = current else { return Ok(()) };
        let pins = b.gate_arity(g);
        if pins < 2 {
            continue;
        }
        let pin = 1 + rng.gen_range(0..pins - 1);
        let old = b.gate_input(g, pin);
        let old_idx = flat_index(spec, old);
        if fanout[old_idx] < 2 {
            continue; // would orphan the old source
        }
        b.rewire_input(g, pin, Signal::Input(pi))?;
        fanout[old_idx] -= 1;
        fanout[pi as usize] += 1;
        current = queue.next();
    }
    if current.is_some() {
        return Err(NetlistError::InvalidGeneratorConfig {
            reason: "could not attach all primary inputs (pin budget too tight)".into(),
        });
    }
    Ok(())
}

/// Picks exactly `n_outputs` primary-output drivers: all dangling gates
/// first (attaching any surplus into later layers), topped up with gates
/// from the deepest layers.
fn select_outputs(
    spec: &LayeredSpec,
    b: &mut crate::NetlistBuilder,
    fanout: &mut [usize],
    gate_layer: &[usize],
    rng: &mut StdRng,
) -> Vec<Signal> {
    let n_gates = gate_layer.len();
    let last_layer = *gate_layer.last().expect("gates exist");

    let mut dangling: Vec<usize> = (0..n_gates)
        .filter(|&g| fanout[spec.n_inputs + g] == 0)
        .collect();
    // Deepest first: those are the natural outputs and must be kept.
    dangling.sort_by_key(|&g| std::cmp::Reverse(gate_layer[g]));

    let mut outputs: Vec<usize> = Vec::with_capacity(spec.n_outputs);
    let mut to_attach: Vec<usize> = Vec::new();
    for g in dangling {
        if outputs.len() < spec.n_outputs || gate_layer[g] == last_layer {
            outputs.push(g);
        } else {
            to_attach.push(g);
        }
    }

    // Surplus dangling gates get wired into a later layer.
    let mut worklist = to_attach;
    while let Some(g) = worklist.pop() {
        let gl = gate_layer[g];
        let mut attached = false;
        for _try in 0..64 {
            let h = rng.gen_range(0..n_gates);
            if gate_layer[h] <= gl || b.gate_arity(h) < 2 {
                continue;
            }
            let pin = 1 + rng.gen_range(0..b.gate_arity(h) - 1);
            let old = b.gate_input(h, pin);
            let old_idx = flat_index(spec, old);
            if fanout[old_idx] < 2 {
                continue;
            }
            b.rewire_input(h, pin, Signal::Gate(g as u32))
                .expect("later-layer rewire is always topologically valid");
            fanout[old_idx] -= 1;
            fanout[spec.n_inputs + g] += 1;
            attached = true;
            break;
        }
        if !attached {
            // Exhaustive fallback over all later-layer spare pins.
            #[allow(clippy::needless_range_loop)] // h also feeds flat_index bookkeeping
            'scan: for h in 0..n_gates {
                if gate_layer[h] <= gl || b.gate_arity(h) < 2 {
                    continue;
                }
                for pin in 1..b.gate_arity(h) {
                    let old = b.gate_input(h, pin);
                    let old_idx = flat_index(spec, old);
                    if fanout[old_idx] < 2 {
                        continue;
                    }
                    b.rewire_input(h, pin, Signal::Gate(g as u32))
                        .expect("later-layer rewire is valid");
                    fanout[old_idx] -= 1;
                    fanout[spec.n_inputs + g] += 1;
                    attached = true;
                    break 'scan;
                }
            }
        }
        if !attached {
            // Keep it as an extra output; trimmed below if over budget
            // (the generate_layered retry loop catches the rare failure).
            outputs.push(g);
        }
    }

    // Top up with the deepest non-dangling gates.
    if outputs.len() < spec.n_outputs {
        let mut rest: Vec<usize> = (0..n_gates).filter(|g| !outputs.contains(g)).collect();
        rest.sort_by_key(|&g| std::cmp::Reverse(gate_layer[g]));
        for g in rest {
            if outputs.len() == spec.n_outputs {
                break;
            }
            outputs.push(g);
        }
    }
    outputs.truncate(spec.n_outputs);
    outputs
        .into_iter()
        .map(|g| Signal::Gate(g as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> LayeredSpec {
        LayeredSpec {
            name: "rand-small".into(),
            n_inputs: 12,
            n_outputs: 5,
            n_gates: 60,
            pin_connections: 126,
            depth: 8,
            seed: 11,
        }
    }

    #[test]
    fn exact_counts_are_hit() {
        let n = generate_layered(&small_spec()).unwrap();
        assert_eq!(n.n_inputs(), 12);
        assert_eq!(n.n_outputs(), 5);
        assert_eq!(n.n_gates(), 60);
        assert_eq!(n.pin_connection_count(), 126);
        n.validate().unwrap();
    }

    #[test]
    fn depth_is_close_to_target() {
        let n = generate_layered(&small_spec()).unwrap();
        let depth = n.logic_depth();
        assert!(
            (7..=9).contains(&depth),
            "depth {depth} too far from target 8"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate_layered(&small_spec()).unwrap();
        let b = generate_layered(&small_spec()).unwrap();
        assert_eq!(a.gates(), b.gates());
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec2 = small_spec();
        spec2.seed = 12;
        let a = generate_layered(&small_spec()).unwrap();
        let b = generate_layered(&spec2).unwrap();
        assert_ne!(a.gates(), b.gates());
    }

    #[test]
    fn rejects_infeasible_specs() {
        let mut s = small_spec();
        s.pin_connections = 10; // fewer than gates
        assert!(generate_layered(&s).is_err());

        let mut s = small_spec();
        s.depth = 0;
        assert!(generate_layered(&s).is_err());

        let mut s = small_spec();
        s.n_outputs = 100; // more outputs than gates
        assert!(generate_layered(&s).is_err());
    }

    #[test]
    fn handles_input_heavy_circuits() {
        // Mimics c2670's unusual shape: far more inputs than layer-0 gates.
        let spec = LayeredSpec {
            name: "wide".into(),
            n_inputs: 100,
            n_outputs: 40,
            n_gates: 400,
            pin_connections: 760,
            depth: 12,
            seed: 3,
        };
        let n = generate_layered(&spec).unwrap();
        n.validate().unwrap();
        assert_eq!(n.n_inputs(), 100);
        assert_eq!(n.pin_connection_count(), 760);
    }
}
