use crate::library::{CellTypeId, Library};
use crate::NetlistError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A signal source: either a primary input or a gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Primary input `n`.
    Input(u32),
    /// Output of gate `n`.
    Gate(u32),
}

/// One gate instance: a cell type plus its input connections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Cell type within the netlist's library.
    pub cell: CellTypeId,
    /// Input connections, one per cell pin.
    pub inputs: Vec<Signal>,
}

/// Aggregate statistics of a netlist — the quantities Table I of the paper
/// is calibrated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Total pin connections `Σ fan-in` — the `Eo` column of Table I.
    pub pin_connections: usize,
    /// Longest input-to-output path measured in gates.
    pub logic_depth: usize,
}

/// A combinational gate-level netlist, acyclic by construction.
///
/// Gates are stored in topological order: the [`NetlistBuilder`] only lets
/// a gate reference signals that already exist, so index order *is* a valid
/// evaluation order. This invariant is what makes simulation and timing
/// analysis single-pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    #[serde(skip, default = "default_library")]
    library: Arc<Library>,
    n_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<Signal>,
}

fn default_library() -> Arc<Library> {
    Arc::new(crate::library::library_90nm())
}

impl Netlist {
    /// Starts building a netlist with `n_inputs` primary inputs.
    pub fn builder(
        name: impl Into<String>,
        library: Arc<Library>,
        n_inputs: usize,
    ) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            library,
            n_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Netlist name (e.g. `"c432"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the same netlist under a different name.
    pub fn renamed(mut self, name: impl Into<String>) -> Netlist {
        self.name = name.into();
        self
    }

    /// The cell library this netlist is mapped to.
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of primary outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of gates.
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Gate `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn gate(&self, i: usize) -> &Gate {
        &self.gates[i]
    }

    /// The signals driving each primary output.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Total pin connections `Σ fan-in` (the paper's `Eo`).
    pub fn pin_connection_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }

    /// Number of gates that consume each signal (fanout), indexed as
    /// `[inputs..., gates...]`; primary-output taps are *not* counted.
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_inputs + self.gates.len()];
        for g in &self.gates {
            for &s in &g.inputs {
                counts[self.signal_index(s)] += 1;
            }
        }
        counts
    }

    /// Flat index of a signal into `[inputs..., gates...]` arrays.
    pub fn signal_index(&self, s: Signal) -> usize {
        match s {
            Signal::Input(i) => i as usize,
            Signal::Gate(g) => self.n_inputs + g as usize,
        }
    }

    /// Logic depth (gates on the longest input-to-output path).
    pub fn logic_depth(&self) -> usize {
        let mut depth = vec![0usize; self.n_inputs + self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            let d = g
                .inputs
                .iter()
                .map(|&s| depth[self.signal_index(s)])
                .max()
                .unwrap_or(0);
            depth[self.n_inputs + gi] = d + 1;
        }
        self.outputs
            .iter()
            .map(|&s| depth[self.signal_index(s)])
            .max()
            .unwrap_or(0)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            inputs: self.n_inputs,
            outputs: self.outputs.len(),
            gates: self.gates.len(),
            pin_connections: self.pin_connection_count(),
            logic_depth: self.logic_depth(),
        }
    }

    /// Gate count per cell-type name.
    pub fn cell_usage(&self) -> HashMap<String, usize> {
        let mut usage = HashMap::new();
        for g in &self.gates {
            *usage
                .entry(self.library.cell(g.cell).name().to_owned())
                .or_insert(0) += 1;
        }
        usage
    }

    /// Checks structural invariants beyond what construction guarantees:
    /// every primary input feeds at least one gate, and every gate either
    /// fans out or drives a primary output.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.gates.is_empty() || self.outputs.is_empty() {
            return Err(NetlistError::Empty);
        }
        let mut used = vec![false; self.n_inputs + self.gates.len()];
        for g in &self.gates {
            for &s in &g.inputs {
                used[self.signal_index(s)] = true;
            }
        }
        for &s in &self.outputs {
            used[self.signal_index(s)] = true;
        }
        if let Some(i) = used[..self.n_inputs].iter().position(|&u| !u) {
            return Err(NetlistError::UnusedInput { input: i });
        }
        if let Some(g) = used[self.n_inputs..].iter().position(|&u| !u) {
            return Err(NetlistError::DanglingGate { gate: g });
        }
        Ok(())
    }
}

/// Incremental netlist builder that enforces acyclicity: a gate can only
/// consume signals that already exist, so the gate list is topologically
/// ordered by construction.
///
/// # Example
///
/// ```
/// use ssta_netlist::{library::library_90nm, Netlist, Signal};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), ssta_netlist::NetlistError> {
/// let lib = Arc::new(library_90nm());
/// let mut b = Netlist::builder("demo", lib, 2);
/// let x = b.add_gate_by_name("NAND2", &[Signal::Input(0), Signal::Input(1)])?;
/// let y = b.add_gate_by_name("INV", &[x])?;
/// b.add_output(y)?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.n_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    library: Arc<Library>,
    n_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<Signal>,
}

impl NetlistBuilder {
    /// Number of gates added so far.
    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// The library used for cell lookups.
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// Checks that a signal refers to an existing input or gate.
    fn check_signal(&self, s: Signal, context: &str) -> Result<(), NetlistError> {
        let ok = match s {
            Signal::Input(i) => (i as usize) < self.n_inputs,
            Signal::Gate(g) => (g as usize) < self.gates.len(),
        };
        if ok {
            Ok(())
        } else {
            Err(NetlistError::InvalidSignal {
                context: format!("{context}: {s:?}"),
            })
        }
    }

    /// Adds a gate and returns the signal of its output.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::ArityMismatch`] if `inputs.len()` differs from the
    ///   cell's arity.
    /// * [`NetlistError::InvalidSignal`] if an input refers to a gate that
    ///   has not been created yet (this is what forbids cycles).
    pub fn add_gate(
        &mut self,
        cell: CellTypeId,
        inputs: &[Signal],
    ) -> Result<Signal, NetlistError> {
        let ct = self.library.cell(cell);
        if ct.arity() != inputs.len() {
            return Err(NetlistError::ArityMismatch {
                cell: ct.name().to_owned(),
                expected: ct.arity(),
                found: inputs.len(),
            });
        }
        for &s in inputs {
            self.check_signal(s, "gate input")?;
        }
        let id = self.gates.len() as u32;
        self.gates.push(Gate {
            cell,
            inputs: inputs.to_vec(),
        });
        Ok(Signal::Gate(id))
    }

    /// Adds a gate, looking the cell up by name.
    ///
    /// # Errors
    ///
    /// As [`add_gate`](Self::add_gate), plus [`NetlistError::UnknownCell`].
    pub fn add_gate_by_name(
        &mut self,
        cell_name: &str,
        inputs: &[Signal],
    ) -> Result<Signal, NetlistError> {
        let id = self.library.find(cell_name)?;
        self.add_gate(id, inputs)
    }

    /// Marks a signal as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidSignal`] for out-of-range signals.
    pub fn add_output(&mut self, s: Signal) -> Result<(), NetlistError> {
        self.check_signal(s, "primary output")?;
        self.outputs.push(s);
        Ok(())
    }

    /// Fan-in count (arity) of gate `gate`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn gate_arity(&self, gate: usize) -> usize {
        self.gates[gate].inputs.len()
    }

    /// Current source of input pin `pin` of gate `gate`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` or `pin` is out of range.
    pub fn gate_input(&self, gate: usize, pin: usize) -> Signal {
        self.gates[gate].inputs[pin]
    }

    /// Replaces input pin `pin` of gate `gate` with a new source signal.
    ///
    /// Only *earlier* signals are accepted so the topological invariant is
    /// preserved. Generators use this to attach otherwise-unused inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidSignal`] if the gate or pin does not
    /// exist, or if the new source would not precede the gate.
    pub fn rewire_input(
        &mut self,
        gate: usize,
        pin: usize,
        new_source: Signal,
    ) -> Result<(), NetlistError> {
        if gate >= self.gates.len() || pin >= self.gates[gate].inputs.len() {
            return Err(NetlistError::InvalidSignal {
                context: format!("rewire target gate {gate} pin {pin}"),
            });
        }
        let precedes = match new_source {
            Signal::Input(i) => (i as usize) < self.n_inputs,
            Signal::Gate(g) => (g as usize) < gate,
        };
        if !precedes {
            return Err(NetlistError::InvalidSignal {
                context: format!("rewire source {new_source:?} does not precede gate {gate}"),
            });
        }
        self.gates[gate].inputs[pin] = new_source;
        Ok(())
    }

    /// Finalizes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Empty`] when no gates or outputs exist.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if self.gates.is_empty() || self.outputs.is_empty() {
            return Err(NetlistError::Empty);
        }
        Ok(Netlist {
            name: self.name,
            library: self.library,
            n_inputs: self.n_inputs,
            gates: self.gates,
            outputs: self.outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::library_90nm;

    fn lib() -> Arc<Library> {
        Arc::new(library_90nm())
    }

    fn tiny() -> Netlist {
        let mut b = Netlist::builder("tiny", lib(), 3);
        let g0 = b
            .add_gate_by_name("NAND2", &[Signal::Input(0), Signal::Input(1)])
            .unwrap();
        let g1 = b.add_gate_by_name("INV", &[Signal::Input(2)]).unwrap();
        let g2 = b.add_gate_by_name("NOR2", &[g0, g1]).unwrap();
        b.add_output(g2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let n = tiny();
        assert_eq!(n.n_inputs(), 3);
        assert_eq!(n.n_gates(), 3);
        assert_eq!(n.n_outputs(), 1);
        assert_eq!(n.pin_connection_count(), 5);
        assert_eq!(n.logic_depth(), 2);
        n.validate().unwrap();
    }

    #[test]
    fn stats_aggregate_matches_parts() {
        let n = tiny();
        let s = n.stats();
        assert_eq!(s.gates, 3);
        assert_eq!(s.pin_connections, 5);
        assert_eq!(s.logic_depth, 2);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut b = Netlist::builder("bad", lib(), 2);
        let err = b
            .add_gate_by_name("NAND2", &[Signal::Input(0)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let mut b = Netlist::builder("bad", lib(), 1);
        // Gate 5 does not exist yet.
        let err = b.add_gate_by_name("INV", &[Signal::Gate(5)]).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidSignal { .. }));
    }

    #[test]
    fn empty_netlist_is_rejected() {
        let b = Netlist::builder("empty", lib(), 1);
        assert!(matches!(b.finish(), Err(NetlistError::Empty)));
    }

    #[test]
    fn validate_detects_unused_input() {
        let mut b = Netlist::builder("u", lib(), 2);
        let g = b.add_gate_by_name("INV", &[Signal::Input(0)]).unwrap();
        b.add_output(g).unwrap();
        let n = b.finish().unwrap();
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UnusedInput { input: 1 })
        ));
    }

    #[test]
    fn validate_detects_dangling_gate() {
        let mut b = Netlist::builder("d", lib(), 1);
        let g0 = b.add_gate_by_name("INV", &[Signal::Input(0)]).unwrap();
        let _g1 = b.add_gate_by_name("INV", &[g0]).unwrap(); // dangles
        b.add_output(g0).unwrap();
        let n = b.finish().unwrap();
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DanglingGate { gate: 1 })
        ));
    }

    #[test]
    fn rewire_respects_topological_order() {
        let mut b = Netlist::builder("r", lib(), 2);
        let g0 = b
            .add_gate_by_name("NAND2", &[Signal::Input(0), Signal::Input(0)])
            .unwrap();
        let _g1 = b.add_gate_by_name("INV", &[g0]).unwrap();
        // Attach the unused input 1 to gate 0 pin 1: fine.
        b.rewire_input(0, 1, Signal::Input(1)).unwrap();
        // Rewiring gate 0 to consume gate 1 would create a cycle: rejected.
        assert!(b.rewire_input(0, 0, Signal::Gate(1)).is_err());
    }

    #[test]
    fn fanout_counts_are_correct() {
        let n = tiny();
        let fo = n.fanout_counts();
        // inputs 0,1,2 each feed one gate; gates 0 and 1 feed gate 2.
        assert_eq!(fo, vec![1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn cell_usage_counts_types() {
        let n = tiny();
        let usage = n.cell_usage();
        assert_eq!(usage["NAND2"], 1);
        assert_eq!(usage["INV"], 1);
        assert_eq!(usage["NOR2"], 1);
    }
}
