//! Deterministic row placement.
//!
//! The spatial-correlation model needs a die coordinate for every cell:
//! grid membership determines which correlated local variables affect a
//! gate's delay. The paper uses the benchmark layouts from its industrial
//! flow; we substitute a deterministic row placement that places gates in
//! topological order, which — like a real placer — keeps logically adjacent
//! cells spatially adjacent.

use crate::Netlist;
use serde::{Deserialize, Serialize};

/// An axis-aligned die rectangle with origin at (0, 0), in micrometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieRect {
    /// Die width in µm.
    pub width: f64,
    /// Die height in µm.
    pub height: f64,
}

/// Cell coordinates for one netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    die: DieRect,
    /// One (x, y) in µm per gate, in gate index order.
    gate_positions: Vec<(f64, f64)>,
    /// One (x, y) per primary input (pad ring on the left edge).
    input_positions: Vec<(f64, f64)>,
}

impl Placement {
    /// Places the gates of `netlist` in rows, in topological order.
    ///
    /// `cell_pitch_um` is the spacing between adjacent cell sites; rows are
    /// the same pitch apart, producing a roughly square die.
    ///
    /// # Panics
    ///
    /// Panics if `cell_pitch_um` is not positive.
    pub fn rows(netlist: &Netlist, cell_pitch_um: f64) -> Self {
        assert!(cell_pitch_um > 0.0, "cell pitch must be positive");
        let n = netlist.n_gates().max(1);
        let n_cols = (n as f64).sqrt().ceil() as usize;
        let n_rows = n.div_ceil(n_cols);

        let gate_positions = (0..netlist.n_gates())
            .map(|i| {
                let row = i / n_cols;
                let col = i % n_cols;
                // Serpentine rows: odd rows run right-to-left, mirroring the
                // wire-length-aware ordering of real placers.
                let col = if row % 2 == 1 { n_cols - 1 - col } else { col };
                (
                    (col as f64 + 0.5) * cell_pitch_um,
                    (row as f64 + 0.5) * cell_pitch_um,
                )
            })
            .collect();

        let die = DieRect {
            width: n_cols as f64 * cell_pitch_um,
            height: n_rows as f64 * cell_pitch_um,
        };

        let n_in = netlist.n_inputs().max(1);
        let input_positions = (0..netlist.n_inputs())
            .map(|i| (0.0, (i as f64 + 0.5) / n_in as f64 * die.height))
            .collect();

        Placement {
            die,
            gate_positions,
            input_positions,
        }
    }

    /// The die rectangle.
    pub fn die(&self) -> DieRect {
        self.die
    }

    /// Position of gate `i` in µm.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn gate_position(&self, i: usize) -> (f64, f64) {
        self.gate_positions[i]
    }

    /// All gate positions.
    pub fn gate_positions(&self) -> &[(f64, f64)] {
        &self.gate_positions
    }

    /// Position of primary input `i` (pad location).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_position(&self, i: usize) -> (f64, f64) {
        self.input_positions[i]
    }

    /// Translates every coordinate by `(dx, dy)` — used when a module is
    /// instantiated at an offset inside a hierarchical design.
    pub fn translated(&self, dx: f64, dy: f64) -> Placement {
        Placement {
            die: self.die,
            gate_positions: self
                .gate_positions
                .iter()
                .map(|&(x, y)| (x + dx, y + dy))
                .collect(),
            input_positions: self
                .input_positions
                .iter()
                .map(|&(x, y)| (x + dx, y + dy))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn all_gates_inside_die() {
        let n = generators::ripple_carry_adder(8).unwrap();
        let p = Placement::rows(&n, 2.0);
        let die = p.die();
        for &(x, y) in p.gate_positions() {
            assert!(x > 0.0 && x < die.width);
            assert!(y > 0.0 && y < die.height);
        }
        assert_eq!(p.gate_positions().len(), n.n_gates());
    }

    #[test]
    fn die_is_roughly_square() {
        let n = generators::ripple_carry_adder(16).unwrap();
        let p = Placement::rows(&n, 2.0);
        let ratio = p.die().width / p.die().height;
        assert!(ratio > 0.5 && ratio < 2.0, "aspect ratio {ratio}");
    }

    #[test]
    fn positions_are_unique() {
        let n = generators::ripple_carry_adder(8).unwrap();
        let p = Placement::rows(&n, 1.0);
        let mut seen = std::collections::HashSet::new();
        for &(x, y) in p.gate_positions() {
            assert!(seen.insert(((x * 1e6) as i64, (y * 1e6) as i64)));
        }
    }

    #[test]
    fn translation_shifts_everything() {
        let n = generators::ripple_carry_adder(4).unwrap();
        let p = Placement::rows(&n, 2.0);
        let t = p.translated(100.0, 50.0);
        for (a, b) in p.gate_positions().iter().zip(t.gate_positions()) {
            assert!((b.0 - a.0 - 100.0).abs() < 1e-12);
            assert!((b.1 - a.1 - 50.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_panics() {
        let n = generators::ripple_carry_adder(2).unwrap();
        let _ = Placement::rows(&n, 0.0);
    }
}
