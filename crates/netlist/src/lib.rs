//! Gate-level netlist substrate for hierarchical SSTA.
//!
//! The DATE'09 paper evaluates on the ISCAS85 benchmarks mapped to an
//! industrial 90 nm library, with a placement that defines each cell's
//! spatial-correlation grid. None of those artifacts are available offline,
//! so this crate rebuilds the whole substrate:
//!
//! * [`GateKind`] / [`library`] — combinational gate functions and a
//!   synthetic 90 nm-style [`Library`] whose cells carry
//!   per-arc nominal delays and sensitivities to the four process
//!   parameters the paper varies (transistor length, oxide thickness,
//!   threshold voltage, output load);
//! * [`Netlist`] — an acyclic-by-construction combinational netlist with
//!   validation and statistics;
//! * [`simulate`] — topological logic simulation, used to prove the
//!   generated array multiplier actually multiplies;
//! * [`placement`] — a deterministic row placement that gives every cell a
//!   die coordinate (grid membership for the correlation model);
//! * [`generators`] — circuit generators calibrated to the published
//!   ISCAS85 timing-graph sizes, including a real 16×16 array multiplier
//!   standing in for c6288 (see `DESIGN.md` for the substitution argument);
//! * [`sequential`] — flip-flop/latch cells with statistical clock-to-q,
//!   setup and hold, plus [`RegisteredModule`] and a registered-pipeline
//!   generator for multi-stage sequential designs.
//!
//! # Example
//!
//! ```
//! use ssta_netlist::generators;
//!
//! # fn main() -> Result<(), ssta_netlist::NetlistError> {
//! let adder = generators::ripple_carry_adder(4)?;
//! assert_eq!(adder.n_inputs(), 9); // two 4-bit operands + carry-in
//! assert_eq!(adder.n_outputs(), 5); // 4-bit sum + carry-out
//! adder.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gate;
mod netlist;

pub mod generators;
pub mod library;
pub mod placement;
pub mod sequential;
pub mod simulate;

pub use error::NetlistError;
pub use gate::GateKind;
pub use library::{CellType, CellTypeId, Library, ProcessParam, Sensitivity, N_PARAMS};
pub use netlist::{Gate, Netlist, NetlistBuilder, NetlistStats, Signal};
pub use placement::{DieRect, Placement};
pub use sequential::{seq_library_90nm, RegisteredModule, SeqCellType, SeqKind, SeqLibrary};
