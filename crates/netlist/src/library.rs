//! Cell library with nominal arc delays and process-parameter sensitivities.
//!
//! The paper maps ISCAS85 to "a 90nm library from an industrial partner"
//! and varies four parameters (after Nassif, CICC'01): transistor length
//! (σ = 15.7 % of nominal), oxide thickness (5.3 %), threshold voltage
//! (4.4 %) and output load (15 %). The library here is synthetic but
//! carries the same structure: every cell arc has a nominal delay in
//! picoseconds and a dimensionless first-order sensitivity to each
//! parameter, so the delay model is
//!
//! `d = d₀ · (1 + Σ_p s_p · δ_p)`
//!
//! with `δ_p` the *relative* deviation of parameter `p` (a zero-mean
//! Gaussian whose σ is set by the variation model in `ssta-core`).

use crate::{GateKind, NetlistError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Number of varying process parameters.
pub const N_PARAMS: usize = 4;

/// The process parameters the paper varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessParam {
    /// Transistor channel length L (σ = 15.7 % nominal in the paper).
    Length,
    /// Gate-oxide thickness Tox (σ = 5.3 %).
    OxideThickness,
    /// Threshold voltage Vth (σ = 4.4 %).
    Threshold,
    /// Output load CL (σ = 15 %).
    Load,
}

impl ProcessParam {
    /// All parameters in index order.
    pub const ALL: [ProcessParam; N_PARAMS] = [
        ProcessParam::Length,
        ProcessParam::OxideThickness,
        ProcessParam::Threshold,
        ProcessParam::Load,
    ];

    /// Stable index in `0..N_PARAMS`.
    pub fn index(self) -> usize {
        match self {
            ProcessParam::Length => 0,
            ProcessParam::OxideThickness => 1,
            ProcessParam::Threshold => 2,
            ProcessParam::Load => 3,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ProcessParam::Length => "L",
            ProcessParam::OxideThickness => "Tox",
            ProcessParam::Threshold => "Vth",
            ProcessParam::Load => "CL",
        }
    }
}

impl fmt::Display for ProcessParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Dimensionless first-order delay sensitivities, one per process parameter.
///
/// `sensitivity[p]` is the relative delay change per unit relative change
/// of parameter `p`: `Δd/d₀ = s_p · Δp/p₀`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity(pub [f64; N_PARAMS]);

impl Sensitivity {
    /// Sensitivity to a specific parameter.
    pub fn get(&self, p: ProcessParam) -> f64 {
        self.0[p.index()]
    }
}

/// Identifier of a cell type within its [`Library`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellTypeId(pub u16);

/// A library cell: Boolean function, arity, per-arc nominal delays and
/// parameter sensitivities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellType {
    name: String,
    kind: GateKind,
    arity: usize,
    /// Nominal pin-to-output delay in picoseconds, one entry per input pin.
    arc_delays_ps: Vec<f64>,
    sensitivity: Sensitivity,
}

impl CellType {
    /// Creates a cell type.
    ///
    /// # Panics
    ///
    /// Panics if `arc_delays_ps.len() != arity`, if the arity is zero, or
    /// if any delay is non-positive.
    pub fn new(
        name: impl Into<String>,
        kind: GateKind,
        arc_delays_ps: Vec<f64>,
        sensitivity: Sensitivity,
    ) -> Self {
        let arity = arc_delays_ps.len();
        assert!(arity > 0, "cell must have at least one input");
        assert!(
            arc_delays_ps.iter().all(|&d| d > 0.0),
            "arc delays must be positive"
        );
        if matches!(kind, GateKind::Buf | GateKind::Not) {
            assert_eq!(arity, 1, "Buf/Not cells must have arity 1");
        }
        CellType {
            name: name.into(),
            kind,
            arity,
            arc_delays_ps,
            sensitivity,
        }
    }

    /// Cell name, e.g. `"NAND2"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Boolean function.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Number of input pins.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Nominal delay (ps) of the arc from input pin `pin` to the output.
    ///
    /// # Panics
    ///
    /// Panics if `pin >= arity`.
    pub fn arc_delay_ps(&self, pin: usize) -> f64 {
        self.arc_delays_ps[pin]
    }

    /// All arc delays.
    pub fn arc_delays_ps(&self) -> &[f64] {
        &self.arc_delays_ps
    }

    /// Process-parameter sensitivities of this cell.
    pub fn sensitivity(&self) -> &Sensitivity {
        &self.sensitivity
    }
}

/// An immutable collection of cell types indexed by [`CellTypeId`] and name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    name: String,
    cells: Vec<CellType>,
    by_name: HashMap<String, CellTypeId>,
}

impl Library {
    /// Creates a library from a list of cell types.
    ///
    /// # Panics
    ///
    /// Panics on duplicate cell names or more than `u16::MAX` cells.
    pub fn new(name: impl Into<String>, cells: Vec<CellType>) -> Self {
        assert!(cells.len() <= u16::MAX as usize, "too many cells");
        let mut by_name = HashMap::with_capacity(cells.len());
        for (i, c) in cells.iter().enumerate() {
            let prev = by_name.insert(c.name().to_owned(), CellTypeId(i as u16));
            assert!(prev.is_none(), "duplicate cell name {}", c.name());
        }
        Library {
            name: name.into(),
            cells,
            by_name,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cell types.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the library has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell(&self, id: CellTypeId) -> &CellType {
        &self.cells[id.0 as usize]
    }

    /// Looks a cell up by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the name is absent.
    pub fn find(&self, name: &str) -> Result<CellTypeId, NetlistError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownCell { name: name.into() })
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellTypeId, &CellType)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellTypeId(i as u16), c))
    }
}

/// Builds the synthetic 90 nm-style library used by every experiment.
///
/// Nominal delays are plausible ps values for a 90 nm process; later input
/// pins of a multi-input cell are slightly slower than the first (the pin
/// closest to the output transistor switches fastest). Sensitivities follow
/// first-order MOSFET intuition: delay is most sensitive to channel length,
/// then threshold voltage and load, least to oxide thickness.
///
/// # Example
///
/// ```
/// let lib = ssta_netlist::library::library_90nm();
/// let nand2 = lib.find("NAND2").unwrap();
/// assert_eq!(lib.cell(nand2).arity(), 2);
/// ```
pub fn library_90nm() -> Library {
    // (name, kind, base delay ps, per-pin spread ps, [sL, sTox, sVth, sCL])
    struct Spec(&'static str, GateKind, f64, f64, [f64; N_PARAMS]);
    let specs = [
        Spec("BUF", GateKind::Buf, 22.0, 0.0, [0.85, 0.40, 0.55, 0.45]),
        Spec("INV", GateKind::Not, 12.0, 0.0, [0.90, 0.42, 0.60, 0.50]),
        Spec("NAND2", GateKind::Nand, 18.0, 1.5, [0.88, 0.45, 0.58, 0.42]),
        Spec("NAND3", GateKind::Nand, 24.0, 1.8, [0.92, 0.47, 0.62, 0.40]),
        Spec("NAND4", GateKind::Nand, 31.0, 2.0, [0.95, 0.48, 0.65, 0.38]),
        Spec("NOR2", GateKind::Nor, 20.0, 1.6, [0.90, 0.44, 0.63, 0.44]),
        Spec("NOR3", GateKind::Nor, 28.0, 2.0, [0.94, 0.46, 0.66, 0.41]),
        Spec("NOR4", GateKind::Nor, 37.0, 2.4, [0.97, 0.47, 0.69, 0.39]),
        Spec("AND2", GateKind::And, 25.0, 1.5, [0.86, 0.43, 0.56, 0.46]),
        Spec("AND3", GateKind::And, 31.0, 1.8, [0.89, 0.45, 0.59, 0.44]),
        Spec("OR2", GateKind::Or, 27.0, 1.6, [0.87, 0.44, 0.58, 0.45]),
        Spec("OR3", GateKind::Or, 34.0, 2.0, [0.90, 0.45, 0.61, 0.43]),
        Spec("XOR2", GateKind::Xor, 38.0, 2.5, [0.93, 0.48, 0.64, 0.47]),
        Spec("XNOR2", GateKind::Xnor, 40.0, 2.5, [0.93, 0.48, 0.64, 0.47]),
    ];

    let arity_of = |name: &str| -> usize {
        match name.chars().last() {
            Some(c @ '2'..='4') => c as usize - '0' as usize,
            _ => 1,
        }
    };

    let cells = specs
        .iter()
        .map(|Spec(name, kind, base, spread, sens)| {
            let arity = arity_of(name);
            let delays = (0..arity).map(|pin| base + spread * pin as f64).collect();
            CellType::new(*name, *kind, delays, Sensitivity(*sens))
        })
        .collect();

    Library::new("synthetic-90nm", cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_90nm_is_well_formed() {
        let lib = library_90nm();
        assert!(!lib.is_empty());
        for (_, cell) in lib.iter() {
            assert!(cell.arity() >= 1 && cell.arity() <= 4);
            assert_eq!(cell.arc_delays_ps().len(), cell.arity());
            for pin in 0..cell.arity() {
                assert!(cell.arc_delay_ps(pin) > 0.0);
            }
            for p in ProcessParam::ALL {
                let s = cell.sensitivity().get(p);
                assert!(s > 0.0 && s < 2.0, "{} sens {s}", cell.name());
            }
        }
    }

    #[test]
    fn find_known_and_unknown_cells() {
        let lib = library_90nm();
        assert!(lib.find("INV").is_ok());
        assert!(lib.find("NOR2").is_ok());
        let err = lib.find("SUPERGATE99").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownCell { .. }));
    }

    #[test]
    fn arity_matches_name_suffix() {
        let lib = library_90nm();
        for (name, arity) in [("INV", 1), ("NAND2", 2), ("NAND3", 3), ("NOR4", 4)] {
            let id = lib.find(name).unwrap();
            assert_eq!(lib.cell(id).arity(), arity, "{name}");
        }
    }

    #[test]
    fn later_pins_are_slower() {
        let lib = library_90nm();
        let id = lib.find("NAND4").unwrap();
        let d = lib.cell(id).arc_delays_ps();
        for w in d.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn param_indices_are_stable() {
        for (i, p) in ProcessParam::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn cell_rejects_non_positive_delay() {
        let _ = CellType::new(
            "BAD",
            GateKind::And,
            vec![1.0, 0.0],
            Sensitivity([0.5; N_PARAMS]),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn library_rejects_duplicates() {
        let c = CellType::new("X", GateKind::Not, vec![1.0], Sensitivity([0.5; N_PARAMS]));
        let _ = Library::new("dup", vec![c.clone(), c]);
    }
}
