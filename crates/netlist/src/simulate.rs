//! Topological logic simulation.
//!
//! Because `Netlist` stores gates in topological order,
//! simulation is a single pass. This is used to functionally verify the
//! generated circuits — most importantly that the c6288 stand-in really is
//! a 16×16 multiplier.

use crate::Netlist;

/// Evaluates the netlist for one input vector and returns the output values.
///
/// # Panics
///
/// Panics if `inputs.len() != netlist.n_inputs()`.
///
/// # Example
///
/// ```
/// use ssta_netlist::{generators, simulate::simulate};
///
/// # fn main() -> Result<(), ssta_netlist::NetlistError> {
/// let adder = generators::ripple_carry_adder(2)?;
/// // 3 + 1 with carry-in 0: inputs are [a0, a1, b0, b1, cin].
/// let out = simulate(&adder, &[true, true, true, false, false]);
/// // sum = 0b100: s0 = 0, s1 = 0, cout = 1.
/// assert_eq!(out, vec![false, false, true]);
/// # Ok(())
/// # }
/// ```
pub fn simulate(netlist: &Netlist, inputs: &[bool]) -> Vec<bool> {
    assert_eq!(
        inputs.len(),
        netlist.n_inputs(),
        "input vector length mismatch"
    );
    let mut values = vec![false; netlist.n_inputs() + netlist.n_gates()];
    values[..inputs.len()].copy_from_slice(inputs);

    let mut pin_values: Vec<bool> = Vec::with_capacity(4);
    for (gi, gate) in netlist.gates().iter().enumerate() {
        pin_values.clear();
        pin_values.extend(gate.inputs.iter().map(|&s| values[netlist.signal_index(s)]));
        let kind = netlist.library().cell(gate.cell).kind();
        values[netlist.n_inputs() + gi] = kind.eval(&pin_values);
    }

    netlist
        .outputs()
        .iter()
        .map(|&s| values[netlist.signal_index(s)])
        .collect()
}

/// Converts the low `n` bits of `value` to a little-endian bool vector.
pub fn to_bits(value: u64, n: usize) -> Vec<bool> {
    (0..n).map(|i| (value >> i) & 1 == 1).collect()
}

/// Converts a little-endian bool slice back to an integer.
///
/// # Panics
///
/// Panics if `bits.len() > 64`.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "too many bits for u64");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::library_90nm;
    use crate::Signal;
    use std::sync::Arc;

    #[test]
    fn bit_conversions_round_trip() {
        for v in [0u64, 1, 5, 0xdead, u32::MAX as u64] {
            assert_eq!(from_bits(&to_bits(v, 64)), v);
        }
        assert_eq!(to_bits(5, 3), vec![true, false, true]);
    }

    #[test]
    fn simulate_small_circuit_all_vectors() {
        // out = NOR(NAND(a, b), NOT(c)) — true iff (a&b is false) is false..
        // i.e. out = (a AND b) AND c.
        let lib = Arc::new(library_90nm());
        let mut b = crate::Netlist::builder("f", lib, 3);
        let nand = b
            .add_gate_by_name("NAND2", &[Signal::Input(0), Signal::Input(1)])
            .unwrap();
        let ninv = b.add_gate_by_name("INV", &[Signal::Input(2)]).unwrap();
        let out = b.add_gate_by_name("NOR2", &[nand, ninv]).unwrap();
        b.add_output(out).unwrap();
        let n = b.finish().unwrap();

        for v in 0..8u64 {
            let bits = to_bits(v, 3);
            let got = simulate(&n, &bits)[0];
            let want = bits[0] && bits[1] && bits[2];
            assert_eq!(got, want, "vector {v:03b}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_panics() {
        let lib = Arc::new(library_90nm());
        let mut b = crate::Netlist::builder("x", lib, 2);
        let g = b
            .add_gate_by_name("NAND2", &[Signal::Input(0), Signal::Input(1)])
            .unwrap();
        b.add_output(g).unwrap();
        let n = b.finish().unwrap();
        let _ = simulate(&n, &[true]);
    }
}
