use std::fmt;

/// Errors produced when building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was created with a fan-in count different from its cell arity.
    ArityMismatch {
        /// Name of the offending cell type.
        cell: String,
        /// The arity the cell type declares.
        expected: usize,
        /// The number of input signals supplied.
        found: usize,
    },
    /// A cell type name was not found in the library.
    UnknownCell {
        /// The requested cell name.
        name: String,
    },
    /// A signal refers to a gate or input that does not exist.
    InvalidSignal {
        /// Description of where the dangling reference was found.
        context: String,
    },
    /// A gate drives nothing: it has no fanout and no primary output.
    DanglingGate {
        /// Index of the dangling gate.
        gate: usize,
    },
    /// A primary input is not connected to anything.
    UnusedInput {
        /// Index of the unused primary input.
        input: usize,
    },
    /// The netlist has no primary outputs (or no gates at all).
    Empty,
    /// A generator was asked for an unsupported configuration.
    InvalidGeneratorConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch {
                cell,
                expected,
                found,
            } => write!(f, "cell `{cell}` expects {expected} inputs, got {found}"),
            NetlistError::UnknownCell { name } => write!(f, "unknown cell type `{name}`"),
            NetlistError::InvalidSignal { context } => {
                write!(f, "invalid signal reference: {context}")
            }
            NetlistError::DanglingGate { gate } => {
                write!(f, "gate {gate} has no fanout and drives no primary output")
            }
            NetlistError::UnusedInput { input } => {
                write!(f, "primary input {input} is unused")
            }
            NetlistError::Empty => write!(f, "netlist has no gates or no primary outputs"),
            NetlistError::InvalidGeneratorConfig { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cell_name() {
        let e = NetlistError::ArityMismatch {
            cell: "NAND2".into(),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("NAND2"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<NetlistError>();
    }
}
