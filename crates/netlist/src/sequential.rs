//! Sequential cells: statistical flip-flop/latch models and registered
//! modules.
//!
//! Combinational cells carry pin-to-output arc delays; sequential cells
//! carry three *clocked* quantities instead, each with the same
//! first-order delay model `q = q₀ · (1 + Σ_p s_p · δ_p)`:
//!
//! * **clock-to-q** — the launch delay from the active clock edge to the
//!   Q output;
//! * **setup** — how long D must be stable *before* the capturing edge;
//! * **hold** — how long D must be stable *after* it.
//!
//! A [`RegisteredModule`] pairs a combinational core with one register
//! cell banked across every core input (the input-registered convention:
//! each module input port is the D pin of its register, outputs launch
//! from the shared clock). This is the netlist-side substrate the
//! sequential model extraction in `ssta-core` characterizes into
//! statistical constraint arcs.

use crate::library::{Sensitivity, N_PARAMS};
use crate::{Netlist, NetlistError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The storage-element family of a sequential cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeqKind {
    /// Edge-triggered D flip-flop: samples D on the active clock edge.
    Dff,
    /// Level-sensitive D latch: transparent while the clock is active.
    Latch,
}

impl SeqKind {
    /// Short display name (`"DFF"` / `"latch"`).
    pub fn name(self) -> &'static str {
        match self {
            SeqKind::Dff => "DFF",
            SeqKind::Latch => "latch",
        }
    }
}

impl fmt::Display for SeqKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A sequential library cell: one D input, one clock pin, one Q output,
/// with nominal clocked quantities and process-parameter sensitivities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeqCellType {
    name: String,
    kind: SeqKind,
    clock_pin: String,
    clk_to_q_ps: f64,
    setup_ps: f64,
    hold_ps: f64,
    sensitivity: Sensitivity,
}

impl SeqCellType {
    /// Creates a sequential cell type.
    ///
    /// # Panics
    ///
    /// Panics if clock-to-q, setup or hold is non-positive.
    pub fn new(
        name: impl Into<String>,
        kind: SeqKind,
        clock_pin: impl Into<String>,
        clk_to_q_ps: f64,
        setup_ps: f64,
        hold_ps: f64,
        sensitivity: Sensitivity,
    ) -> Self {
        assert!(clk_to_q_ps > 0.0, "clock-to-q must be positive");
        assert!(setup_ps > 0.0, "setup must be positive");
        assert!(hold_ps > 0.0, "hold must be positive");
        SeqCellType {
            name: name.into(),
            kind,
            clock_pin: clock_pin.into(),
            clk_to_q_ps,
            setup_ps,
            hold_ps,
            sensitivity,
        }
    }

    /// Cell name, e.g. `"DFF"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage-element family.
    pub fn kind(&self) -> SeqKind {
        self.kind
    }

    /// Name of the clock pin (`"clk"` in the synthetic library).
    pub fn clock_pin(&self) -> &str {
        &self.clock_pin
    }

    /// Nominal clock-to-q launch delay in picoseconds.
    pub fn clk_to_q_ps(&self) -> f64 {
        self.clk_to_q_ps
    }

    /// Nominal setup requirement in picoseconds.
    pub fn setup_ps(&self) -> f64 {
        self.setup_ps
    }

    /// Nominal hold requirement in picoseconds.
    pub fn hold_ps(&self) -> f64 {
        self.hold_ps
    }

    /// Process-parameter sensitivities of every clocked quantity.
    pub fn sensitivity(&self) -> &Sensitivity {
        &self.sensitivity
    }
}

/// An immutable collection of sequential cell types indexed by name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeqLibrary {
    name: String,
    cells: Vec<SeqCellType>,
}

impl SeqLibrary {
    /// Creates a sequential library from a list of cell types.
    ///
    /// # Panics
    ///
    /// Panics on duplicate cell names.
    pub fn new(name: impl Into<String>, cells: Vec<SeqCellType>) -> Self {
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert!(a.name() != b.name(), "duplicate cell name {}", a.name());
            }
        }
        SeqLibrary {
            name: name.into(),
            cells,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell types.
    pub fn cells(&self) -> &[SeqCellType] {
        &self.cells
    }

    /// Looks a sequential cell up by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if the name is absent.
    pub fn find(&self, name: &str) -> Result<&SeqCellType, NetlistError> {
        self.cells
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| NetlistError::UnknownCell { name: name.into() })
    }
}

/// Builds the synthetic 90 nm-style sequential library paired with
/// [`library_90nm`](crate::library::library_90nm).
///
/// Clock-to-q, setup and hold are plausible ps values for 90 nm
/// flip-flops; sensitivities follow the same first-order MOSFET intuition
/// as the combinational cells (channel length dominates, then threshold
/// voltage). The latch is transparent-high with a shorter setup but a
/// longer hold than the edge-triggered cells.
///
/// # Example
///
/// ```
/// let lib = ssta_netlist::sequential::seq_library_90nm();
/// let dff = lib.find("DFF").unwrap();
/// assert!(dff.clk_to_q_ps() > dff.hold_ps());
/// ```
pub fn seq_library_90nm() -> SeqLibrary {
    // (name, kind, clk→q ps, setup ps, hold ps, [sL, sTox, sVth, sCL])
    struct Spec(&'static str, SeqKind, f64, f64, f64, [f64; N_PARAMS]);
    let specs = [
        Spec(
            "DFF",
            SeqKind::Dff,
            64.0,
            42.0,
            24.0,
            [0.91, 0.44, 0.62, 0.48],
        ),
        Spec(
            "DFFX2",
            SeqKind::Dff,
            49.0,
            36.0,
            19.0,
            [0.88, 0.43, 0.58, 0.52],
        ),
        Spec(
            "DLATCH",
            SeqKind::Latch,
            55.0,
            30.0,
            31.0,
            [0.90, 0.45, 0.61, 0.47],
        ),
    ];
    let cells = specs
        .iter()
        .map(|Spec(name, kind, c2q, su, ho, sens)| {
            SeqCellType::new(*name, *kind, "clk", *c2q, *su, *ho, Sensitivity(*sens))
        })
        .collect();
    SeqLibrary::new("synthetic-90nm-seq", cells)
}

/// A register-bounded module: a combinational core whose every input is
/// fed by one register of a shared bank, all clocked by one clock pin.
///
/// The module's input ports are the D pins of the input registers; its
/// output ports are the core's combinational outputs, which launch from
/// the clock edge through clock-to-q plus the core logic. This is the
/// interface shape hierarchical sequential extraction characterizes:
/// per-input setup/hold constraint arcs, per-output clock-to-output
/// launch arcs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisteredModule {
    core: Netlist,
    register: SeqCellType,
}

impl RegisteredModule {
    /// Wraps a combinational core with an input register bank.
    ///
    /// # Errors
    ///
    /// Propagates core validation failures ([`Netlist::validate`]).
    pub fn new(core: Netlist, register: SeqCellType) -> Result<Self, NetlistError> {
        core.validate()?;
        Ok(RegisteredModule { core, register })
    }

    /// Module name (the core netlist's name).
    pub fn name(&self) -> &str {
        self.core.name()
    }

    /// The combinational core between the register bank and the outputs.
    pub fn core(&self) -> &Netlist {
        &self.core
    }

    /// The register cell banked across every core input.
    pub fn register(&self) -> &SeqCellType {
        &self.register
    }

    /// Number of registers in the input bank (= core inputs).
    pub fn n_registers(&self) -> usize {
        self.core.n_inputs()
    }

    /// Number of module outputs (= core outputs).
    pub fn n_outputs(&self) -> usize {
        self.core.n_outputs()
    }

    /// The clock pin name shared by the whole register bank.
    pub fn clock_pin(&self) -> &str {
        self.register.clock_pin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn seq_library_is_well_formed() {
        let lib = seq_library_90nm();
        assert!(!lib.cells().is_empty());
        for cell in lib.cells() {
            assert!(cell.clk_to_q_ps() > 0.0);
            assert!(cell.setup_ps() > 0.0);
            assert!(cell.hold_ps() > 0.0);
            assert_eq!(cell.clock_pin(), "clk");
            for s in cell.sensitivity().0 {
                assert!(s > 0.0 && s < 2.0);
            }
        }
        assert!(lib.find("DFF").is_ok());
        assert!(matches!(
            lib.find("SUPERFLOP"),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn faster_dff_variant_is_faster_everywhere() {
        let lib = seq_library_90nm();
        let dff = lib.find("DFF").unwrap();
        let x2 = lib.find("DFFX2").unwrap();
        assert!(x2.clk_to_q_ps() < dff.clk_to_q_ps());
        assert!(x2.setup_ps() < dff.setup_ps());
        assert!(x2.hold_ps() < dff.hold_ps());
    }

    #[test]
    fn registered_module_mirrors_core_shape() {
        let core = generators::ripple_carry_adder(4).unwrap();
        let reg = seq_library_90nm().find("DFF").unwrap().clone();
        let m = RegisteredModule::new(core, reg).unwrap();
        assert_eq!(m.n_registers(), 9);
        assert_eq!(m.n_outputs(), 5);
        assert_eq!(m.clock_pin(), "clk");
        assert_eq!(m.name(), "rca4");
    }

    #[test]
    fn registered_module_rejects_invalid_core() {
        // A core with an unused input fails validation.
        let lib = std::sync::Arc::new(crate::library::library_90nm());
        let mut b = Netlist::builder("bad", lib, 2);
        let g = b
            .add_gate_by_name("INV", &[crate::Signal::Input(0)])
            .unwrap();
        b.add_output(g).unwrap();
        let core = b.finish().unwrap();
        let reg = seq_library_90nm().find("DFF").unwrap().clone();
        assert!(RegisteredModule::new(core, reg).is_err());
    }

    #[test]
    #[should_panic(expected = "setup must be positive")]
    fn seq_cell_rejects_non_positive_setup() {
        let _ = SeqCellType::new(
            "BAD",
            SeqKind::Dff,
            "clk",
            10.0,
            0.0,
            1.0,
            Sensitivity([0.5; N_PARAMS]),
        );
    }
}
