//! Criterion micro-benchmarks of the canonical-form algebra — the kernel
//! every SSTA operation reduces to (Section II of the paper).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ssta_core::CanonicalForm;

fn forms(n_locals: usize) -> (CanonicalForm, CanonicalForm) {
    let a = CanonicalForm::from_parts(
        100.0,
        vec![1.5, 0.4, 0.3, 1.1],
        (0..n_locals)
            .map(|i| ((i * 7919) % 13) as f64 * 0.05)
            .collect(),
        0.8,
    )
    .expect("finite");
    let b = CanonicalForm::from_parts(
        101.0,
        vec![1.1, 0.5, 0.2, 1.3],
        (0..n_locals)
            .map(|i| ((i * 104729) % 11) as f64 * 0.06)
            .collect(),
        1.0,
    )
    .expect("finite");
    (a, b)
}

fn bench_canonical(c: &mut Criterion) {
    let mut group = c.benchmark_group("canonical");
    for &n in &[36usize, 144, 576] {
        let (a, b) = forms(n);
        group.bench_function(format!("sum/{n}_locals"), |bench| {
            bench.iter(|| black_box(&a).sum(black_box(&b)))
        });
        group.bench_function(format!("max/{n}_locals"), |bench| {
            bench.iter(|| black_box(&a).maximum(black_box(&b)))
        });
        group.bench_function(format!("covariance/{n}_locals"), |bench| {
            bench.iter(|| black_box(&a).covariance(black_box(&b)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_canonical
}
criterion_main!(benches);
