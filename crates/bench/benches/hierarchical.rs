//! Criterion benchmark of the Fig. 7 flow at reduced scale: design-level
//! analysis in both correlation modes versus flattened Monte Carlo — the
//! speedup that motivates hierarchical SSTA — plus a many-instance
//! scaling group over c880 arrays comparing the serial and parallel
//! assembly paths (the machine-readable variant lives in the
//! `bench_json` bin).

use criterion::{criterion_group, criterion_main, Criterion};
use ssta_bench::{characterize, four_multiplier_design, module_array_from_model};
use ssta_core::{
    analyze, analyze_with, AnalyzeOptions, CorrelationMode, ExtractOptions, SstaConfig,
};
use ssta_mc::McOptions;
use std::sync::Arc;

fn bench_hierarchical(c: &mut Criterion) {
    let design = four_multiplier_design(6);
    let mut group = c.benchmark_group("hierarchical");
    group.sample_size(10);
    group.bench_function("analyze/proposed", |b| {
        b.iter(|| analyze(&design, CorrelationMode::Proposed).expect("analysis"))
    });
    group.bench_function("analyze/global_only", |b| {
        b.iter(|| analyze(&design, CorrelationMode::GlobalOnly).expect("analysis"))
    });
    group.bench_function("flattened_mc/500_samples", |b| {
        b.iter(|| {
            ssta_mc::flat_design_delay(
                &design,
                &McOptions {
                    samples: 500,
                    ..Default::default()
                },
            )
            .expect("MC")
        })
    });
    group.finish();
}

/// Design-level assembly cost versus instance count: 4 → 64 instances of
/// one c880 model on a single die. Partition/covariance/eigen/replace
/// dominate here, which is exactly what the parallel assembly targets.
fn bench_assembly_scaling(c: &mut Criterion) {
    let ctx = characterize("c880");
    let model = Arc::new(
        ctx.extract_model(&ExtractOptions::default())
            .expect("extraction"),
    );
    let mut group = c.benchmark_group("assembly-scaling");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let design = module_array_from_model("c880", Arc::clone(&model), n, SstaConfig::paper());
        if n < 64 {
            // The serial baseline gets too slow to sample at 64.
            group.bench_function(format!("c880x{n}/serial"), |b| {
                b.iter(|| {
                    analyze_with(
                        &design,
                        CorrelationMode::Proposed,
                        &AnalyzeOptions { threads: 1 },
                    )
                    .expect("analysis")
                })
            });
        }
        group.bench_function(format!("c880x{n}/parallel"), |b| {
            b.iter(|| {
                analyze_with(
                    &design,
                    CorrelationMode::Proposed,
                    &AnalyzeOptions::default(),
                )
                .expect("analysis")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchical, bench_assembly_scaling);
criterion_main!(benches);
