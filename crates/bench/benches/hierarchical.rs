//! Criterion benchmark of the Fig. 7 flow at reduced scale: design-level
//! analysis in both correlation modes versus flattened Monte Carlo — the
//! speedup that motivates hierarchical SSTA.

use criterion::{criterion_group, criterion_main, Criterion};
use ssta_bench::four_multiplier_design;
use ssta_core::{analyze, CorrelationMode};
use ssta_mc::McOptions;

fn bench_hierarchical(c: &mut Criterion) {
    let design = four_multiplier_design(6);
    let mut group = c.benchmark_group("hierarchical");
    group.sample_size(10);
    group.bench_function("analyze/proposed", |b| {
        b.iter(|| analyze(&design, CorrelationMode::Proposed).expect("analysis"))
    });
    group.bench_function("analyze/global_only", |b| {
        b.iter(|| analyze(&design, CorrelationMode::GlobalOnly).expect("analysis"))
    });
    group.bench_function("flattened_mc/500_samples", |b| {
        b.iter(|| {
            ssta_mc::flat_design_delay(
                &design,
                &McOptions {
                    samples: 500,
                    ..Default::default()
                },
            )
            .expect("MC")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchical);
criterion_main!(benches);
