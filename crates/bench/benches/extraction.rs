//! Criterion benchmark of full timing-model extraction (Table I's `T`
//! column): criticality, pruning, repair and merging on small benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use ssta_bench::characterize;
use ssta_core::ExtractOptions;

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    for name in ["c432", "c880"] {
        let ctx = characterize(name);
        group.bench_function(name, |b| {
            b.iter(|| {
                ctx.extract_model(&ExtractOptions::default())
                    .expect("extract")
            })
        });
        // Print a Table-I-style line once per circuit for reference.
        let model = ctx
            .extract_model(&ExtractOptions::default())
            .expect("extract");
        let s = model.stats();
        println!(
            "[table1-style] {name}: Eo={} Vo={} Em={} Vm={} pe={:.0}% pv={:.0}%",
            s.original_edges,
            s.original_vertices,
            s.model_edges,
            s.model_vertices,
            100.0 * s.edge_ratio(),
            100.0 * s.vertex_ratio()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
