//! Engine benchmark: the speedup the reuse/scheduling layer buys on a
//! multi-instance hierarchical design (four instances of one multiplier,
//! the Fig. 7 topology).
//!
//! Three flows over the identical design:
//!
//! * `flat/reextract_every_instance` — the pre-engine behavior: every
//!   instance is characterized and extracted from scratch, serially;
//! * `engine/cold_cache` — fresh engine, empty caches: fingerprint
//!   deduplication collapses the four instances into one extraction;
//! * `engine/warm_store` — fresh engine over a pre-warmed persistent
//!   model library: zero extractions, models deserialized from disk.
//!
//! A fourth group compares serial vs parallel scheduling on a design
//! with three *distinct* modules, where the worker pool actually fans
//! out.

use criterion::{criterion_group, criterion_main, Criterion};
use ssta_bench::{four_model_design, four_multiplier_spec};
use ssta_core::{analyze, CorrelationMode, ExtractOptions, ModuleContext, SstaConfig};
use ssta_engine::{DesignSpec, Engine, EngineOptions};
use ssta_netlist::generators::array_multiplier;
use ssta_netlist::DieRect;
use std::sync::Arc;

const WIDTH: usize = 5;

fn bench_reuse(c: &mut Criterion) {
    let spec = four_multiplier_spec(WIDTH);
    let store_dir =
        std::env::temp_dir().join(format!("hier-ssta-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    // Pre-warm the persistent library once.
    Engine::new(SstaConfig::paper())
        .with_store(&store_dir)
        .expect("store")
        .analyze(&spec)
        .expect("warmup");

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("flat/reextract_every_instance", |b| {
        b.iter(|| {
            let config = SstaConfig::paper();
            let models: Vec<Arc<_>> = (0..4)
                .map(|_| {
                    let ctx = ModuleContext::characterize(
                        array_multiplier(WIDTH).expect("generator"),
                        &config,
                    )
                    .expect("characterize");
                    Arc::new(
                        ctx.extract_model(&ExtractOptions::default())
                            .expect("extract"),
                    )
                })
                .collect();
            let models: [Arc<_>; 4] = models.try_into().expect("four models");
            let design = four_model_design(models, WIDTH, config);
            analyze(&design, CorrelationMode::Proposed).expect("analysis")
        })
    });
    group.bench_function("engine/cold_cache", |b| {
        b.iter(|| {
            Engine::new(SstaConfig::paper())
                .analyze(&spec)
                .expect("cold analysis")
        })
    });
    group.bench_function("engine/warm_store", |b| {
        b.iter(|| {
            Engine::new(SstaConfig::paper())
                .with_store(&store_dir)
                .expect("store")
                .analyze(&spec)
                .expect("warm analysis")
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// Three distinct multipliers side by side — no shared definition, so
/// the scheduler's worker pool does real parallel work.
fn distinct_module_spec() -> DesignSpec {
    let widths = [4usize, 5, 6];
    let die = DieRect {
        width: 300.0,
        height: 100.0,
    };
    let mut b = DesignSpec::builder("tri-mul", die);
    let mut x = 0.0;
    for w in widths {
        let m = b.add_module(array_multiplier(w).expect("generator"));
        let inst = b
            .add_instance(format!("mul{w}"), m, (x, 0.0))
            .expect("place");
        for k in 0..2 * w {
            b.expose_input(vec![(inst, k)]);
            b.expose_output(inst, k);
        }
        x += 100.0;
    }
    b.finish().expect("spec")
}

fn bench_parallelism(c: &mut Criterion) {
    let spec = distinct_module_spec();
    let mut group = c.benchmark_group("engine-scheduling");
    group.sample_size(10);
    for (name, threads) in [("serial", 1usize), ("parallel", 0)] {
        group.bench_function(format!("cold/{name}"), |b| {
            b.iter(|| {
                Engine::with_options(
                    SstaConfig::paper(),
                    EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    },
                )
                .analyze(&spec)
                .expect("analysis")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reuse, bench_parallelism);
criterion_main!(benches);
