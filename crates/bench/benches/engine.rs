//! Engine benchmark: the speedup the reuse/scheduling layer buys on a
//! multi-instance hierarchical design (four instances of one multiplier,
//! the Fig. 7 topology).
//!
//! Three flows over the identical design:
//!
//! * `flat/reextract_every_instance` — the pre-engine behavior: every
//!   instance is characterized and extracted from scratch, serially;
//! * `engine/cold_cache` — fresh engine, empty caches: fingerprint
//!   deduplication collapses the four instances into one extraction;
//! * `engine/warm_store/{json,binary}` — fresh engine over a
//!   pre-warmed persistent model library: zero extractions, models
//!   deserialized from disk, once per payload codec (the binary codec
//!   exists to win exactly this path).
//!
//! A fourth group compares serial vs parallel scheduling on a design
//! with three *distinct* modules, where the worker pool actually fans
//! out.
//!
//! A fifth group (`engine-sweep`) measures the scenario-sweep batch
//! engine: 1 vs 4 vs 8 scenarios differing only in analysis-level knobs
//! (one shared module fingerprint), over a cold engine and over a
//! pre-warmed store. Single-flight dedup means the 8-scenario cold sweep
//! pays for *one* extraction plus eight assemblies — the dedup win is
//! measured here, not asserted.
//!
//! Before the timed runs, the harness prints the per-codec artifact
//! sizes for the benchmarked multiplier module and for ISCAS-85 c880
//! (the paper's headline circuit), straight from the engines' byte
//! accounting — no store re-reading.

use criterion::{criterion_group, criterion_main, Criterion};
use ssta_bench::{four_model_design, four_multiplier_spec};
use ssta_core::{analyze, CorrelationMode, ExtractOptions, ModuleContext, SstaConfig};
use ssta_engine::{Codec, DesignSpec, Engine, EngineOptions, MemoryBackend, Scenario, ScenarioSet};
use ssta_netlist::generators::{array_multiplier, iscas85};
use ssta_netlist::DieRect;
use std::sync::Arc;

const WIDTH: usize = 5;

/// Per-codec payload sizes of one module's artifact, measured through
/// the engine's own `store_bytes_written` accounting.
fn report_artifact_sizes(name: &str, netlist: &ssta_netlist::Netlist) {
    let config = SstaConfig::paper();
    // Round the die up to whole grid pitches: the module's grid extent
    // rounds partial grids up, and an instance must fit its design die.
    let placed = ssta_netlist::Placement::rows(netlist, config.cell_pitch_um).die();
    let pitch = config.grid_pitch_um();
    let die = DieRect {
        width: (placed.width / pitch).ceil().max(1.0) * pitch,
        height: (placed.height / pitch).ceil().max(1.0) * pitch,
    };
    let mut sizes = Vec::new();
    for codec in [Codec::Json, Codec::Binary] {
        let dir = std::env::temp_dir().join(format!(
            "hier-ssta-bench-sizes-{}-{name}-{}",
            std::process::id(),
            codec.name()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = DesignSpec::builder(name, die);
        let m = b.add_module(netlist.clone());
        let inst = b.add_instance("u0", m, (0.0, 0.0)).expect("place");
        for k in 0..netlist.n_inputs() {
            b.expose_input(vec![(inst, k)]);
        }
        for k in 0..netlist.n_outputs() {
            b.expose_output(inst, k);
        }
        let spec = b.finish().expect("spec");
        let mut engine = Engine::with_options(
            SstaConfig::paper(),
            EngineOptions {
                codec,
                ..EngineOptions::default()
            },
        )
        .with_store(&dir)
        .expect("store");
        let run = engine.analyze(&spec).expect("analysis");
        assert_eq!(run.stats.store_writes, 1);
        sizes.push((codec, run.stats.store_bytes_written));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let json = sizes[0].1.max(1);
    println!(
        "artifact sizes [{name}]: json {} B, binary {} B ({:.1}% of json)",
        sizes[0].1,
        sizes[1].1,
        100.0 * sizes[1].1 as f64 / json as f64
    );
}

fn bench_reuse(c: &mut Criterion) {
    let spec = four_multiplier_spec(WIDTH);
    report_artifact_sizes("mul5", &array_multiplier(WIDTH).expect("generator"));
    report_artifact_sizes("c880", &iscas85("c880").expect("generator"));

    // Pre-warm one persistent library per codec.
    let store_dir = |codec: Codec| {
        std::env::temp_dir().join(format!(
            "hier-ssta-bench-store-{}-{}",
            std::process::id(),
            codec.name()
        ))
    };
    for codec in [Codec::Json, Codec::Binary] {
        let _ = std::fs::remove_dir_all(store_dir(codec));
        Engine::with_options(
            SstaConfig::paper(),
            EngineOptions {
                codec,
                ..EngineOptions::default()
            },
        )
        .with_store(store_dir(codec))
        .expect("store")
        .analyze(&spec)
        .expect("warmup");
    }

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("flat/reextract_every_instance", |b| {
        b.iter(|| {
            let config = SstaConfig::paper();
            let models: Vec<Arc<_>> = (0..4)
                .map(|_| {
                    let ctx = ModuleContext::characterize(
                        array_multiplier(WIDTH).expect("generator"),
                        &config,
                    )
                    .expect("characterize");
                    Arc::new(
                        ctx.extract_model(&ExtractOptions::default())
                            .expect("extract"),
                    )
                })
                .collect();
            let models: [Arc<_>; 4] = models.try_into().expect("four models");
            let design = four_model_design(models, WIDTH, config);
            analyze(&design, CorrelationMode::Proposed).expect("analysis")
        })
    });
    group.bench_function("engine/cold_cache", |b| {
        b.iter(|| {
            Engine::new(SstaConfig::paper())
                .analyze(&spec)
                .expect("cold analysis")
        })
    });
    for codec in [Codec::Json, Codec::Binary] {
        group.bench_function(format!("engine/warm_store/{}", codec.name()), |b| {
            b.iter(|| {
                Engine::with_options(
                    SstaConfig::paper(),
                    EngineOptions {
                        codec,
                        ..EngineOptions::default()
                    },
                )
                .with_store(store_dir(codec))
                .expect("store")
                .analyze(&spec)
                .expect("warm analysis")
            })
        });
    }
    group.finish();
    for codec in [Codec::Json, Codec::Binary] {
        let _ = std::fs::remove_dir_all(store_dir(codec));
    }
}

/// Three distinct multipliers side by side — no shared definition, so
/// the scheduler's worker pool does real parallel work.
fn distinct_module_spec() -> DesignSpec {
    let widths = [4usize, 5, 6];
    let die = DieRect {
        width: 300.0,
        height: 100.0,
    };
    let mut b = DesignSpec::builder("tri-mul", die);
    let mut x = 0.0;
    for w in widths {
        let m = b.add_module(array_multiplier(w).expect("generator"));
        let inst = b
            .add_instance(format!("mul{w}"), m, (x, 0.0))
            .expect("place");
        for k in 0..2 * w {
            b.expose_input(vec![(inst, k)]);
            b.expose_output(inst, k);
        }
        x += 100.0;
    }
    b.finish().expect("spec")
}

fn bench_parallelism(c: &mut Criterion) {
    let spec = distinct_module_spec();
    let mut group = c.benchmark_group("engine-scheduling");
    group.sample_size(10);
    for (name, threads) in [("serial", 1usize), ("parallel", 0)] {
        group.bench_function(format!("cold/{name}"), |b| {
            b.iter(|| {
                Engine::with_options(
                    SstaConfig::paper(),
                    EngineOptions {
                        threads,
                        ..EngineOptions::default()
                    },
                )
                .analyze(&spec)
                .expect("analysis")
            })
        });
    }
    group.finish();
}

/// `n` scenarios differing only in analysis-level knobs (correlation
/// mode, yield target): one shared module fingerprint, so however many
/// scenarios the sweep runs, it performs exactly one extraction.
fn sweep_set(n: usize) -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for i in 0..n {
        let mut s = Scenario::new(format!("s{i}")).with_yield_target(800.0 + 10.0 * i as f64);
        if i % 2 == 1 {
            s = s.with_mode(CorrelationMode::GlobalOnly);
        }
        set.push(s);
    }
    set
}

fn bench_scenario_sweep(c: &mut Criterion) {
    let spec = four_multiplier_spec(WIDTH);

    // Pre-warm a shared in-memory library for the warm-store flavor.
    let warm_backend = std::sync::Arc::new(MemoryBackend::new());
    Engine::new(SstaConfig::paper())
        .with_backend(std::sync::Arc::clone(&warm_backend))
        .analyze(&spec)
        .expect("warm the store");

    let mut group = c.benchmark_group("engine-sweep");
    group.sample_size(10);
    for n in [1usize, 4, 8] {
        let set = sweep_set(n);
        group.bench_function(format!("cold/{n}_scenarios"), |b| {
            b.iter(|| {
                Engine::new(SstaConfig::paper())
                    .analyze_batch(&spec, &set)
                    .expect("cold sweep")
            })
        });
        let set = sweep_set(n);
        group.bench_function(format!("warm_store/{n}_scenarios"), |b| {
            b.iter(|| {
                Engine::new(SstaConfig::paper())
                    .with_backend(std::sync::Arc::clone(&warm_backend))
                    .analyze_batch(&spec, &set)
                    .expect("warm sweep")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reuse,
    bench_parallelism,
    bench_scenario_sweep
);
criterion_main!(benches);
