//! Criterion benchmark of the all-pairs edge-criticality engine (the
//! dominant extraction cost; Fig. 6's underlying computation).

use criterion::{criterion_group, criterion_main, Criterion};
use ssta_bench::characterize;
use ssta_core::criticality::{edge_criticalities, CriticalityOptions};

fn bench_criticality(c: &mut Criterion) {
    let mut group = c.benchmark_group("criticality");
    group.sample_size(10);
    for name in ["c432", "c499"] {
        let ctx = characterize(name);
        group.bench_function(format!("{name}/all_pairs"), |b| {
            b.iter(|| {
                edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default())
                    .expect("criticality")
            })
        });
        group.bench_function(format!("{name}/single_thread"), |b| {
            b.iter(|| {
                edge_criticalities(
                    ctx.graph(),
                    &ctx.zero(),
                    &CriticalityOptions {
                        threads: 1,
                        ..Default::default()
                    },
                )
                .expect("criticality")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_criticality);
criterion_main!(benches);
