//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Binaries (run with `cargo run -p ssta-bench --release --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — timing-model extraction results |
//! | `fig6` | Fig. 6 — edge-criticality histogram of c7552 |
//! | `fig7` | Fig. 7 — hierarchical CDFs (proposed / global-only / MC) |
//! | `speedup` | §VI-B — hierarchical analysis vs flattened-MC runtime |
//! | `ablation_delta` | δ sweep: model size vs accuracy |
//! | `ablation_grid` | grid-pitch sweep: components vs accuracy/runtime |
//! | `corner_vs_ssta` | §I motivation — corner pessimism vs SSTA quantiles |
//!
//! Environment knobs: `SSTA_MC_SAMPLES` (default 10000),
//! `SSTA_BENCHMARKS` (comma-separated circuit filter, default all),
//! `SSTA_MUL_WIDTH` (multiplier width for Fig. 7, default 16).

#![forbid(unsafe_code)]

use ssta_core::{
    extract_registered, CorrelationMode, Design, DesignBuilder, ExtractOptions, ModuleContext,
    SstaConfig, TimingModel,
};
use ssta_mc::McOptions;
use ssta_netlist::generators::{array_multiplier, iscas85, registered_pipeline, ISCAS85_SPECS};
use ssta_netlist::DieRect;
use std::sync::Arc;
use std::time::Instant;

/// Monte Carlo sample count, overridable via `SSTA_MC_SAMPLES`.
pub fn mc_samples() -> usize {
    std::env::var("SSTA_MC_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

/// Benchmark-name filter from `SSTA_BENCHMARKS` (`None` = all).
pub fn benchmark_filter() -> Option<Vec<String>> {
    std::env::var("SSTA_BENCHMARKS")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_owned()).collect())
}

/// Multiplier width for the Fig. 7 design, overridable via
/// `SSTA_MUL_WIDTH` (16 = the paper's c6288).
pub fn multiplier_width() -> usize {
    std::env::var("SSTA_MUL_WIDTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

/// The benchmark names in paper order, after filtering.
pub fn selected_benchmarks() -> Vec<&'static str> {
    let filter = benchmark_filter();
    ISCAS85_SPECS
        .iter()
        .map(|s| s.name)
        .filter(|n| filter.as_ref().is_none_or(|f| f.iter().any(|x| x == n)))
        .collect()
}

/// One measured row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// Original edges `Eo`.
    pub eo: usize,
    /// Original vertices `Vo`.
    pub vo: usize,
    /// Model edges `Em`.
    pub em: usize,
    /// Model vertices `Vm`.
    pub vm: usize,
    /// `Em/Eo`.
    pub pe: f64,
    /// `Vm/Vo`.
    pub pv: f64,
    /// Max relative mean error vs MC.
    pub merr: f64,
    /// Max relative σ error vs MC.
    pub verr: f64,
    /// Extraction wall-clock seconds.
    pub t_seconds: f64,
}

/// Characterizes one benchmark under the paper configuration.
pub fn characterize(name: &str) -> ModuleContext {
    let netlist = iscas85(name).expect("known benchmark");
    ModuleContext::characterize(netlist, &SstaConfig::paper()).expect("characterization")
}

/// Runs the full Table I pipeline for one circuit: extract a model, then
/// validate its delay matrix against Monte Carlo of the original netlist.
pub fn table1_row(name: &str, samples: usize) -> Table1Row {
    let ctx = characterize(name);
    let started = Instant::now();
    let model = ctx
        .extract_model(&ExtractOptions::default())
        .expect("extraction");
    let t_seconds = started.elapsed().as_secs_f64();

    let mc = ssta_mc::module_delay_matrix(
        &ctx,
        &McOptions {
            samples,
            ..Default::default()
        },
    )
    .expect("module MC");
    let matrix = model.delay_matrix().expect("model matrix");
    let err = ssta_mc::model_vs_mc(&matrix, &mc);

    let stats = model.stats();
    Table1Row {
        name: name.to_owned(),
        eo: stats.original_edges,
        vo: stats.original_vertices,
        em: stats.model_edges,
        vm: stats.model_vertices,
        pe: stats.edge_ratio(),
        pv: stats.vertex_ratio(),
        merr: err.merr,
        verr: err.verr,
        t_seconds,
    }
}

/// The paper's Table I reference values `(name, Eo, Vo, Em, Vm, merr, verr)`.
pub const PAPER_TABLE1: [(&str, usize, usize, usize, usize, f64, f64); 10] = [
    ("c432", 336, 196, 45, 46, 0.0023, 0.0096),
    ("c499", 408, 243, 176, 99, 0.0014, 0.0094),
    ("c880", 729, 443, 249, 115, 0.0056, 0.003),
    ("c1355", 1064, 587, 143, 99, 0.0044, 0.0026),
    ("c1908", 1498, 913, 264, 93, 0.0082, 0.0147),
    ("c2670", 2076, 1426, 410, 335, 0.0026, 0.0128),
    ("c3540", 2939, 1719, 440, 141, 0.0049, 0.0072),
    ("c5315", 4386, 2485, 966, 424, 0.0072, 0.0147),
    ("c6288", 4800, 2448, 429, 188, 0.0103, 0.016),
    ("c7552", 6144, 3719, 1073, 546, 0.0121, 0.0158),
];

/// `n` instances of one pre-characterized ISCAS-85 module tiled on a
/// single die (near-square array), with each instance's first
/// `min(outputs, inputs)` ports chained to the next instance — the
/// many-instance workload that stresses design-level assembly
/// (partition / covariance / PCA eigensolve / variable replacement),
/// whose cost grows with the design grid count rather than with module
/// internals.
pub fn module_array_design(name: &str, n: usize) -> Design {
    let ctx = characterize(name);
    let model = Arc::new(
        ctx.extract_model(&ExtractOptions::default())
            .expect("extraction"),
    );
    module_array_from_model(name, model, n, SstaConfig::paper())
}

/// As [`module_array_design`] but reusing a pre-extracted model, so
/// sweeps over `n` pay the characterization exactly once.
pub fn module_array_from_model(
    name: &str,
    model: Arc<TimingModel>,
    n: usize,
    config: SstaConfig,
) -> Design {
    assert!(n >= 1, "need at least one instance");
    let (mw, mh) = model.geometry().extent_um();
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let die = DieRect {
        width: cols as f64 * mw,
        height: rows as f64 * mh,
    };
    let mut b = DesignBuilder::new(format!("{name}-array-{n}"), die, config);
    let ids: Vec<usize> = (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            b.add_instance(
                format!("u{i}"),
                Arc::clone(&model),
                None,
                (c as f64 * mw, r as f64 * mh),
            )
            .expect("instance fits tiled die")
        })
        .collect();
    let chained = model.n_outputs().min(model.n_inputs());
    for w in ids.windows(2) {
        for k in 0..chained {
            b.connect(w[0], k, w[1], k, 0.0).expect("chain wire");
        }
    }
    // Unchained inputs become design PIs; the first instance exposes all
    // of its inputs.
    for k in 0..model.n_inputs() {
        b.expose_input(vec![(ids[0], k)]).expect("pi");
    }
    for &id in &ids[1..] {
        for k in chained..model.n_inputs() {
            b.expose_input(vec![(id, k)]).expect("pi");
        }
    }
    for k in 0..model.n_outputs() {
        b.expose_output(*ids.last().expect("nonempty"), k)
            .expect("po");
    }
    b.finish().expect("array design")
}

/// As [`module_array_design`] but as a pre-extraction
/// [`ssta_engine::DesignSpec`] — the serving-workload shape: `n` chained
/// instances of one ISCAS-85 module, die sized from the module geometry
/// alone, so building the spec performs no characterization and the
/// engine (or server) decides where the model comes from.
pub fn module_array_spec(name: &str, n: usize) -> ssta_engine::DesignSpec {
    assert!(n >= 1, "need at least one instance");
    let config = SstaConfig::paper();
    let netlist = iscas85(name).expect("known benchmark");
    let placement = ssta_netlist::Placement::rows(&netlist, config.cell_pitch_um);
    let geometry = ssta_core::GridGeometry::from_die(placement.die(), config.grid_pitch_um());
    let (mw, mh) = geometry.extent_um();
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let die = DieRect {
        width: cols as f64 * mw,
        height: rows as f64 * mh,
    };
    let n_in = netlist.n_inputs();
    let n_out = netlist.n_outputs();
    let mut b = ssta_engine::DesignSpec::builder(format!("{name}-array-{n}-spec"), die);
    let m = b.add_module(netlist);
    let ids: Vec<usize> = (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            b.add_instance(format!("u{i}"), m, (c as f64 * mw, r as f64 * mh))
                .expect("instance fits tiled die")
        })
        .collect();
    let chained = n_out.min(n_in);
    for w in ids.windows(2) {
        for k in 0..chained {
            b.connect(w[0], k, w[1], k);
        }
    }
    for k in 0..n_in {
        b.expose_input(vec![(ids[0], k)]);
    }
    for &id in &ids[1..] {
        for k in chained..n_in {
            b.expose_input(vec![(id, k)]);
        }
    }
    for k in 0..n_out {
        b.expose_output(*ids.last().expect("nonempty"), k);
    }
    b.finish().expect("array spec")
}

/// Characterizes and extracts one registered model per pipeline stage
/// (core names as accepted by `generators::registered_pipeline`: ISCAS-85
/// names or `rca<w>`/`parity<n>`), returning the models plus the total
/// characterize-and-extract wall-clock — the cost a sequential scaling
/// row reports as `extract_seconds`.
pub fn registered_pipeline_models(
    cores: &[&str],
    register: &str,
    config: &SstaConfig,
) -> (Vec<Arc<TimingModel>>, f64) {
    let stages = registered_pipeline(cores, register).expect("pipeline generator");
    let started = Instant::now();
    let models = stages
        .iter()
        .map(|stage| {
            let ctx =
                ModuleContext::characterize(stage.core().clone(), config).expect("characterize");
            Arc::new(
                extract_registered(&ctx, stage.register(), &ExtractOptions::default())
                    .expect("registered extraction"),
            )
        })
        .collect();
    (models, started.elapsed().as_secs_f64())
}

/// Chains registered stage models into one design: stage geometries are
/// abutted left to right, stage `k` outputs feed stage `k+1` register D
/// pins round-robin, the first stage exposes the design PIs and the last
/// the POs — the sequential analogue of [`module_array_from_model`].
pub fn registered_chain_design(
    name: &str,
    models: &[Arc<TimingModel>],
    config: SstaConfig,
) -> Design {
    assert!(!models.is_empty(), "need at least one stage");
    let widths: Vec<f64> = models.iter().map(|m| m.geometry().extent_um().0).collect();
    let height = models
        .iter()
        .map(|m| m.geometry().extent_um().1)
        .fold(0.0f64, f64::max);
    let die = DieRect {
        width: widths.iter().sum(),
        height,
    };
    let mut b = DesignBuilder::new(name, die, config);
    let mut ids = Vec::new();
    let mut x = 0.0;
    for (k, model) in models.iter().enumerate() {
        let id = b
            .add_instance(format!("s{k}"), Arc::clone(model), None, (x, 0.0))
            .expect("stage fits abutted die");
        x += widths[k];
        ids.push(id);
    }
    for k in 0..models.len() - 1 {
        let n_out = models[k].n_outputs();
        for p in 0..models[k + 1].n_inputs() {
            b.connect(ids[k], p % n_out, ids[k + 1], p, 0.0)
                .expect("stage wire");
        }
    }
    for p in 0..models[0].n_inputs() {
        b.expose_input(vec![(ids[0], p)]).expect("pi");
    }
    for j in 0..models.last().expect("nonempty").n_outputs() {
        b.expose_output(*ids.last().expect("nonempty"), j)
            .expect("po");
    }
    b.finish().expect("pipeline design")
}

/// Builds the Fig. 7 experimental design: four `width×width` multipliers
/// in two columns, first-column outputs cross-connected to second-column
/// inputs, all modules abutted so the spatial correlation is maximal.
pub fn four_multiplier_design(width: usize) -> Design {
    let config = SstaConfig::paper();
    let netlist = array_multiplier(width).expect("multiplier generator");
    let ctx = Arc::new(ModuleContext::characterize(netlist, &config).expect("characterize"));
    let model = Arc::new(
        ctx.extract_model(&ExtractOptions::default())
            .expect("extract"),
    );
    four_instance_design(ctx, model, width, config)
}

/// The Fig. 7 experiment as a pre-extraction [`ssta_engine::DesignSpec`]:
/// the engine input equivalent of [`four_multiplier_design`]. The die is
/// sized from the module placement alone, so building the spec performs
/// no characterization.
pub fn four_multiplier_spec(width: usize) -> ssta_engine::DesignSpec {
    let config = SstaConfig::paper();
    let netlist = array_multiplier(width).expect("multiplier generator");
    let placement = ssta_netlist::Placement::rows(&netlist, config.cell_pitch_um);
    let geometry = ssta_core::GridGeometry::from_die(placement.die(), config.grid_pitch_um());
    let (mw, mh) = geometry.extent_um();
    let die = DieRect {
        width: 2.0 * mw,
        height: 2.0 * mh,
    };
    let mut b = ssta_engine::DesignSpec::builder(format!("quad-mul{width}-spec"), die);
    let m = b.add_module(netlist);
    let m0 = b.add_instance("m0", m, (0.0, 0.0)).expect("place m0");
    let m1 = b.add_instance("m1", m, (0.0, mh)).expect("place m1");
    let m2 = b.add_instance("m2", m, (mw, 0.0)).expect("place m2");
    let m3 = b.add_instance("m3", m, (mw, mh)).expect("place m3");
    for k in 0..width {
        b.connect(m0, k, m2, k);
        b.connect(m1, k, m2, width + k);
        b.connect(m0, width + k, m3, k);
        b.connect(m1, width + k, m3, width + k);
    }
    for inst in [m0, m1] {
        for k in 0..2 * width {
            b.expose_input(vec![(inst, k)]);
        }
    }
    for inst in [m2, m3] {
        for k in 0..2 * width {
            b.expose_output(inst, k);
        }
    }
    b.finish().expect("spec")
}

/// As [`four_multiplier_design`] but with one (possibly distinct) model
/// per instance — the shape of the pre-engine flow that re-extracts every
/// instance.
pub fn four_model_design(
    models: [Arc<TimingModel>; 4],
    width: usize,
    config: SstaConfig,
) -> Design {
    let (mw, mh) = models[0].geometry().extent_um();
    let die = DieRect {
        width: 2.0 * mw,
        height: 2.0 * mh,
    };
    let mut b = DesignBuilder::new(format!("quad-mul{width}"), die, config);
    let [model0, model1, model2, model3] = models;
    let m0 = b
        .add_instance("m0", model0, None, (0.0, 0.0))
        .expect("place m0");
    let m1 = b
        .add_instance("m1", model1, None, (0.0, mh))
        .expect("place m1");
    let m2 = b
        .add_instance("m2", model2, None, (mw, 0.0))
        .expect("place m2");
    let m3 = b
        .add_instance("m3", model3, None, (mw, mh))
        .expect("place m3");
    for k in 0..width {
        b.connect(m0, k, m2, k, 0.0).expect("wire");
        b.connect(m1, k, m2, width + k, 0.0).expect("wire");
        b.connect(m0, width + k, m3, k, 0.0).expect("wire");
        b.connect(m1, width + k, m3, width + k, 0.0).expect("wire");
    }
    for inst in [m0, m1] {
        for k in 0..2 * width {
            b.expose_input(vec![(inst, k)]).expect("pi");
        }
    }
    for inst in [m2, m3] {
        for k in 0..2 * width {
            b.expose_output(inst, k).expect("po");
        }
    }
    b.finish().expect("design")
}

/// As [`four_multiplier_design`] but reusing a pre-extracted model.
pub fn four_instance_design(
    ctx: Arc<ModuleContext>,
    model: Arc<TimingModel>,
    width: usize,
    config: SstaConfig,
) -> Design {
    let (mw, mh) = model.geometry().extent_um();
    let die = DieRect {
        width: 2.0 * mw,
        height: 2.0 * mh,
    };
    let mut b = DesignBuilder::new(format!("quad-mul{width}"), die, config);
    // Column 1: m0 (bottom), m1 (top); column 2: m2 (bottom), m3 (top).
    let m0 = b
        .add_instance("m0", model.clone(), Some(ctx.clone()), (0.0, 0.0))
        .expect("place m0");
    let m1 = b
        .add_instance("m1", model.clone(), Some(ctx.clone()), (0.0, mh))
        .expect("place m1");
    let m2 = b
        .add_instance("m2", model.clone(), Some(ctx.clone()), (mw, 0.0))
        .expect("place m2");
    let m3 = b
        .add_instance("m3", model.clone(), Some(ctx), (mw, mh))
        .expect("place m3");

    // Cross-connection: m0's low product half feeds m2's `a` operand and
    // m3's gets m0's high half; m1 symmetric on the `b` operands.
    for k in 0..width {
        b.connect(m0, k, m2, k, 0.0).expect("wire");
        b.connect(m1, k, m2, width + k, 0.0).expect("wire");
        b.connect(m0, width + k, m3, k, 0.0).expect("wire");
        b.connect(m1, width + k, m3, width + k, 0.0).expect("wire");
    }
    // Design PIs drive all of m0's and m1's inputs.
    for inst in [m0, m1] {
        for k in 0..2 * width {
            b.expose_input(vec![(inst, k)]).expect("pi");
        }
    }
    // Design POs observe all of m2's and m3's product bits.
    for inst in [m2, m3] {
        for k in 0..2 * width {
            b.expose_output(inst, k).expect("po");
        }
    }
    b.finish().expect("design")
}

/// Formats a ratio as a percentage with the paper's precision.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}

/// Formats an error as a percentage with two decimals.
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Runs the hierarchical analysis of a design in both modes and returns
/// `(proposed, global_only)`.
pub fn analyze_both(design: &Design) -> (ssta_core::DesignTiming, ssta_core::DesignTiming) {
    let proposed =
        ssta_core::analyze(design, CorrelationMode::Proposed).expect("proposed analysis");
    let global =
        ssta_core::analyze(design, CorrelationMode::GlobalOnly).expect("global-only analysis");
    (proposed, global)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_calibration_specs() {
        for (name, eo, vo, ..) in PAPER_TABLE1 {
            let spec = ssta_netlist::generators::iscas::spec(name).unwrap();
            if !spec.structural {
                assert_eq!(spec.pin_connections, eo, "{name}");
                assert_eq!(spec.gates + spec.inputs, vo, "{name}");
            }
        }
    }

    #[test]
    fn spec_and_design_agree() {
        // The engine spec route must reproduce the direct route exactly.
        let design = four_multiplier_design(4);
        let direct = ssta_core::analyze(&design, CorrelationMode::Proposed).expect("direct");
        let spec = four_multiplier_spec(4);
        let mut engine = ssta_engine::Engine::new(SstaConfig::paper());
        let run = engine.analyze(&spec).expect("engine");
        assert_eq!(run.stats.instances, 4);
        assert_eq!(run.stats.extractions, 1);
        assert_eq!(run.timing.po_arrivals, direct.po_arrivals);
    }

    #[test]
    fn small_quad_design_builds_and_analyzes() {
        let design = four_multiplier_design(4);
        assert_eq!(design.instances().len(), 4);
        assert_eq!(design.pi_bindings().len(), 16);
        assert_eq!(design.po_sources().len(), 16);
        let (prop, glob) = analyze_both(&design);
        assert!(prop.delay.std_dev() > glob.delay.std_dev());
    }

    #[test]
    fn env_helpers_have_sane_defaults() {
        // Do not set the env vars here (tests run in parallel); just check
        // the defaults parse.
        assert!(mc_samples() >= 1);
        assert!(multiplier_width() >= 2);
        assert!(!selected_benchmarks().is_empty());
    }
}
