//! Machine-readable model-store benchmark across the backend stack.
//!
//! Emits `BENCH_store.json` (override the path with `SSTA_BENCH_OUT`)
//! with one row per backend configuration:
//!
//! * **memory** — the in-process baseline;
//! * **fs** — the sharded on-disk store;
//! * **tiered-memory** — LRU hot tier over a memory cold tier;
//! * **remote-faults** — the retrying remote backend over a transport
//!   injecting transient failures and wire corruption;
//! * **tiered-remote-faults** — the full fault-tolerant stack.
//!
//! Each row populates N envelope artifacts, then reads every key twice:
//! the first pass is the **cold** hit latency (tiered backends promote
//! here), the second the **warm** one (tiered backends serve from the
//! hot tier — asserted). Fault rows additionally report retries and
//! degradations (reads that missed or failed despite the artifact
//! existing) per 1 000 operations; every row asserts that every byte
//! served is byte-identical to what was written — faults change
//! latency and counters, never data.
//!
//! `--tiny` (or `SSTA_BENCH_PROFILE=tiny`) shrinks the key count for CI
//! smoke; the tiny profile defaults to its own gitignored output path.
//!
//! Run with `cargo run -p ssta-bench --release --bin bench_store`.

use serde::Serialize;
use ssta_engine::store::encode_envelope;
use ssta_engine::{
    Codec, FaultInjectingBackend, FaultPlan, FsBackend, MemoryBackend, NetworkModel, RemoteBackend,
    RetryPolicy, StorageBackend, TieredBackend, TieredOptions,
};
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Report {
    schema: u32,
    profile: String,
    /// Artifacts stored per backend row.
    keys: usize,
    /// Envelope payload size in bytes.
    payload_bytes: usize,
    backends: Vec<BackendRow>,
}

#[derive(Serialize)]
struct BackendRow {
    name: String,
    /// Mean microseconds per put while populating.
    populate_us_per_op: f64,
    /// Mean microseconds per get on the first full read pass.
    cold_get_us_per_op: f64,
    /// Mean microseconds per get on the second full read pass.
    warm_get_us_per_op: f64,
    /// Transport retries per 1 000 operations (fault rows).
    retries_per_1k_ops: f64,
    /// Reads that missed or failed despite the artifact existing, per
    /// 1 000 operations — each one is a degradation the engine would
    /// absorb by re-extracting.
    degraded_per_1k_ops: f64,
    /// Faults the plan injected (fault rows).
    faults_injected: u64,
    /// Artifacts quarantined: reads whose every retry saw corrupt
    /// bytes. The injected corruption is wire-level, so these are
    /// unlucky keys whose re-reads were all hit again — rare, and each
    /// shows up as a degradation on later passes.
    quarantined: u64,
    /// Hot-tier hits (tiered rows).
    hot_hits: u64,
    /// Cold-tier circuit-breaker trips.
    breaker_trips: u64,
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny")
        || std::env::var("SSTA_BENCH_PROFILE").is_ok_and(|v| v == "tiny");
    let (keys, payload_bytes, wire_latency) = if tiny {
        (64, 2048, Duration::ZERO)
    } else {
        (1000, 8192, Duration::from_micros(25))
    };
    println!("store workload: {keys} keys x {payload_bytes} B payloads");

    let fs_dir = std::env::temp_dir().join(format!("hier-ssta-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fs_dir);

    let plan = FaultPlan {
        get_error_rate: 0.10,
        put_error_rate: 0.10,
        corrupt_read_rate: 0.02,
        seed: 0xBE7C_5709,
        ..FaultPlan::none()
    };
    let policy = RetryPolicy {
        base_delay: Duration::from_micros(50),
        max_delay: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    let network = NetworkModel {
        latency: wire_latency,
        ..NetworkModel::perfect()
    };
    let remote_faulty = || {
        RemoteBackend::new(
            FaultInjectingBackend::new(MemoryBackend::new(), plan),
            network,
            policy,
        )
    };

    let rows = vec![
        run("memory", &MemoryBackend::new(), keys, payload_bytes, false),
        run(
            "fs",
            &FsBackend::open(&fs_dir).expect("open fs backend"),
            keys,
            payload_bytes,
            false,
        ),
        run(
            "tiered-memory",
            &TieredBackend::with_defaults(MemoryBackend::new()),
            keys,
            payload_bytes,
            true,
        ),
        run(
            "remote-faults",
            &remote_faulty(),
            keys,
            payload_bytes,
            false,
        ),
        run(
            "tiered-remote-faults",
            // A hot tier big enough for the whole working set: the warm
            // pass must never touch the faulty wire.
            &TieredBackend::new(remote_faulty(), TieredOptions::default()),
            keys,
            payload_bytes,
            true,
        ),
    ];
    let _ = std::fs::remove_dir_all(&fs_dir);

    let default_out = if tiny {
        "BENCH_store.tiny.json"
    } else {
        "BENCH_store.json"
    };
    let out = std::env::var("SSTA_BENCH_OUT").unwrap_or_else(|_| default_out.into());
    let report = Report {
        schema: 1,
        profile: if tiny { "tiny" } else { "full" }.into(),
        keys,
        payload_bytes,
        backends: rows,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("wrote {out}");
}

/// One content-address-shaped key per artifact index.
fn key_for(index: usize) -> String {
    format!("{:064x}", (index as u128 + 1) * 0x9e37_79b9_7f4a_7c15)
}

/// A deterministic envelope artifact: verification on the remote path
/// must pass, so the payload rides in a real SSTM envelope.
fn artifact_for(index: usize, payload_bytes: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..payload_bytes)
        .map(|i| (i as u64).wrapping_mul(index as u64 + 1) as u8)
        .collect();
    encode_envelope(Codec::Binary, &payload)
}

fn run<B: StorageBackend>(
    name: &str,
    backend: &B,
    keys: usize,
    payload_bytes: usize,
    tiered: bool,
) -> BackendRow {
    let mut degraded = 0u64;
    let mut ops = 0u64;

    let started = Instant::now();
    for index in 0..keys {
        ops += 1;
        if backend
            .put(&key_for(index), &artifact_for(index, payload_bytes))
            .is_err()
        {
            // A put that fails even after retries: the engine would keep
            // the model in session memory and carry on. Count and move
            // on — the cold pass below then sees a miss for this key.
            degraded += 1;
        }
    }
    let populate = started.elapsed();

    let mut read_pass = |label: &str| {
        let started = Instant::now();
        for index in 0..keys {
            ops += 1;
            match backend.get(&key_for(index)) {
                Ok(Some(bytes)) => assert_eq!(
                    bytes,
                    artifact_for(index, payload_bytes),
                    "{name}/{label}: served bytes drifted for key {index}"
                ),
                // A miss (put degraded earlier, or quarantine) or a
                // read that exhausted its retries: a degradation.
                Ok(None) | Err(_) => degraded += 1,
            }
        }
        started.elapsed()
    };
    let cold = read_pass("cold");
    let warm = read_pass("warm");

    let health = backend.health();
    if tiered {
        assert!(
            health.hot_hits as usize >= keys.saturating_sub(degraded as usize),
            "{name}: the warm pass must serve from the hot tier"
        );
    }

    let per_op = |d: Duration| d.as_secs_f64() * 1e6 / keys as f64;
    let per_1k = |n: u64| n as f64 * 1000.0 / ops as f64;
    let row = BackendRow {
        name: name.into(),
        populate_us_per_op: per_op(populate),
        cold_get_us_per_op: per_op(cold),
        warm_get_us_per_op: per_op(warm),
        retries_per_1k_ops: per_1k(health.retries),
        degraded_per_1k_ops: per_1k(degraded),
        faults_injected: health.faults_injected,
        quarantined: health.quarantined,
        hot_hits: health.hot_hits,
        breaker_trips: health.breaker_trips,
    };
    println!(
        "{name}: populate {:.1} us/op, cold get {:.1} us/op, warm get {:.1} us/op, \
         {:.1} retries/1k, {:.1} degraded/1k",
        row.populate_us_per_op,
        row.cold_get_us_per_op,
        row.warm_get_us_per_op,
        row.retries_per_1k_ops,
        row.degraded_per_1k_ops
    );
    row
}
