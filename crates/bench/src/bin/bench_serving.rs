//! Machine-readable serving-layer benchmark.
//!
//! Emits `BENCH_serving.json` (override the path with `SSTA_BENCH_OUT`)
//! with five sections over one module-array workload:
//!
//! * **closed_loop** — C client threads, each submitting and waiting
//!   sequentially, against a cold store (first section extracts) and a
//!   warm one (everything served from cache). Asserts every request
//!   completed, cold extractions stayed ≤ the distinct fingerprint
//!   count (concurrent identical requests coalesce), warm runs extract
//!   nothing, and the warm p50 service time beats the slowest cold
//!   request.
//! * **open_loop** — every request submitted up front, workers drain;
//!   measures queue wait under backlog.
//! * **admission** — a deliberate burst past the queue bound against a
//!   paused server: the surplus is rejected `queue_full` immediately
//!   (no deadlock, no loss), the admitted prefix completes after
//!   resume.
//! * **shedding** — a deadline request submitted behind a backlog whose
//!   estimated wait exceeds the budget: shed at admission, zero CPU
//!   spent.
//! * **cancellation** — of two identical requests staged on a paused
//!   server, one is cancelled before resume: it terminates `cancelled`
//!   with zero service time while the identical survivor completes,
//!   extracting once.
//!
//! Every section asserts `lost() == 0`: each submitted request got
//! exactly one terminal response.
//!
//! `--tiny` (or `SSTA_BENCH_PROFILE=tiny`) shrinks sizes for CI smoke;
//! the tiny profile defaults to its own gitignored output path.
//!
//! Run with `cargo run -p ssta-bench --release --bin bench_serving`.

use serde::Serialize;
use ssta_bench::module_array_spec;
use ssta_core::SstaConfig;
use ssta_engine::{DesignSpec, EngineOptions, MemoryBackend, ScenarioSet};
use ssta_serve::{AnalyzeRequest, AnalyzeResponse, ServeOptions, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct Report {
    schema: u32,
    profile: String,
    workers: usize,
    /// The pool size the profile's `workers` request resolved to
    /// (`effective_threads`), which is what actually served requests.
    effective_threads: usize,
    module: String,
    instances: usize,
    distinct_fingerprints: usize,
    closed_loop: Vec<ClosedLoopPoint>,
    open_loop: OpenLoop,
    admission: Admission,
    shedding: Shedding,
    cancellation: Cancellation,
}

#[derive(Serialize)]
struct ClosedLoopPoint {
    store: String,
    concurrency: usize,
    requests: usize,
    completed: u64,
    lost: u64,
    extractions: u64,
    coalesced: u64,
    memory_hits: u64,
    store_hits: u64,
    p50_service_ms: f64,
    p95_service_ms: f64,
    max_service_ms: f64,
    p50_queue_ms: f64,
    throughput_rps: f64,
}

#[derive(Serialize)]
struct OpenLoop {
    requests: usize,
    completed: u64,
    lost: u64,
    p50_queue_ms: f64,
    p95_queue_ms: f64,
    p50_service_ms: f64,
    throughput_rps: f64,
}

#[derive(Serialize)]
struct Admission {
    queue_depth: usize,
    submitted: u64,
    completed: u64,
    rejected_queue_full: u64,
    lost: u64,
}

#[derive(Serialize)]
struct Shedding {
    backlog: usize,
    deadline_ms: f64,
    shed: u64,
    completed: u64,
    lost: u64,
}

#[derive(Serialize)]
struct Cancellation {
    cancelled: u64,
    completed: u64,
    extractions: u64,
    lost: u64,
}

struct Profile {
    tiny: bool,
    module: &'static str,
    instances: usize,
    workers: usize,
    levels: &'static [usize],
    per_client: usize,
    open_loop_requests: usize,
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny")
        || std::env::var("SSTA_BENCH_PROFILE").is_ok_and(|v| v == "tiny");
    let profile = if tiny {
        Profile {
            tiny,
            module: "c432",
            instances: 2,
            workers: 2,
            levels: &[2],
            per_client: 1,
            open_loop_requests: 4,
        }
    } else {
        Profile {
            tiny,
            module: "c432",
            instances: 4,
            workers: 4,
            levels: &[1, 2, 4],
            per_client: 3,
            open_loop_requests: 12,
        }
    };

    println!(
        "serving workload: {} x{} ({} workers)",
        profile.module, profile.instances, profile.workers
    );
    let spec = Arc::new(module_array_spec(profile.module, profile.instances));

    let mut closed = Vec::new();
    // Cold sections get a fresh store each so every concurrency level
    // demonstrates the coalesce-under-race path; the warm sections all
    // share one pre-warmed store.
    for &concurrency in profile.levels {
        let backend = Arc::new(MemoryBackend::new());
        let point = closed_loop("cold", &profile, &spec, concurrency, Arc::clone(&backend));
        assert!(point.extractions >= 1, "cold run must extract");
        closed.push(point);
    }
    let warm_backend = Arc::new(MemoryBackend::new());
    // Pre-warm: one request populates the store.
    closed_loop("prewarm", &profile, &spec, 1, Arc::clone(&warm_backend));
    let cold_worst_ms = closed.iter().map(|p| p.max_service_ms).fold(0.0, f64::max);
    for &concurrency in profile.levels {
        let point = closed_loop(
            "warm",
            &profile,
            &spec,
            concurrency,
            Arc::clone(&warm_backend),
        );
        assert_eq!(point.extractions, 0, "warm store must not extract");
        assert!(
            point.p50_service_ms <= cold_worst_ms,
            "warm p50 {:.1} ms not under the worst cold request {:.1} ms",
            point.p50_service_ms,
            cold_worst_ms
        );
        closed.push(point);
    }
    for point in &closed {
        assert_eq!(point.lost, 0, "no request may go unanswered");
        assert!(
            point.extractions as usize <= 1,
            "identical requests must coalesce to <= 1 distinct-fingerprint extraction, got {}",
            point.extractions
        );
    }

    let open_loop = open_loop(&profile, &spec);
    let admission = admission_burst(&profile, &spec);
    let shedding = shedding(&profile, &spec);
    let cancellation = cancellation(&profile, &spec);

    let default_out = if tiny {
        "BENCH_serving.tiny.json"
    } else {
        "BENCH_serving.json"
    };
    let out = std::env::var("SSTA_BENCH_OUT").unwrap_or_else(|_| default_out.into());
    let report = Report {
        schema: 2,
        profile: if tiny { "tiny" } else { "full" }.into(),
        workers: profile.workers,
        effective_threads: ssta_core::parallel::effective_threads(profile.workers),
        module: profile.module.into(),
        instances: profile.instances,
        distinct_fingerprints: 1,
        closed_loop: closed,
        open_loop,
        admission,
        shedding,
        cancellation,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("wrote {out}");
}

fn options(profile: &Profile) -> ServeOptions {
    ServeOptions {
        workers: profile.workers,
        // Each worker's engine stays single-threaded: the pool is the
        // parallelism, a second fan-out level would oversubscribe.
        engine: EngineOptions {
            threads: 1,
            ..EngineOptions::default()
        },
        ..ServeOptions::default()
    }
}

/// C clients, each submitting `per_client` requests sequentially and
/// waiting for each response before the next.
fn closed_loop(
    label: &str,
    profile: &Profile,
    spec: &Arc<DesignSpec>,
    concurrency: usize,
    backend: Arc<MemoryBackend>,
) -> ClosedLoopPoint {
    let server = Server::start(SstaConfig::paper(), backend, options(profile));
    let started = Instant::now();
    let responses: Vec<AnalyzeResponse> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let server = &server;
                s.spawn(move || {
                    (0..profile.per_client)
                        .map(|_| {
                            server
                                .submit(AnalyzeRequest::new(
                                    Arc::clone(spec),
                                    ScenarioSet::baseline(),
                                ))
                                .wait()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();
    let snapshot = server.shutdown();

    for response in &responses {
        assert!(
            response.outcome.is_completed(),
            "closed-loop request {} ended {}",
            response.id,
            response.outcome.label()
        );
    }
    let service: Vec<Duration> = responses.iter().map(|r| r.stats.service_time).collect();
    let queue: Vec<Duration> = responses.iter().map(|r| r.stats.queue_wait).collect();
    let point = ClosedLoopPoint {
        store: label.into(),
        concurrency,
        requests: responses.len(),
        completed: snapshot.completed,
        lost: snapshot.lost(),
        extractions: snapshot.extractions,
        coalesced: snapshot.coalesced,
        memory_hits: snapshot.memory_hits,
        store_hits: snapshot.store_hits,
        p50_service_ms: percentile_ms(&service, 50.0),
        p95_service_ms: percentile_ms(&service, 95.0),
        max_service_ms: percentile_ms(&service, 100.0),
        p50_queue_ms: percentile_ms(&queue, 50.0),
        throughput_rps: responses.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    };
    println!(
        "closed/{label} c={concurrency}: p50 {:.1} ms, p95 {:.1} ms, {:.1} req/s | {snapshot}",
        point.p50_service_ms, point.p95_service_ms, point.throughput_rps
    );
    point
}

/// Everything submitted up front against a warm store; workers drain.
fn open_loop(profile: &Profile, spec: &Arc<DesignSpec>) -> OpenLoop {
    let backend = Arc::new(MemoryBackend::new());
    closed_loop("prewarm", profile, spec, 1, Arc::clone(&backend));
    let server = Server::start(SstaConfig::paper(), backend, options(profile));
    let started = Instant::now();
    let tickets: Vec<_> = (0..profile.open_loop_requests)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    let responses: Vec<AnalyzeResponse> = tickets.into_iter().map(|t| t.wait()).collect();
    let elapsed = started.elapsed();
    let snapshot = server.shutdown();
    for response in &responses {
        assert!(response.outcome.is_completed(), "open-loop request failed");
    }
    let queue: Vec<Duration> = responses.iter().map(|r| r.stats.queue_wait).collect();
    let service: Vec<Duration> = responses.iter().map(|r| r.stats.service_time).collect();
    let result = OpenLoop {
        requests: responses.len(),
        completed: snapshot.completed,
        lost: snapshot.lost(),
        p50_queue_ms: percentile_ms(&queue, 50.0),
        p95_queue_ms: percentile_ms(&queue, 95.0),
        p50_service_ms: percentile_ms(&service, 50.0),
        throughput_rps: responses.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    };
    assert_eq!(result.lost, 0);
    println!(
        "open loop: queue p50 {:.1} ms / p95 {:.1} ms, {:.1} req/s",
        result.p50_queue_ms, result.p95_queue_ms, result.throughput_rps
    );
    result
}

/// A burst past the queue bound against a paused server: the surplus is
/// rejected immediately — backpressure, not deadlock — and the admitted
/// prefix completes after resume.
fn admission_burst(profile: &Profile, spec: &Arc<DesignSpec>) -> Admission {
    let depth = if profile.tiny { 2 } else { 4 };
    let burst = depth + 3;
    let backend = Arc::new(MemoryBackend::new());
    closed_loop("prewarm", profile, spec, 1, Arc::clone(&backend));
    let server = Server::start(
        SstaConfig::paper(),
        backend,
        ServeOptions {
            queue_depth: depth,
            start_paused: true,
            ..options(profile)
        },
    );
    let tickets: Vec<_> = (0..burst)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    // The paused server can't have served anything: rejections already
    // hold their terminal response, before any worker ran.
    assert_eq!(
        server.snapshot().rejected_queue_full as usize,
        burst - depth
    );
    server.resume();
    for ticket in tickets {
        ticket.wait();
    }
    let snapshot = server.shutdown();
    let result = Admission {
        queue_depth: depth,
        submitted: snapshot.submitted,
        completed: snapshot.completed,
        rejected_queue_full: snapshot.rejected_queue_full,
        lost: snapshot.lost(),
    };
    assert_eq!(result.completed as usize, depth);
    assert_eq!(result.lost, 0);
    println!(
        "admission: burst {burst} into depth {depth} -> {} completed, {} rejected",
        result.completed, result.rejected_queue_full
    );
    result
}

/// A deadline request submitted behind a backlog whose estimated wait
/// exceeds the budget: shed at admission.
fn shedding(profile: &Profile, spec: &Arc<DesignSpec>) -> Shedding {
    let backlog = 4;
    let deadline = Duration::from_millis(100);
    let backend = Arc::new(MemoryBackend::new());
    closed_loop("prewarm", profile, spec, 1, Arc::clone(&backend));
    let server = Server::start(
        SstaConfig::paper(),
        backend,
        ServeOptions {
            workers: 1,
            // A deliberately pessimistic service prior so the shed
            // decision is deterministic: 4 x 200 ms backlog >> 100 ms.
            service_estimate: Duration::from_millis(200),
            start_paused: true,
            ..options(profile)
        },
    );
    let tickets: Vec<_> = (0..backlog)
        .map(|_| {
            server.submit(AnalyzeRequest::new(
                Arc::clone(spec),
                ScenarioSet::baseline(),
            ))
        })
        .collect();
    let doomed = server.submit(
        AnalyzeRequest::new(Arc::clone(spec), ScenarioSet::baseline()).with_deadline(deadline),
    );
    let response = doomed.wait();
    assert_eq!(
        response.outcome.label(),
        "rejected:shed",
        "backlogged deadline request must shed at admission"
    );
    server.resume();
    for ticket in tickets {
        assert!(ticket.wait().outcome.is_completed());
    }
    let snapshot = server.shutdown();
    let result = Shedding {
        backlog,
        deadline_ms: 1e3 * deadline.as_secs_f64(),
        shed: snapshot.shed,
        completed: snapshot.completed,
        lost: snapshot.lost(),
    };
    assert_eq!(result.shed, 1);
    assert_eq!(result.lost, 0);
    println!(
        "shedding: {} shed at admission behind a backlog of {backlog}",
        result.shed
    );
    result
}

/// Two identical requests staged on a paused server; one is cancelled
/// before any worker runs. The cancelled one terminates `cancelled`
/// with zero service time, the survivor completes and extracts once.
fn cancellation(profile: &Profile, spec: &Arc<DesignSpec>) -> Cancellation {
    let backend = Arc::new(MemoryBackend::new());
    let server = Server::start(
        SstaConfig::paper(),
        backend,
        ServeOptions {
            start_paused: true,
            ..options(profile)
        },
    );
    let doomed = server.submit(AnalyzeRequest::new(
        Arc::clone(spec),
        ScenarioSet::baseline(),
    ));
    let survivor = server.submit(AnalyzeRequest::new(
        Arc::clone(spec),
        ScenarioSet::baseline(),
    ));
    doomed.cancel();
    server.resume();
    let cancelled = doomed.wait();
    assert_eq!(cancelled.outcome.label(), "cancelled");
    assert_eq!(
        cancelled.stats.service_time,
        Duration::ZERO,
        "a request cancelled while queued must cost zero service CPU"
    );
    let survived = survivor.wait();
    assert!(
        survived.outcome.is_completed(),
        "the identical request must be unaffected by the cancellation"
    );
    let snapshot = server.shutdown();
    let result = Cancellation {
        cancelled: snapshot.cancelled,
        completed: snapshot.completed,
        extractions: snapshot.extractions,
        lost: snapshot.lost(),
    };
    assert_eq!(result.cancelled, 1);
    assert_eq!(result.completed, 1);
    assert_eq!(result.extractions, 1);
    assert_eq!(result.lost, 0);
    println!(
        "cancellation: 1 cancelled at zero cost, identical survivor completed ({} extraction)",
        result.extractions
    );
    result
}

fn percentile_ms(samples: &[Duration], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    1e3 * sorted[rank.min(sorted.len() - 1)].as_secs_f64()
}
