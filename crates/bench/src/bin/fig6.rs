//! Regenerates Fig. 6 of the paper: the edge-criticality histogram of
//! c7552, showing the bimodal distribution that makes criticality-based
//! pruning effective.
//!
//! Note on the upper mode: the paper plots it at criticality 1.0; under
//! this implementation's collapsed-random tightness convention dominant
//! edges saturate near 0.5 instead (see `EXPERIMENTS.md`). The *shape* —
//! most edges near 0, a dominant-edge mode at the saturation point, and a
//! thin middle — is the reproduced result.
//!
//! `SSTA_BENCHMARKS=c432` switches the circuit.

use ssta_bench::{characterize, selected_benchmarks};
use ssta_core::criticality::{criticality_histogram, edge_criticalities, CriticalityOptions};

fn main() {
    let name = selected_benchmarks()
        .first()
        .copied()
        .filter(|_| std::env::var("SSTA_BENCHMARKS").is_ok())
        .unwrap_or("c7552");
    println!("Fig. 6: edge criticalities in {name}");
    let ctx = characterize(name);
    let started = std::time::Instant::now();
    let cms = edge_criticalities(ctx.graph(), &ctx.zero(), &CriticalityOptions::default())
        .expect("criticality engine");
    let elapsed = started.elapsed().as_secs_f64();
    let hist = criticality_histogram(ctx.graph(), &cms, 20);

    let max_count = hist.counts().iter().copied().max().unwrap_or(1).max(1);
    println!("{:>13} {:>7}  histogram", "cm bin", "edges");
    for (i, &count) in hist.counts().iter().enumerate() {
        let (lo, hi) = hist.bin_edges(i);
        let bar_len = (50 * count / max_count) as usize;
        println!(
            "[{:4.2}, {:4.2}) {:>7}  {}",
            lo,
            hi,
            count,
            "#".repeat(bar_len)
        );
    }
    let total = hist.total() as f64;
    let low = hist.counts()[0] as f64;
    let upper_mode: u64 = hist.counts()[9..13].iter().sum();
    println!(
        "\n{} edges total; {:.1}% in [0, 0.05) (prunable at δ = 0.05), {:.1}% in the dominant band [0.45, 0.65)",
        hist.total(),
        100.0 * low / total,
        100.0 * upper_mode as f64 / total
    );
    println!("all-pairs criticality runtime: {elapsed:.2}s");
}
