//! Reproduces the §VI-B runtime claim: hierarchical analysis with
//! pre-characterized timing models is around three orders of magnitude
//! faster than Monte Carlo on the flattened netlist.
//!
//! The comparison matches the paper's accounting: model extraction is a
//! characterization-time cost (done once per IP block by the vendor), so
//! the measured quantity is design-level arrival-time propagation versus
//! flattened 10 000-sample MC.

use ssta_bench::{four_multiplier_design, mc_samples, multiplier_width};
use ssta_core::{analyze, CorrelationMode};
use ssta_mc::McOptions;
use std::time::Instant;

fn main() {
    let width = multiplier_width();
    let samples = mc_samples();
    println!("speedup experiment on 4 x mul{width}x{width} ({samples} MC samples)");
    let design = four_multiplier_design(width);

    // Warm-up plus repeated measurement of the analysis (it is fast).
    let mut analysis_seconds = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let t = Instant::now();
        let r = analyze(&design, CorrelationMode::Proposed).expect("analysis");
        analysis_seconds = analysis_seconds.min(t.elapsed().as_secs_f64());
        result = Some(r);
    }
    let result = result.expect("at least one run");

    let t = Instant::now();
    let mc = ssta_mc::flat_design_delay(
        &design,
        &McOptions {
            samples,
            ..Default::default()
        },
    )
    .expect("flattened MC");
    let mc_seconds = t.elapsed().as_secs_f64();

    println!(
        "hierarchical analysis: {:8.4}s   (mean {:.1} ps, sigma {:.1} ps)",
        analysis_seconds,
        result.delay.mean(),
        result.delay.std_dev()
    );
    println!(
        "flattened Monte Carlo: {:8.2}s   (mean {:.1} ps, sigma {:.1} ps)",
        mc_seconds,
        mc.mean(),
        mc.std_dev()
    );
    println!(
        "speedup: {:.0}x (paper: three orders of magnitude)",
        mc_seconds / analysis_seconds
    );
}
