//! Regenerates Table I of the paper: timing-model extraction results for
//! the ten ISCAS85-calibrated circuits — sizes, compression ratios,
//! model-vs-Monte-Carlo accuracy, and extraction runtime.
//!
//! Paper reference values are printed alongside for direct comparison.
//! `SSTA_MC_SAMPLES` (default 10000) controls the MC effort;
//! `SSTA_BENCHMARKS=c432,c880` restricts the circuit set.

use ssta_bench::{mc_samples, pct, pct2, selected_benchmarks, table1_row, PAPER_TABLE1};

fn main() {
    let samples = mc_samples();
    let names = selected_benchmarks();
    println!("Table I: results of timing model extraction (MC samples = {samples})");
    println!(
        "{:<7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>7} {:>7} {:>8}   | paper: {:>4} {:>4} {:>5} {:>5} {:>6} {:>6}",
        "circuit", "Eo", "Vo", "Em", "Vm", "pe", "pv", "merr", "verr", "T(s)", "Em", "Vm", "pe", "pv", "merr", "verr"
    );

    let mut sum_pe = 0.0;
    let mut sum_pv = 0.0;
    let mut sum_merr = 0.0;
    let mut sum_verr = 0.0;
    let mut count = 0;
    for name in &names {
        let row = table1_row(name, samples);
        let paper = PAPER_TABLE1.iter().find(|p| p.0 == *name);
        let (pem, pvm, ppe, ppv, pmerr, pverr) = paper.map_or(
            (
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ),
            |&(_, eo, vo, em, vm, me, ve)| {
                (
                    em.to_string(),
                    vm.to_string(),
                    pct(em as f64 / eo as f64),
                    pct(vm as f64 / vo as f64),
                    pct2(me),
                    pct2(ve),
                )
            },
        );
        println!(
            "{:<7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>7} {:>7} {:>8.2}   |        {:>4} {:>4} {:>5} {:>5} {:>6} {:>6}",
            row.name,
            row.eo,
            row.vo,
            row.em,
            row.vm,
            pct(row.pe),
            pct(row.pv),
            pct2(row.merr),
            pct2(row.verr),
            row.t_seconds,
            pem,
            pvm,
            ppe,
            ppv,
            pmerr,
            pverr,
        );
        sum_pe += row.pe;
        sum_pv += row.pv;
        sum_merr += row.merr;
        sum_verr += row.verr;
        count += 1;
    }
    if count > 0 {
        let n = count as f64;
        println!(
            "{:<7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>7} {:>7} {:>8}   |                    {:>5} {:>5} {:>6} {:>6}",
            "average",
            "",
            "",
            "",
            "",
            pct(sum_pe / n),
            pct(sum_pv / n),
            pct2(sum_merr / n),
            pct2(sum_verr / n),
            "",
            "20%",
            "19%",
            "0.59%",
            "1.06%",
        );
    }
}
