//! Ablation A: sweep of the criticality threshold δ.
//!
//! DESIGN.md calls out δ = 0.05 as the paper's (unjustified) choice; this
//! sweep quantifies the model-size/accuracy trade-off it buys, with the
//! accuracy-repair extension disabled so the raw algorithm is visible,
//! and enabled to show what the repair adds back.
//!
//! `SSTA_BENCHMARKS` (default `c1908`) selects the circuit.

use ssta_bench::{characterize, mc_samples, pct, pct2};
use ssta_core::ExtractOptions;
use ssta_mc::McOptions;

fn main() {
    let name = std::env::var("SSTA_BENCHMARKS").unwrap_or_else(|_| "c1908".into());
    let name = name.split(',').next().expect("non-empty").trim().to_owned();
    let samples = mc_samples().min(4000); // per-sweep-point MC cost
    println!("ablation: delta sweep on {name} (MC samples = {samples})");
    let ctx = characterize(&name);
    let mc = ssta_mc::module_delay_matrix(
        &ctx,
        &McOptions {
            samples,
            ..Default::default()
        },
    )
    .expect("module MC");

    println!(
        "{:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "delta", "repair", "Em", "Vm", "pe", "pv", "merr", "verr", "T(s)"
    );
    for &delta in &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5] {
        for repair in [false, true] {
            let options = ExtractOptions {
                delta,
                accuracy_repair: repair.then_some(0.02),
                ..Default::default()
            };
            let started = std::time::Instant::now();
            let model = ctx.extract_model(&options).expect("extract");
            let t = started.elapsed().as_secs_f64();
            let err = ssta_mc::model_vs_mc(&model.delay_matrix().expect("matrix"), &mc);
            let stats = model.stats();
            println!(
                "{:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>8.2}",
                delta,
                if repair { "on" } else { "off" },
                stats.model_edges,
                stats.model_vertices,
                pct(stats.edge_ratio()),
                pct(stats.vertex_ratio()),
                pct2(err.merr),
                pct2(err.verr),
                t
            );
        }
    }
}
