//! Regenerates Fig. 7 of the paper: delay CDFs of the hierarchical
//! four-multiplier design, comparing
//!
//! * the proposed method (independent-variable replacement),
//! * the global-correlation-only baseline,
//! * Monte Carlo of the flattened original netlist.
//!
//! `SSTA_MUL_WIDTH` (default 16 = c6288) scales the multiplier;
//! `SSTA_MC_SAMPLES` (default 10000) the MC effort.

use ssta_bench::{analyze_both, four_multiplier_design, mc_samples, multiplier_width};
use ssta_mc::compare::{cdf_comparison, ks_against_form};
use ssta_mc::McOptions;

fn main() {
    let width = multiplier_width();
    let samples = mc_samples();
    println!(
        "Fig. 7: hierarchical timing analysis of 4 x mul{width}x{width} (cross-connected, abutted)"
    );
    println!("building and extracting the multiplier timing model...");
    let design = four_multiplier_design(width);

    let (proposed, global) = analyze_both(&design);
    println!(
        "proposed:     mean {:8.1} ps  sigma {:7.1} ps  ({} local components, {:.2}s)",
        proposed.delay.mean(),
        proposed.delay.std_dev(),
        proposed.n_local_components,
        proposed.elapsed_seconds
    );
    println!(
        "global-only:  mean {:8.1} ps  sigma {:7.1} ps  ({} local components, {:.2}s)",
        global.delay.mean(),
        global.delay.std_dev(),
        global.n_local_components,
        global.elapsed_seconds
    );

    println!("running flattened Monte Carlo ({samples} samples)...");
    let started = std::time::Instant::now();
    let mc = ssta_mc::flat_design_delay(
        &design,
        &McOptions {
            samples,
            ..Default::default()
        },
    )
    .expect("flattened MC");
    let mc_seconds = started.elapsed().as_secs_f64();
    println!(
        "Monte Carlo:  mean {:8.1} ps  sigma {:7.1} ps  ({:.2}s)",
        mc.mean(),
        mc.std_dev(),
        mc_seconds
    );

    println!("\nnormalized delay CDFs (the paper's Fig. 7 curves):");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14}",
        "delay(ps)", "normalized", "Monte Carlo", "proposed", "global-only"
    );
    for row in cdf_comparison(&mc, [&proposed.delay, &global.delay], 21) {
        println!(
            "{:>10.1} {:>10.2} {:>12.3} {:>12.3} {:>14.3}",
            row.delay, row.normalized, row.mc, row.analytic[0], row.analytic[1]
        );
    }

    let ks_prop = ks_against_form(&mc, &proposed.delay);
    let ks_glob = ks_against_form(&mc, &global.delay);
    println!("\nKS distance to Monte Carlo: proposed {ks_prop:.4}, global-only {ks_glob:.4}");
    println!(
        "sigma ratio vs MC:          proposed {:.3}, global-only {:.3}",
        proposed.delay.std_dev() / mc.std_dev(),
        global.delay.std_dev() / mc.std_dev()
    );
    println!(
        "speedup vs flattened MC:    {:.0}x (hierarchical analysis {:.3}s vs MC {:.2}s)",
        mc_seconds / proposed.elapsed_seconds,
        proposed.elapsed_seconds,
        mc_seconds
    );
}
