//! Machine-readable corner-grid mega-sweep benchmark.
//!
//! Emits `BENCH_sweep.json` (override the path with `SSTA_BENCH_OUT`)
//! with one row per grid size over a chained module-array workload.
//! Each row sweeps the grid twice on
//! [`Engine::analyze_sweep`](ssta_engine::Engine::analyze_sweep):
//!
//! * **cold** — a fresh engine: the fingerprint-collapsed planner must
//!   schedule exactly `distinct_fingerprints` extractions, however many
//!   corners the grid has (asserted, every profile);
//! * **warm** — the same engine again: zero extractions, every group
//!   resolves from session memory (asserted).
//!
//! Both runs stream: peak resident full results must stay bounded by
//! the worker count (asserted), which is what lets a 2 048-corner grid
//! run in O(workers) result memory. Rows report corners/second, the
//! collapse ratio (corners per extraction) and the aggregate per-phase
//! time shares.
//!
//! `--tiny` (or `SSTA_BENCH_PROFILE=tiny`) shrinks the grid list for CI
//! smoke; the tiny profile defaults to its own gitignored output path.
//!
//! Run with `cargo run -p ssta-bench --release --bin bench_sweep`.

use serde::Serialize;
use ssta_bench::module_array_spec;
use ssta_core::{
    parallel::effective_threads, CorrelationModel, ExtractOptions, PhaseTimings, ScenarioOverlay,
    SstaConfig,
};
use ssta_engine::{CornerGrid, Engine, GridAxis, SweepOptions, SweepSummary};
use std::time::Instant;

#[derive(Serialize)]
struct Report {
    schema: u32,
    profile: String,
    module: String,
    instances: usize,
    /// Resolved sweep worker count (`effective_threads(0)`).
    effective_threads: usize,
    grids: Vec<GridRow>,
}

#[derive(Serialize)]
struct GridRow {
    corners: usize,
    axes: Vec<String>,
    /// Extraction-fingerprint groups the corners collapsed into.
    groups: usize,
    /// Design analyses actually run (distinct group × mode pairs).
    analyses: usize,
    distinct_fingerprints: usize,
    /// Corners served per extraction — the collapse the planner buys.
    corners_per_extraction: f64,
    cold: SweepPoint,
    warm: SweepPoint,
}

#[derive(Serialize)]
struct SweepPoint {
    seconds: f64,
    extractions: usize,
    memory_hits: usize,
    scenarios_per_sec: f64,
    peak_retained_results: usize,
    phases: PhaseTimings,
    /// `replace / total` share of the aggregate phase time.
    replace_share: f64,
    /// `propagate / total` share of the aggregate phase time.
    propagate_share: f64,
    /// `(covariance + eigen) / total` share of the aggregate phase time
    /// — bounded by the shared-basis cache, not by the corner count.
    basis_share: f64,
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny")
        || std::env::var("SSTA_BENCH_PROFILE").is_ok_and(|v| v == "tiny");
    let (module, instances, corner_counts): (&str, usize, &[usize]) = if tiny {
        ("c432", 2, &[8])
    } else {
        ("c432", 4, &[64, 512, 2048])
    };
    let workers = effective_threads(0);

    println!("sweep workload: {module} x{instances} ({workers} workers)");
    let spec = module_array_spec(module, instances);

    let mut rows = Vec::new();
    for &corners in corner_counts {
        let grid = grid_for(corners, tiny);
        assert_eq!(grid.len(), corners, "grid construction drifted");
        let axes: Vec<String> = grid.axes().iter().map(|a| a.name().to_owned()).collect();

        let mut engine = Engine::new(SstaConfig::paper());
        let options = SweepOptions::default();

        let started = Instant::now();
        let cold = engine
            .analyze_sweep(&spec, &grid, &options)
            .expect("cold sweep");
        let cold_seconds = started.elapsed().as_secs_f64();
        // The planner's contract: N corners, exactly one extraction per
        // distinct fingerprint — the single-flight table never even has
        // to race.
        assert_eq!(
            cold.extractions, cold.distinct_fingerprints,
            "cold sweep must extract exactly once per distinct fingerprint"
        );
        assert!(
            cold.peak_retained_results <= workers,
            "streaming sweep retained {} full results with {workers} workers",
            cold.peak_retained_results
        );

        let started = Instant::now();
        let warm = engine
            .analyze_sweep(&spec, &grid, &options)
            .expect("warm sweep");
        let warm_seconds = started.elapsed().as_secs_f64();
        assert_eq!(warm.extractions, 0, "warm sweep must not extract");
        assert_eq!(
            warm.memory_hits, warm.distinct_fingerprints,
            "every distinct fingerprint must resolve from session memory when warm"
        );
        assert!(warm.peak_retained_results <= workers);

        let row = GridRow {
            corners,
            axes,
            groups: cold.groups,
            analyses: cold.analyses,
            distinct_fingerprints: cold.distinct_fingerprints,
            corners_per_extraction: corners as f64 / cold.extractions.max(1) as f64,
            cold: point(&cold, cold_seconds),
            warm: point(&warm, warm_seconds),
        };
        println!(
            "{corners} corners -> {} groups / {} analyses / {} extractions ({:.0} corners per extraction)",
            row.groups, row.analyses, cold.extractions, row.corners_per_extraction
        );
        println!(
            "  cold {:.2} s ({:.0}/s), warm {:.2} s ({:.0}/s), peak {} resident",
            row.cold.seconds,
            row.cold.scenarios_per_sec,
            row.warm.seconds,
            row.warm.scenarios_per_sec,
            row.cold
                .peak_retained_results
                .max(row.warm.peak_retained_results),
        );
        rows.push(row);
    }

    let default_out = if tiny {
        "BENCH_sweep.tiny.json"
    } else {
        "BENCH_sweep.json"
    };
    let out = std::env::var("SSTA_BENCH_OUT").unwrap_or_else(|_| default_out.into());
    let report = Report {
        schema: 1,
        profile: if tiny { "tiny" } else { "full" }.into(),
        module: module.into(),
        instances,
        effective_threads: workers,
        grids: rows,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("wrote {out}");
}

/// Builds the corner grid for one row. Extraction-relevant axes (sigma
/// scaling, correlation structure, extraction δ) multiply the group
/// count; analysis-level axes (mode, clock target) multiply only the
/// corner count — that asymmetry is the whole benchmark.
fn grid_for(corners: usize, tiny: bool) -> CornerGrid {
    if tiny {
        // 2 sigma × 2 modes × 2 clocks = 8 corners, 2 groups.
        assert_eq!(corners, 8);
        return CornerGrid::builder()
            .axis(GridAxis::sigma_scales("process", &[1.0, 1.2]))
            .axis(GridAxis::modes("mode"))
            .axis(GridAxis::yield_targets("clock", &[900.0, 1100.0]))
            .finish()
            .expect("tiny grid");
    }
    let paper = CorrelationModel::paper();
    let short_range = CorrelationModel {
        cutoff_grids: 8.0,
        ..paper
    };
    match corners {
        // 4 sigma × 2 corr × 2 modes × 4 clocks = 64 corners, 8 groups.
        64 => CornerGrid::builder()
            .axis(GridAxis::sigma_scales("process", &[0.8, 0.9, 1.0, 1.2]))
            .axis(GridAxis::correlations(
                "corr",
                [("paper", paper), ("short-range", short_range)],
            ))
            .axis(GridAxis::modes("mode"))
            .axis(GridAxis::yield_targets(
                "clock",
                &[800.0, 900.0, 1000.0, 1100.0],
            ))
            .finish()
            .expect("64-corner grid"),
        // 8 sigma × 2 corr × 2 modes × 16 clocks = 512 corners, 16 groups.
        512 => CornerGrid::builder()
            .axis(GridAxis::sigma_scales(
                "process",
                &[0.7, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.2],
            ))
            .axis(GridAxis::correlations(
                "corr",
                [("paper", paper), ("short-range", short_range)],
            ))
            .axis(GridAxis::modes("mode"))
            .axis(GridAxis::yield_targets("clock", &clock_targets(16)))
            .finish()
            .expect("512-corner grid"),
        // 8 sigma × 2 corr × 2 δ × 2 modes × 32 clocks = 2048 corners,
        // 32 groups.
        2048 => CornerGrid::builder()
            .axis(GridAxis::sigma_scales(
                "process",
                &[0.7, 0.8, 0.9, 0.95, 1.0, 1.05, 1.1, 1.2],
            ))
            .axis(GridAxis::correlations(
                "corr",
                [("paper", paper), ("short-range", short_range)],
            ))
            .axis(GridAxis::new(
                "delta",
                [
                    ("d0.05", ScenarioOverlay::new()),
                    (
                        "d0.02",
                        ScenarioOverlay::new().with_extract(ExtractOptions {
                            delta: 0.02,
                            ..ExtractOptions::default()
                        }),
                    ),
                ],
            ))
            .axis(GridAxis::modes("mode"))
            .axis(GridAxis::yield_targets("clock", &clock_targets(32)))
            .finish()
            .expect("2048-corner grid"),
        other => panic!("no grid shape defined for {other} corners"),
    }
}

/// `n` clock targets spread over 700–1800 ps.
fn clock_targets(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| 700.0 + 1100.0 * k as f64 / (n - 1) as f64)
        .collect()
}

fn point(summary: &SweepSummary, seconds: f64) -> SweepPoint {
    let total = summary.phases.total_seconds();
    let share = |phase: f64| if total > 0.0 { phase / total } else { 0.0 };
    SweepPoint {
        seconds,
        extractions: summary.extractions,
        memory_hits: summary.memory_hits,
        scenarios_per_sec: summary.scenarios as f64 / seconds.max(1e-9),
        peak_retained_results: summary.peak_retained_results,
        phases: summary.phases,
        replace_share: share(summary.phases.replace_seconds),
        propagate_share: share(summary.phases.propagate_seconds),
        basis_share: share(summary.phases.covariance_seconds + summary.phases.eigen_seconds),
    }
}
