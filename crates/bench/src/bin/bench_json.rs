//! Machine-readable assembly-performance benchmark.
//!
//! Emits `BENCH_assembly.json` (override the path with `SSTA_BENCH_OUT`)
//! with two sections:
//!
//! * **eigen** — the QL-vs-Jacobi eigensolver duel on a spatial
//!   covariance matrix (200×200 by default). In full mode the run
//!   *asserts* the ≥5× speedup the fast solver exists for, after
//!   cross-checking both spectra against each other and both
//!   reconstructions against the input.
//! * **assembly** — design-level analysis scaling over many-instance
//!   arrays (4/16/64 instances of c880 by default): serial vs parallel
//!   wall-clock, cold vs warm, the per-phase breakdown of the warm
//!   parallel run, and (schema 3) a **propagate** duel on the assembled
//!   design graph — push-based topo-order propagation vs the levelized
//!   pull engine, serial and threaded, plus the schedule's level count
//!   and maximum level width. Serial and parallel results are asserted
//!   bit-identical; in full mode the pull engine must beat push on the
//!   16- and 64-instance rows.
//! * **sequential** (schema 5) — registered-pipeline scaling rows:
//!   characterize + registered extraction wall-clock per chain, then
//!   stage-by-stage `analyze_sequential` serial vs threaded (asserted
//!   bit-identical) with per-stage required-period/slack means.
//!
//! `--tiny` (or `SSTA_BENCH_PROFILE=tiny`) shrinks every size so CI can
//! exercise the whole path in seconds; speed assertions are relaxed to
//! equivalence-only there, because tiny graphs measure mostly overhead.
//!
//! Run with `cargo run -p ssta-bench --release --bin bench_json`.

use serde::Serialize;
use ssta_bench::{
    characterize, module_array_from_model, registered_chain_design, registered_pipeline_models,
};
use ssta_core::{
    analyze_sequential, analyze_with, assemble_design_graph, AnalyzeOptions, CorrelationMode,
    CorrelationModel, DesignTiming, ExtractOptions, PhaseTimings, SequentialAnalyzeOptions,
    SstaConfig,
};
use ssta_math::eigen::{symmetric_eigen, symmetric_eigen_jacobi};
use ssta_math::tridiag::symmetric_eigen_ql;
use ssta_math::Matrix;
use ssta_timing::{levels, LevelSchedule};
use std::sync::Arc;
use std::time::Instant;

/// The emitted `BENCH_assembly.json` document.
#[derive(Serialize)]
struct Report {
    schema: u32,
    profile: String,
    /// Resolved worker count the parallel rows ran with
    /// (`effective_threads(0)`) — without it, speedups from different
    /// machines are not comparable.
    effective_threads: usize,
    eigen: EigenDuel,
    assembly: Vec<ScalingPoint>,
    /// Schema 5: the registered-pipeline scaling rows — sequential
    /// extraction plus stage-by-stage propagation through registered
    /// boundaries.
    sequential: Vec<SequentialPoint>,
}

#[derive(Serialize)]
struct EigenDuel {
    n: usize,
    jacobi_seconds: f64,
    ql_seconds: f64,
    speedup: f64,
    max_relative_eigenvalue_diff: f64,
    max_reconstruction_error: f64,
}

#[derive(Serialize)]
struct ScalingPoint {
    instances: usize,
    n_grids: usize,
    n_local_components: usize,
    serial_seconds: f64,
    cold_seconds: f64,
    warm_seconds: f64,
    parallel_speedup: f64,
    phases: PhaseTimings,
    /// `replace / total` share of the warm run's phase time — the
    /// committed gate on the "serial tail" (ROADMAP): the per-instance
    /// replacement matmuls this schema revision cache-blocks.
    replace_share: f64,
    /// `propagate / total` share of the warm run's phase time.
    propagate_share: f64,
    /// The push-vs-pull propagation duel on this row's assembled graph.
    propagate: PropagateDuel,
}

/// Propagation-engine duel on one assembled design graph. The pull rows
/// share one `LevelSchedule` (timed separately in
/// `schedule_build_seconds`) — the engine levelizes once per graph and
/// amortizes it over every pass, while push re-runs its Kahn sort inside
/// each call, which is exactly the serial tail this engine kills. The
/// threaded row uses the default thread count and must match serial pull
/// bit for bit.
#[derive(Serialize)]
struct PropagateDuel {
    n_levels: usize,
    max_level_width: usize,
    schedule_build_seconds: f64,
    push_serial_seconds: f64,
    pull_serial_seconds: f64,
    pull_threaded_seconds: f64,
    pull_vs_push_speedup: f64,
}

/// One registered-pipeline scaling row: a chain of register-bounded
/// stage models analyzed with `analyze_sequential`. Extraction time
/// covers characterize + registered extraction for every stage; the
/// analyze times are min-of-reps over the whole stage-by-stage
/// propagation (serial vs default threads, asserted bit-identical).
#[derive(Serialize)]
struct SequentialPoint {
    cores: Vec<String>,
    n_stages: usize,
    extract_seconds: f64,
    analyze_serial_seconds: f64,
    analyze_parallel_seconds: f64,
    /// Mean / sigma of the design's statistical minimum clock period (ps).
    min_period_ps_mean: f64,
    min_period_ps_sigma: f64,
    stages: Vec<StagePoint>,
}

/// Per-stage slice of the sequential row.
#[derive(Serialize)]
struct StagePoint {
    instance: String,
    required_period_ps_mean: f64,
    setup_slack_ps_mean: f64,
    /// `None` (JSON `null`) for stages whose model ships no hold arcs.
    hold_slack_ps_mean: Option<f64>,
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny")
        || std::env::var("SSTA_BENCH_PROFILE").is_ok_and(|v| v == "tiny");
    let (eigen_n, instance_counts, reps): (usize, &[usize], usize) = if tiny {
        (64, &[2, 4], 1)
    } else {
        (200, &[4, 16, 64], 3)
    };

    let duel = eigen_duel(eigen_n, reps);
    println!(
        "eigen {0}x{0}: jacobi {1:.1} ms, ql {2:.1} ms -> {3:.1}x (max rel dλ {4:.1e})",
        duel.n,
        1e3 * duel.jacobi_seconds,
        1e3 * duel.ql_seconds,
        duel.speedup,
        duel.max_relative_eigenvalue_diff,
    );
    assert!(
        duel.max_relative_eigenvalue_diff < 1e-6,
        "QL spectrum diverged from the Jacobi oracle: {:.3e}",
        duel.max_relative_eigenvalue_diff
    );
    assert!(
        duel.max_reconstruction_error < 1e-9,
        "eigendecomposition failed to reconstruct the covariance: {:.3e}",
        duel.max_reconstruction_error
    );
    let speedup_floor = if tiny { 1.0 } else { 5.0 };
    assert!(
        duel.speedup >= speedup_floor,
        "QL speedup {:.2}x below the {speedup_floor}x floor on {1}x{1}",
        duel.speedup,
        duel.n
    );

    println!("characterizing c880 once (model shared across all array sizes)...");
    let ctx = characterize("c880");
    let model = Arc::new(
        ctx.extract_model(&ExtractOptions::default())
            .expect("extraction"),
    );

    let mut points = Vec::new();
    for &n in instance_counts {
        let design = module_array_from_model("c880", Arc::clone(&model), n, SstaConfig::paper());
        // Pull must beat push once the graph is big enough to matter; the
        // tiny profile (and the small full rows) only assert equivalence.
        let assert_pull_wins = !tiny && n >= 16;
        let point = scaling_point(&design, n, reps, assert_pull_wins);
        println!(
            "c880 x{n}: {} grids, serial {:.1} ms, parallel cold {:.1} ms / warm {:.1} ms ({:.2}x) | {}",
            point.n_grids,
            1e3 * point.serial_seconds,
            1e3 * point.cold_seconds,
            1e3 * point.warm_seconds,
            point.parallel_speedup,
            point.phases,
        );
        println!(
            "         propagate ({} levels, widest {}): push {:.1} ms, pull {:.1} ms ({:.2}x), threaded {:.1} ms",
            point.propagate.n_levels,
            point.propagate.max_level_width,
            1e3 * point.propagate.push_serial_seconds,
            1e3 * point.propagate.pull_serial_seconds,
            point.propagate.pull_vs_push_speedup,
            1e3 * point.propagate.pull_threaded_seconds,
        );
        points.push(point);
    }

    // Registered-pipeline rows: short chain and (full profile) an
    // ISCAS-85-class chain. Clock periods are comfortable for each
    // chain's logic depth so slacks stay meaningfully positive.
    let sequential_rows: &[(&[&str], f64)] = if tiny {
        &[(&["rca4", "rca4"], 1500.0)]
    } else {
        &[
            (&["rca4", "rca4", "rca4"], 1500.0),
            (&["c432", "c880", "c432"], 3000.0),
        ]
    };
    let mut sequential = Vec::new();
    for &(cores, period) in sequential_rows {
        let point = sequential_point(cores, period, reps);
        println!(
            "pipeline {:?}: extract {:.1} ms, analyze serial {:.1} ms / parallel {:.1} ms, min period {:.1} ps (sigma {:.1})",
            cores,
            1e3 * point.extract_seconds,
            1e3 * point.analyze_serial_seconds,
            1e3 * point.analyze_parallel_seconds,
            point.min_period_ps_mean,
            point.min_period_ps_sigma,
        );
        for stage in &point.stages {
            println!(
                "         {}: required {:.1} ps, setup slack {:.1} ps, hold slack {}",
                stage.instance,
                stage.required_period_ps_mean,
                stage.setup_slack_ps_mean,
                stage
                    .hold_slack_ps_mean
                    .map_or("n/a".into(), |v| format!("{v:.1} ps")),
            );
        }
        sequential.push(point);
    }

    // The tiny profile defaults to its own path so a local smoke run
    // never clobbers the committed full-profile baseline.
    let default_out = if tiny {
        "BENCH_assembly.tiny.json"
    } else {
        "BENCH_assembly.json"
    };
    let out = std::env::var("SSTA_BENCH_OUT").unwrap_or_else(|_| default_out.into());
    let report = Report {
        schema: 5,
        profile: if tiny { "tiny" } else { "full" }.into(),
        effective_threads: ssta_core::parallel::effective_threads(0),
        eigen: duel,
        assembly: points,
        sequential,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json).expect("write benchmark JSON");
    println!("wrote {out}");
}

/// Times both eigensolvers on the paper's spatial correlation over an
/// `n`-grid die and cross-checks their results.
fn eigen_duel(n: usize, reps: usize) -> EigenDuel {
    // A wide-die grid layout with ~n grids, so the matrix has the same
    // banded-with-cutoff structure the design-level assembly produces.
    let cols = (n as f64).sqrt().ceil() as usize * 2;
    let centers: Vec<(f64, f64)> = (0..n)
        .map(|k| {
            let (r, c) = (k / cols, k % cols);
            ((c as f64 + 0.5) * 20.0, (r as f64 + 0.5) * 20.0)
        })
        .collect();
    let cov = CorrelationModel::paper().covariance_matrix(&centers, 20.0);

    let mut ql_seconds = f64::INFINITY;
    let mut ql = None;
    for _ in 0..reps {
        let t = Instant::now();
        let e = symmetric_eigen_ql(&cov).expect("QL eigensolve");
        ql_seconds = ql_seconds.min(t.elapsed().as_secs_f64());
        ql = Some(e);
    }
    let ql = ql.expect("at least one rep");

    let mut jacobi_seconds = f64::INFINITY;
    let mut jacobi = None;
    for _ in 0..reps.min(2) {
        let t = Instant::now();
        let e = symmetric_eigen_jacobi(&cov).expect("Jacobi eigensolve");
        jacobi_seconds = jacobi_seconds.min(t.elapsed().as_secs_f64());
        jacobi = Some(e);
    }
    let jacobi = jacobi.expect("at least one rep");

    let max_relative_eigenvalue_diff = ql
        .eigenvalues
        .iter()
        .zip(&jacobi.eigenvalues)
        .map(|(a, b)| (a - b).abs() / a.abs().max(1.0))
        .fold(0.0, f64::max);
    let max_reconstruction_error =
        reconstruction_error(&ql, &cov).max(reconstruction_error(&jacobi, &cov));

    // The default entry point must be the fast path.
    let via_default = symmetric_eigen(&cov).expect("default eigensolve");
    assert_eq!(
        via_default.eigenvalues, ql.eigenvalues,
        "symmetric_eigen no longer dispatches to the QL solver"
    );

    EigenDuel {
        n,
        jacobi_seconds,
        ql_seconds,
        speedup: jacobi_seconds / ql_seconds,
        max_relative_eigenvalue_diff,
        max_reconstruction_error,
    }
}

fn reconstruction_error(e: &ssta_math::eigen::SymmetricEigen, a: &Matrix) -> f64 {
    let n = e.eigenvalues.len();
    let mut lam = Matrix::zeros(n, n);
    for i in 0..n {
        lam[(i, i)] = e.eigenvalues[i];
    }
    e.eigenvectors
        .matmul(&lam)
        .expect("shape")
        .matmul(&e.eigenvectors.transposed())
        .expect("shape")
        .max_abs_diff(a)
        .expect("shape")
}

/// Measures one instance count: a cold parallel run first (first-touch
/// page faults and all), then `reps` warmed serial and parallel runs
/// (min-of-reps each), asserting parallel ≡ serial bit-identically.
/// `parallel_speedup` compares the two *warm* paths, so it reads ~1.0 on
/// a single-core machine and scales with cores elsewhere.
fn scaling_point(
    design: &ssta_core::Design,
    instances: usize,
    reps: usize,
    assert_pull_wins: bool,
) -> ScalingPoint {
    let serial_opts = AnalyzeOptions { threads: 1 };
    let parallel_opts = AnalyzeOptions::default();

    let t = Instant::now();
    let cold = analyze_with(design, CorrelationMode::Proposed, &parallel_opts).expect("parallel");
    let cold_seconds = t.elapsed().as_secs_f64();

    let mut serial_seconds = f64::INFINITY;
    let mut serial = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = analyze_with(design, CorrelationMode::Proposed, &serial_opts).expect("serial");
        serial_seconds = serial_seconds.min(t.elapsed().as_secs_f64());
        serial = Some(r);
    }
    let serial = serial.expect("at least one rep");
    assert_bit_identical(&serial, &cold);

    let mut warm_seconds = f64::INFINITY;
    let mut warm = cold;
    for _ in 0..reps {
        let t = Instant::now();
        warm = analyze_with(design, CorrelationMode::Proposed, &parallel_opts).expect("parallel");
        warm_seconds = warm_seconds.min(t.elapsed().as_secs_f64());
    }
    assert_bit_identical(&serial, &warm);

    // The partition alone is enough for the grid count — rebuilding the
    // full variable space would redo the covariance + eigensolve.
    let partition = ssta_core::hier::DesignPartition::build(
        design.die(),
        &design.translated_geometries(),
        design.config().grid_pitch_um(),
    );
    let propagate = propagate_duel(design, reps, assert_pull_wins);

    let total = warm.phases.total_seconds();
    let share = |phase: f64| if total > 0.0 { phase / total } else { 0.0 };
    ScalingPoint {
        instances,
        n_grids: partition.n_grids(),
        n_local_components: warm.n_local_components,
        serial_seconds,
        cold_seconds,
        warm_seconds,
        parallel_speedup: serial_seconds / warm_seconds,
        replace_share: share(warm.phases.replace_seconds),
        propagate_share: share(warm.phases.propagate_seconds),
        phases: warm.phases,
        propagate,
    }
}

/// Races the push-based reference propagation against the levelized pull
/// engine on the row's assembled design graph (min of `reps` each). The
/// pull passes share one schedule, timed separately — that once-per-graph
/// amortization is the engine's contract (all-pairs extraction and
/// criticality run hundreds of passes per schedule), while push re-sorts
/// inside every call. Asserts threaded pull ≡ serial pull bit for bit,
/// pull ≈ push within working precision at every primary output, and —
/// when `assert_pull_wins` — that serial pull is strictly faster.
fn propagate_duel(
    design: &ssta_core::Design,
    reps: usize,
    assert_pull_wins: bool,
) -> PropagateDuel {
    let assembled = assemble_design_graph(
        design,
        CorrelationMode::Proposed,
        &AnalyzeOptions::default(),
    )
    .expect("assembly");
    let graph = &assembled.graph;
    let sources = &assembled.sources;

    let mut push_serial_seconds = f64::INFINITY;
    let mut push = None;
    for _ in 0..reps {
        let t = Instant::now();
        let arr = ssta_timing::propagate::forward(graph, sources).expect("push forward");
        push_serial_seconds = push_serial_seconds.min(t.elapsed().as_secs_f64());
        push = Some(arr);
    }
    let push = push.expect("at least one rep");

    let mut schedule_build_seconds = f64::INFINITY;
    let mut built = None;
    for _ in 0..reps {
        let t = Instant::now();
        let s = LevelSchedule::build(graph).expect("levelize");
        schedule_build_seconds = schedule_build_seconds.min(t.elapsed().as_secs_f64());
        built = Some(s);
    }
    let schedule = built.expect("at least one rep");

    let mut pull_serial_seconds = f64::INFINITY;
    let mut pull = None;
    for _ in 0..reps {
        let t = Instant::now();
        let arr = levels::forward(graph, &schedule, sources, 1).expect("pull forward");
        pull_serial_seconds = pull_serial_seconds.min(t.elapsed().as_secs_f64());
        pull = Some(arr);
    }
    let pull = pull.expect("at least one rep");

    let mut pull_threaded_seconds = f64::INFINITY;
    let mut threaded = None;
    for _ in 0..reps {
        let t = Instant::now();
        let arr = levels::forward(graph, &schedule, sources, 0).expect("threaded forward");
        pull_threaded_seconds = pull_threaded_seconds.min(t.elapsed().as_secs_f64());
        threaded = Some(arr);
    }
    let threaded = threaded.expect("at least one rep");

    assert_eq!(
        threaded, pull,
        "threaded pull propagation diverged from serial pull"
    );
    // Pull re-associates Clark's order-sensitive max, so against push it
    // agrees to working precision, not bit-exactly.
    for &v in graph.outputs() {
        let a = pull[v.0 as usize].as_ref().expect("PO reachable");
        let b = push[v.0 as usize].as_ref().expect("PO reachable");
        let rel = (a.mean() - b.mean()).abs() / b.mean().abs().max(1.0);
        assert!(rel < 1e-3, "pull vs push mean drift {rel:.3e} at a PO");
    }
    if assert_pull_wins {
        assert!(
            pull_serial_seconds < push_serial_seconds,
            "levelized pull ({:.3} ms) failed to beat push ({:.3} ms)",
            1e3 * pull_serial_seconds,
            1e3 * push_serial_seconds,
        );
    }

    PropagateDuel {
        n_levels: schedule.n_levels(),
        max_level_width: schedule.max_width(),
        schedule_build_seconds,
        push_serial_seconds,
        pull_serial_seconds,
        pull_threaded_seconds,
        pull_vs_push_speedup: push_serial_seconds / pull_serial_seconds,
    }
}

/// Measures one registered-pipeline chain: stage extraction once, then
/// min-of-reps stage-by-stage sequential analysis, serial and with the
/// default thread count, asserted bit-identical before either is
/// reported.
fn sequential_point(cores: &[&str], clock_period_ps: f64, reps: usize) -> SequentialPoint {
    let config = SstaConfig::paper();
    let (models, extract_seconds) = registered_pipeline_models(cores, "DFF", &config);
    let design = registered_chain_design(&format!("pipe-{}", cores.join("-")), &models, config);

    let serial_opts = SequentialAnalyzeOptions {
        threads: 1,
        ..SequentialAnalyzeOptions::with_period(clock_period_ps)
    };
    let parallel_opts = SequentialAnalyzeOptions::with_period(clock_period_ps);

    let mut analyze_serial_seconds = f64::INFINITY;
    let mut serial = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = analyze_sequential(&design, &serial_opts).expect("serial sequential");
        analyze_serial_seconds = analyze_serial_seconds.min(t.elapsed().as_secs_f64());
        serial = Some(r);
    }
    let serial = serial.expect("at least one rep");

    let mut analyze_parallel_seconds = f64::INFINITY;
    let mut parallel = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = analyze_sequential(&design, &parallel_opts).expect("parallel sequential");
        analyze_parallel_seconds = analyze_parallel_seconds.min(t.elapsed().as_secs_f64());
        parallel = Some(r);
    }
    let parallel = parallel.expect("at least one rep");

    assert_eq!(
        parallel.min_period, serial.min_period,
        "threaded sequential analysis diverged from serial"
    );
    for (a, b) in serial.stages.iter().zip(&parallel.stages) {
        assert_eq!(
            a.setup_slack, b.setup_slack,
            "stage {} diverged",
            a.instance
        );
        assert_eq!(a.hold_slack, b.hold_slack, "stage {} diverged", a.instance);
    }

    SequentialPoint {
        cores: cores.iter().map(|c| c.to_string()).collect(),
        n_stages: models.len(),
        extract_seconds,
        analyze_serial_seconds,
        analyze_parallel_seconds,
        min_period_ps_mean: serial.min_period.mean(),
        min_period_ps_sigma: serial.min_period.std_dev(),
        stages: serial
            .stages
            .iter()
            .map(|s| StagePoint {
                instance: s.instance.clone(),
                required_period_ps_mean: s.required_period.mean(),
                setup_slack_ps_mean: s.setup_slack.mean(),
                hold_slack_ps_mean: s.hold_slack.as_ref().map(|h| h.mean()),
            })
            .collect(),
    }
}

fn assert_bit_identical(a: &DesignTiming, b: &DesignTiming) {
    assert_eq!(
        a.po_arrivals, b.po_arrivals,
        "parallel assembly diverged from serial"
    );
    assert_eq!(a.delay, b.delay, "parallel design delay diverged");
}
