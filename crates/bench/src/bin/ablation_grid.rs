//! Ablation B: sweep of the spatial-grid resolution.
//!
//! The paper partitions so a grid holds < 100 cells. Finer grids track
//! spatial correlation better but multiply PCA components (and thus every
//! canonical-form operation); coarser grids are cheaper but smear local
//! correlation. This sweep measures components, characterization and
//! extraction runtime, and model accuracy vs a fixed MC reference.
//!
//! `SSTA_BENCHMARKS` (default `c3540`) selects the circuit.

use ssta_bench::{mc_samples, pct2};
use ssta_core::{ExtractOptions, ModuleContext, SstaConfig};
use ssta_mc::McOptions;
use ssta_netlist::generators::iscas85;

fn main() {
    let name = std::env::var("SSTA_BENCHMARKS").unwrap_or_else(|_| "c3540".into());
    let name = name.split(',').next().expect("non-empty").trim().to_owned();
    let samples = mc_samples().min(4000);
    println!("ablation: grid-resolution sweep on {name} (MC samples = {samples})");
    println!(
        "{:>10} {:>7} {:>11} {:>10} {:>10} {:>8} {:>8}",
        "grid cells", "grids", "components", "char(s)", "extract(s)", "merr", "verr"
    );

    for &side in &[20usize, 14, 10, 7, 5] {
        let mut config = SstaConfig::paper();
        config.grid_side_cells = side;
        let netlist = iscas85(&name).expect("benchmark");
        let t0 = std::time::Instant::now();
        let ctx = ModuleContext::characterize(netlist, &config).expect("characterize");
        let char_s = t0.elapsed().as_secs_f64();

        let t1 = std::time::Instant::now();
        let model = ctx
            .extract_model(&ExtractOptions::default())
            .expect("extract");
        let extract_s = t1.elapsed().as_secs_f64();

        let mc = ssta_mc::module_delay_matrix(
            &ctx,
            &McOptions {
                samples,
                ..Default::default()
            },
        )
        .expect("module MC");
        let err = ssta_mc::model_vs_mc(&model.delay_matrix().expect("matrix"), &mc);

        println!(
            "{:>7}x{:<2} {:>7} {:>11} {:>10.2} {:>10.2} {:>8} {:>8}",
            side,
            side,
            ctx.geometry().n_grids(),
            ctx.layout().n_locals(),
            char_s,
            extract_s,
            pct2(err.merr),
            pct2(err.verr)
        );
    }
}
