//! The §I motivation, quantified: corner-based STA versus SSTA quantiles.
//!
//! For each circuit the binary reports the nominal STA delay, a classical
//! 3σ slow-corner STA delay (every parameter simultaneously at +3σ), the
//! SSTA 99.73 % quantile, and the resulting corner pessimism — the slack
//! the corner method wastes by ignoring that parameters do not all go bad
//! at once and that path delays average across the die.

use ssta_bench::{characterize, selected_benchmarks};
use ssta_core::yield_analysis::period_for_yield;
use ssta_timing::{sta, TimingGraph};

fn main() {
    println!("corner STA vs SSTA (99.73% = 3-sigma yield target)");
    println!(
        "{:<7} {:>10} {:>12} {:>12} {:>11} {:>10}",
        "circuit", "nominal", "3s corner", "SSTA q99.73", "pessimism", "SSTA sigma"
    );
    for name in selected_benchmarks() {
        let ctx = characterize(name);

        // Scalar STA on nominal delays.
        let nominal_graph: TimingGraph<f64> =
            TimingGraph::from_netlist(&ctx.netlist().clone(), |arc| arc.nominal_ps());
        let nominal = sta::graph_delay(&nominal_graph).expect("nominal STA");

        // 3-sigma slow corner: every parameter at +3 sigma simultaneously.
        let config = ctx.config().clone();
        let corner_graph: TimingGraph<f64> =
            TimingGraph::from_netlist(&ctx.netlist().clone(), |arc| {
                let cell = arc.cell();
                let mut derate = 1.0;
                for p in &config.parameters {
                    derate += 3.0 * p.sigma_rel * cell.sensitivity().get(p.param);
                }
                arc.nominal_ps() * derate
            });
        let corner = sta::graph_delay(&corner_graph).expect("corner STA");

        // SSTA distribution of the module delay (max over outputs).
        let arrivals = sta::output_arrivals(ctx.graph(), || ctx.zero()).expect("SSTA propagation");
        let delay = arrivals
            .into_iter()
            .flatten()
            .reduce(|a, b| a.maximum(&b))
            .expect("at least one output");
        let q = period_for_yield(&delay, 0.9973);

        println!(
            "{:<7} {:>9.0}ps {:>11.0}ps {:>11.0}ps {:>10.1}% {:>9.1}ps",
            name,
            nominal,
            corner,
            q,
            100.0 * (corner - q) / q,
            delay.std_dev()
        );
    }
}
