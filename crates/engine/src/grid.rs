//! Corner grids: cartesian products of named scenario axes.
//!
//! Real sign-off sweeps cross process × voltage × temperature ×
//! correlation axes into thousands of corners — the corner explosion
//! that motivates statistical timing in the first place. A
//! [`CornerGrid`] holds the *axes* (a few dozen [`ScenarioOverlay`]
//! deltas) and materializes individual [`Scenario`]s lazily by
//! mixed-radix index decomposition, so a 10×10×10×4 grid is a handful
//! of overlays plus an integer — never 4 000 up-front config clones.
//!
//! Grid-point names are `axis=point` pairs joined with `/`
//! (`process=slow/vdd=0.9/temp=125`), and are unique by construction:
//! point labels are unique within each axis and the separator
//! characters are rejected from names, so the cartesian product can
//! never alias. Overlays compose via [`ScenarioOverlay::layered`] —
//! later axes win on conflicting fields, sigma scales multiply.

use crate::error::EngineError;
use crate::scenario::{Scenario, ScenarioSet};
use ssta_core::{CorrelationMode, CorrelationModel, ScenarioOverlay};

fn spec_err(reason: impl Into<String>) -> EngineError {
    EngineError::Spec {
        reason: reason.into(),
    }
}

/// Characters used to assemble grid-point names; rejected from axis
/// names and point labels so names stay collision-free.
const NAME_SEPARATORS: [char; 2] = ['/', '='];

/// One named axis of a [`CornerGrid`]: an ordered list of labelled
/// [`ScenarioOverlay`] deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct GridAxis {
    name: String,
    points: Vec<(String, ScenarioOverlay)>,
}

impl GridAxis {
    /// An axis from explicit `(label, overlay)` points.
    pub fn new<L: Into<String>>(
        name: impl Into<String>,
        points: impl IntoIterator<Item = (L, ScenarioOverlay)>,
    ) -> Self {
        GridAxis {
            name: name.into(),
            points: points
                .into_iter()
                .map(|(label, overlay)| (label.into(), overlay))
                .collect(),
        }
    }

    /// A sigma-scaling axis: one point per scale factor, labelled
    /// `x{scale}` (e.g. `x0.8`, `x1.3`).
    pub fn sigma_scales(name: impl Into<String>, scales: &[f64]) -> Self {
        GridAxis::new(
            name,
            scales
                .iter()
                .map(|&s| (format!("x{s}"), ScenarioOverlay::new().with_sigma_scale(s))),
        )
    }

    /// A clock-target axis: one yield read-out point per target,
    /// labelled `{target}ps`.
    pub fn yield_targets(name: impl Into<String>, targets_ps: &[f64]) -> Self {
        GridAxis::new(
            name,
            targets_ps.iter().map(|&t| {
                (
                    format!("{t}ps"),
                    ScenarioOverlay::new().with_yield_target(t),
                )
            }),
        )
    }

    /// A correlation-handling axis over both analysis modes
    /// (`proposed`, `global-only`) — analysis-level only, so it never
    /// multiplies extractions.
    pub fn modes(name: impl Into<String>) -> Self {
        GridAxis::new(
            name,
            [
                (
                    "proposed",
                    ScenarioOverlay::new().with_mode(CorrelationMode::Proposed),
                ),
                (
                    "global-only",
                    ScenarioOverlay::new().with_mode(CorrelationMode::GlobalOnly),
                ),
            ],
        )
    }

    /// A spatial-correlation axis from labelled models.
    pub fn correlations<L: Into<String>>(
        name: impl Into<String>,
        models: impl IntoIterator<Item = (L, CorrelationModel)>,
    ) -> Self {
        GridAxis::new(
            name,
            models
                .into_iter()
                .map(|(label, m)| (label, ScenarioOverlay::new().with_correlation(m))),
        )
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The labelled points, in axis order.
    pub fn points(&self) -> &[(String, ScenarioOverlay)] {
        &self.points
    }

    /// Number of points on this axis.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the axis has no points (rejected at grid construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.name.is_empty() {
            return Err(spec_err("corner-grid axis name must not be empty"));
        }
        if self.name.contains(NAME_SEPARATORS) {
            return Err(spec_err(format!(
                "corner-grid axis name {:?} must not contain '/' or '='",
                self.name
            )));
        }
        if self.points.is_empty() {
            return Err(spec_err(format!(
                "corner-grid axis {:?} has no points",
                self.name
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for (label, _) in &self.points {
            if label.is_empty() {
                return Err(spec_err(format!(
                    "corner-grid axis {:?} has an empty point label",
                    self.name
                )));
            }
            if label.contains(NAME_SEPARATORS) {
                return Err(spec_err(format!(
                    "point label {label:?} on axis {:?} must not contain '/' or '='",
                    self.name
                )));
            }
            if !seen.insert(label.as_str()) {
                return Err(spec_err(format!(
                    "duplicate point label {label:?} on corner-grid axis {:?}",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

/// A validated cartesian corner grid: the lazy product of named
/// [`ScenarioOverlay`] axes, with `axis=point` corner names that are
/// unique by construction.
///
/// Construct via [`CornerGrid::builder`] or [`CornerGrid::from_axes`].
/// The grid is the lazy product of its axes: [`len`](Self::len) is the
/// product of the axis sizes, and [`scenario`](Self::scenario)
/// materializes any single corner on demand. The last axis varies
/// fastest, matching the name order.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerGrid {
    axes: Vec<GridAxis>,
    n_scenarios: usize,
}

impl CornerGrid {
    /// Starts an empty grid builder.
    pub fn builder() -> CornerGridBuilder {
        CornerGridBuilder { axes: Vec::new() }
    }

    /// Builds a grid directly from axes.
    ///
    /// # Errors
    ///
    /// Returns a spec error if there are no axes, an axis is empty or
    /// unnamed, axis names or point labels repeat or contain the name
    /// separators (`/`, `=`), or the corner count overflows.
    pub fn from_axes(axes: Vec<GridAxis>) -> Result<Self, EngineError> {
        if axes.is_empty() {
            return Err(spec_err("a corner grid needs at least one axis"));
        }
        let mut names = std::collections::BTreeSet::new();
        let mut n_scenarios: usize = 1;
        for axis in &axes {
            axis.validate()?;
            if !names.insert(axis.name.as_str()) {
                return Err(spec_err(format!(
                    "duplicate corner-grid axis name {:?}",
                    axis.name
                )));
            }
            n_scenarios = n_scenarios
                .checked_mul(axis.len())
                .ok_or_else(|| spec_err("corner-grid size overflows usize"))?;
        }
        Ok(CornerGrid { axes, n_scenarios })
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[GridAxis] {
        &self.axes
    }

    /// Total number of corners (product of axis sizes, at least 1).
    #[allow(clippy::len_without_is_empty)] // a valid grid is never empty
    pub fn len(&self) -> usize {
        self.n_scenarios
    }

    /// Materializes corner `index` — name and layered overlay.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn scenario(&self, index: usize) -> Scenario {
        assert!(
            index < self.n_scenarios,
            "corner index {index} out of range for a {} corner grid",
            self.n_scenarios
        );
        let mut name = String::new();
        let mut overlay = ScenarioOverlay::new();
        // Mixed-radix decomposition, last axis fastest.
        let mut radix_below = self.n_scenarios;
        let mut rest = index;
        for axis in &self.axes {
            radix_below /= axis.len();
            let point = rest / radix_below;
            rest %= radix_below;
            let (label, delta) = &axis.points[point];
            if !name.is_empty() {
                name.push('/');
            }
            name.push_str(&axis.name);
            name.push('=');
            name.push_str(label);
            overlay = overlay.layered(delta);
        }
        Scenario::with_overlay(name, overlay)
    }

    /// Iterates all corners in index order, materializing lazily.
    pub fn iter(&self) -> impl Iterator<Item = Scenario> + '_ {
        (0..self.n_scenarios).map(|i| self.scenario(i))
    }

    /// Materializes the whole grid as a [`ScenarioSet`] — for tests and
    /// small grids; sweeps should pass the grid itself so corners stay
    /// lazy.
    pub fn to_scenario_set(&self) -> ScenarioSet {
        self.iter().collect()
    }
}

/// Builder for [`CornerGrid`] (see [`CornerGrid::builder`]).
#[derive(Debug, Clone, Default)]
pub struct CornerGridBuilder {
    axes: Vec<GridAxis>,
}

impl CornerGridBuilder {
    /// Appends an axis (outer axes first; the last axis varies fastest).
    pub fn axis(mut self, axis: GridAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Validates and finishes the grid.
    ///
    /// # Errors
    ///
    /// See [`CornerGrid::from_axes`].
    pub fn finish(self) -> Result<CornerGrid, EngineError> {
        CornerGrid::from_axes(self.axes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_axis_grid() -> CornerGrid {
        CornerGrid::builder()
            .axis(GridAxis::sigma_scales("process", &[0.8, 1.0, 1.3]))
            .axis(GridAxis::modes("mode"))
            .axis(GridAxis::yield_targets("clock", &[900.0, 1100.0]))
            .finish()
            .unwrap()
    }

    #[test]
    fn len_is_the_product_and_names_follow_mixed_radix_order() {
        let grid = three_axis_grid();
        assert_eq!(grid.len(), 3 * 2 * 2);
        assert_eq!(
            grid.scenario(0).name,
            "process=x0.8/mode=proposed/clock=900ps"
        );
        // Last axis varies fastest.
        assert_eq!(
            grid.scenario(1).name,
            "process=x0.8/mode=proposed/clock=1100ps"
        );
        assert_eq!(
            grid.scenario(2).name,
            "process=x0.8/mode=global-only/clock=900ps"
        );
        assert_eq!(
            grid.scenario(11).name,
            "process=x1.3/mode=global-only/clock=1100ps"
        );
    }

    #[test]
    fn corners_layer_their_axis_overlays() {
        let grid = three_axis_grid();
        let corner = grid.scenario(11);
        assert_eq!(corner.overlay.sigma_scale, Some(1.3));
        assert_eq!(corner.overlay.mode, Some(CorrelationMode::GlobalOnly));
        assert_eq!(corner.overlay.yield_target_ps, Some(1100.0));
    }

    #[test]
    fn sigma_scales_on_two_axes_compose_multiplicatively() {
        let grid = CornerGrid::builder()
            .axis(GridAxis::sigma_scales("process", &[1.2]))
            .axis(GridAxis::sigma_scales("aging", &[1.5]))
            .finish()
            .unwrap();
        assert_eq!(grid.scenario(0).overlay.sigma_scale, Some(1.2 * 1.5));
    }

    #[test]
    fn large_grids_stay_lazy_and_names_stay_unique() {
        // A 10×10×10×4 grid: construction is O(axes), not O(corners).
        let tens: Vec<f64> = (0..10).map(|i| 1.0 + 0.05 * i as f64).collect();
        let targets: Vec<f64> = (0..10).map(|i| 900.0 + 50.0 * i as f64).collect();
        let labels: Vec<(String, ScenarioOverlay)> = (0..10)
            .map(|i| (format!("p{i}"), ScenarioOverlay::new()))
            .collect();
        let quads: Vec<f64> = vec![800.0, 900.0, 1000.0, 1100.0];
        let grid = CornerGrid::builder()
            .axis(GridAxis::sigma_scales("process", &tens))
            .axis(GridAxis::yield_targets("clock", &targets))
            .axis(GridAxis::new("placement", labels))
            .axis(GridAxis::yield_targets("vdd", &quads))
            .finish()
            .unwrap();
        assert_eq!(grid.len(), 4000);
        // Spot-check an arbitrary corner and the set-wide name
        // uniqueness invariant the scenario machinery relies on.
        let s = grid.scenario(1234);
        assert!(s.name.starts_with("process="));
        assert!(grid.to_scenario_set().duplicate_name().is_none());
    }

    #[test]
    fn invalid_grids_are_rejected() {
        let empty_grid = CornerGrid::builder().finish();
        assert!(matches!(empty_grid, Err(EngineError::Spec { .. })));

        let empty_axis = CornerGrid::from_axes(vec![GridAxis::sigma_scales("p", &[])]);
        assert!(empty_axis.is_err());

        let dup_axis =
            CornerGrid::from_axes(vec![GridAxis::modes("mode"), GridAxis::modes("mode")]);
        assert!(dup_axis.unwrap_err().to_string().contains("duplicate"));

        let dup_label = CornerGrid::from_axes(vec![GridAxis::sigma_scales("p", &[1.0, 1.0])]);
        assert!(dup_label.unwrap_err().to_string().contains("duplicate"));

        let separator =
            CornerGrid::from_axes(vec![GridAxis::new("a=b", [("x", ScenarioOverlay::new())])]);
        assert!(separator.is_err());
    }
}
