//! Pipeline accounting: per-run, per-scenario and per-batch statistics.
//!
//! Every stage of the pipeline reports into a [`RunStats`]; a batch
//! aggregates its scenarios' stats into a [`BatchStats`]. Both implement
//! [`std::fmt::Display`] with a compact one-line summary so examples and
//! services can log a run without dumping fields by hand.

use crate::store::{BreakerState, Codec, StoreHealth};
use ssta_core::{DesignTiming, PhaseTimings};
use std::fmt;

/// Accounting for one analysis run (one scenario's trip through the
/// pipeline, or a plain [`Engine::analyze`](crate::Engine::analyze)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Instances in the analyzed design.
    pub instances: usize,
    /// Distinct module definitions after fingerprint deduplication.
    pub distinct_modules: usize,
    /// Modules characterized + extracted in this run (cache misses this
    /// run led itself).
    pub extractions: usize,
    /// Misses resolved by waiting on another scenario's in-flight
    /// resolution of the same fingerprint (single-flight dedup). Always
    /// zero outside batch runs.
    pub coalesced: usize,
    /// Modules served from the in-memory session cache.
    pub memory_hits: usize,
    /// Modules served from the persistent model library.
    pub store_hits: usize,
    /// Store lookups that came back a clean miss (the artifact simply
    /// was not there) and fell through to extraction.
    pub store_misses: usize,
    /// Store artifacts rejected as corrupt/mismatched and recomputed.
    pub store_rejects: usize,
    /// Store *reads* that failed (transport down, retries exhausted,
    /// circuit breaker open) and gracefully degraded to re-extraction.
    /// The analysis still succeeded; only this counter shows the store
    /// misbehaved.
    pub store_degraded: usize,
    /// Models written to the persistent library in this run.
    pub store_writes: usize,
    /// Failed library writes (read-only mount, disk full, …). The cache
    /// is best-effort: a failed write never fails the analysis.
    pub store_write_failures: usize,
    /// Artifact bytes written to the persistent library in this run
    /// (envelope headers included).
    pub store_bytes_written: u64,
    /// Artifact bytes read from the persistent library in this run,
    /// counting hits only (envelope headers included).
    pub store_bytes_read: u64,
    /// Codec used for library writes; `None` when no store is attached.
    pub store_codec: Option<Codec>,
    /// Transport retries the backend stack performed during this run
    /// (from the store's [`StoreHealth`] delta).
    pub store_retries: u64,
    /// Corrupt artifacts the backend stack quarantined during this run.
    pub store_quarantined: u64,
    /// Cold-tier circuit-breaker trips during this run.
    pub store_breaker_trips: u64,
    /// Circuit-breaker state when the run finished;
    /// [`BreakerState::Closed`] for stacks without a breaker.
    pub store_breaker: BreakerState,
    /// Wall-clock seconds resolving models (fingerprinting, cache
    /// lookups, parallel extraction).
    pub resolve_seconds: f64,
    /// Wall-clock seconds assembling and analyzing the top level.
    pub assembly_seconds: f64,
    /// Per-phase breakdown of the design-level analysis inside
    /// [`assembly_seconds`](Self::assembly_seconds) (partition /
    /// covariance / eigen / replace / propagate).
    pub phases: PhaseTimings,
}

/// Formats a byte count with a binary-unit suffix.
fn human_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

impl fmt::Display for RunStats {
    /// One compact summary line, e.g.
    /// `4 instances / 1 distinct | extracted 1, memory 0, store 0 | wrote 1 (41.2 KiB, binary) | resolve 12.3 ms + assembly 4.5 ms`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instances / {} distinct | extracted {}, memory {}, store {}",
            self.instances,
            self.distinct_modules,
            self.extractions,
            self.memory_hits,
            self.store_hits
        )?;
        if self.coalesced > 0 {
            write!(f, ", coalesced {}", self.coalesced)?;
        }
        if self.store_rejects > 0 {
            write!(f, ", rejected {}", self.store_rejects)?;
        }
        if self.store_degraded > 0 {
            write!(f, ", degraded {}", self.store_degraded)?;
        }
        if let Some(codec) = self.store_codec {
            write!(
                f,
                " | wrote {} ({}, {})",
                self.store_writes,
                human_bytes(self.store_bytes_written),
                codec.name()
            )?;
            if self.store_write_failures > 0 {
                write!(f, ", {} failed", self.store_write_failures)?;
            }
        }
        if self.store_retries > 0 || self.store_quarantined > 0 {
            write!(
                f,
                " | retries {}, quarantined {}",
                self.store_retries, self.store_quarantined
            )?;
        }
        if self.store_breaker != BreakerState::Closed || self.store_breaker_trips > 0 {
            write!(
                f,
                " | breaker {} ({} trips)",
                self.store_breaker, self.store_breaker_trips
            )?;
        }
        write!(
            f,
            " | resolve {:.1} ms + assembly {:.1} ms",
            1e3 * self.resolve_seconds,
            1e3 * self.assembly_seconds
        )?;
        if self.phases.total_seconds() > 0.0 {
            write!(f, " ({})", self.phases)?;
        }
        Ok(())
    }
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The design-level timing result.
    pub timing: DesignTiming,
    /// What the run cost and where its models came from.
    pub stats: RunStats,
}

/// The result of one scenario within a batch.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The scenario's label.
    pub scenario: String,
    /// The design-level timing result under this scenario.
    pub timing: DesignTiming,
    /// Parametric yield `P{delay ≤ target}` when the scenario's overlay
    /// requested a yield target.
    pub timing_yield: Option<f64>,
    /// What this scenario cost and where its models came from.
    pub stats: RunStats,
}

/// Aggregate accounting for one [`Engine::analyze_batch`](crate::Engine::analyze_batch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Scenarios in the batch.
    pub scenarios: usize,
    /// Instances in the swept design (identical for every scenario).
    pub instances: usize,
    /// Distinct module fingerprints across the whole batch — the union
    /// over scenarios, after overlay-aware re-keying. This is the
    /// ceiling on extractions the batch may perform.
    pub distinct_fingerprints: usize,
    /// Modules actually characterized + extracted across the batch.
    /// Single-flight dedup guarantees `extractions ≤ distinct_fingerprints`
    /// however many scenarios race.
    pub extractions: usize,
    /// Resolutions coalesced onto another scenario's in-flight work.
    pub coalesced: usize,
    /// Modules served from the in-memory session cache.
    pub memory_hits: usize,
    /// Modules served from the persistent model library.
    pub store_hits: usize,
    /// Store lookups that came back a clean miss.
    pub store_misses: usize,
    /// Store artifacts rejected as corrupt/mismatched and recomputed.
    pub store_rejects: usize,
    /// Store reads that failed and gracefully degraded to
    /// re-extraction (the batch still completed).
    pub store_degraded: usize,
    /// Models written to the persistent library.
    pub store_writes: usize,
    /// Failed (best-effort) library writes.
    pub store_write_failures: usize,
    /// Artifact bytes written to the persistent library.
    pub store_bytes_written: u64,
    /// Artifact bytes read from the persistent library.
    pub store_bytes_read: u64,
    /// Codec used for library writes; `None` when no store is attached.
    pub store_codec: Option<Codec>,
    /// Transport retries the backend stack performed during the batch.
    pub store_retries: u64,
    /// Corrupt artifacts quarantined during the batch.
    pub store_quarantined: u64,
    /// Cold-tier circuit-breaker trips during the batch.
    pub store_breaker_trips: u64,
    /// Circuit-breaker state when the batch finished.
    pub store_breaker: BreakerState,
    /// Wall-clock seconds for the whole batch, scenario fan-out included.
    pub elapsed_seconds: f64,
    /// Design-level phase times summed over all scenarios (CPU seconds,
    /// not wall-clock: scenarios overlap).
    pub phases: PhaseTimings,
}

impl BatchStats {
    /// Folds one scenario's stats into the batch aggregate.
    pub(crate) fn absorb(&mut self, run: &RunStats) {
        self.extractions += run.extractions;
        self.coalesced += run.coalesced;
        self.memory_hits += run.memory_hits;
        self.store_hits += run.store_hits;
        self.store_misses += run.store_misses;
        self.store_rejects += run.store_rejects;
        self.store_degraded += run.store_degraded;
        self.store_writes += run.store_writes;
        self.store_write_failures += run.store_write_failures;
        self.store_bytes_written += run.store_bytes_written;
        self.store_bytes_read += run.store_bytes_read;
        self.phases.accumulate(&run.phases);
    }

    /// Folds a [`StoreHealth`] delta (the backend stack's counters over
    /// this batch) into the health-derived fields. Attributed at the
    /// batch boundary, not per scenario — scenarios share one backend
    /// stack, so finer attribution would double-count under races.
    pub(crate) fn absorb_health(&mut self, health: &StoreHealth) {
        self.store_retries += health.retries;
        self.store_quarantined += health.quarantined;
        self.store_breaker_trips += health.breaker_trips;
        self.store_breaker = health.breaker;
    }
}

impl fmt::Display for BatchStats {
    /// One compact summary line, e.g.
    /// `8 scenarios x 4 instances | 1 distinct fingerprint, extracted 1, coalesced 7 | 1.2 s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} scenarios x {} instances | {} distinct fingerprint{}, extracted {}, coalesced {}, memory {}, store {}",
            self.scenarios,
            self.instances,
            self.distinct_fingerprints,
            if self.distinct_fingerprints == 1 { "" } else { "s" },
            self.extractions,
            self.coalesced,
            self.memory_hits,
            self.store_hits
        )?;
        if self.store_rejects > 0 {
            write!(f, ", rejected {}", self.store_rejects)?;
        }
        if self.store_degraded > 0 {
            write!(f, ", degraded {}", self.store_degraded)?;
        }
        if let Some(codec) = self.store_codec {
            write!(
                f,
                " | wrote {} ({}, {}), read {}",
                self.store_writes,
                human_bytes(self.store_bytes_written),
                codec.name(),
                human_bytes(self.store_bytes_read)
            )?;
            if self.store_write_failures > 0 {
                write!(f, ", {} failed", self.store_write_failures)?;
            }
        }
        if self.store_retries > 0 || self.store_quarantined > 0 {
            write!(
                f,
                " | retries {}, quarantined {}",
                self.store_retries, self.store_quarantined
            )?;
        }
        if self.store_breaker != BreakerState::Closed || self.store_breaker_trips > 0 {
            write!(
                f,
                " | breaker {} ({} trips)",
                self.store_breaker, self.store_breaker_trips
            )?;
        }
        write!(f, " | {:.2} s", self.elapsed_seconds)
    }
}

/// The result of one scenario-sweep batch.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-scenario results, in scenario-set order.
    pub scenarios: Vec<ScenarioRun>,
    /// Batch-wide aggregate accounting.
    pub stats: BatchStats,
}

impl BatchRun {
    /// The first scenario run with the given label, if any.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioRun> {
        self.scenarios.iter().find(|s| s.scenario == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_display_is_one_compact_line() {
        let stats = RunStats {
            instances: 4,
            distinct_modules: 1,
            extractions: 1,
            store_writes: 1,
            store_bytes_written: 42_161,
            store_codec: Some(Codec::Binary),
            resolve_seconds: 0.0123,
            assembly_seconds: 0.0045,
            ..RunStats::default()
        };
        let line = stats.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("4 instances / 1 distinct"));
        assert!(line.contains("extracted 1"));
        assert!(line.contains("41.2 KiB"));
        assert!(line.contains("binary"));
        // Zero-valued degradations stay out of the line, and so does an
        // unpopulated phase breakdown.
        assert!(!line.contains("rejected"));
        assert!(!line.contains("coalesced"));
        assert!(!line.contains("partition"));
    }

    #[test]
    fn run_stats_display_includes_phase_breakdown_when_present() {
        let stats = RunStats {
            instances: 4,
            distinct_modules: 1,
            assembly_seconds: 0.0045,
            phases: PhaseTimings {
                partition_seconds: 0.0001,
                covariance_seconds: 0.0008,
                eigen_seconds: 0.0020,
                replace_seconds: 0.0009,
                propagate_seconds: 0.0004,
            },
            ..RunStats::default()
        };
        let line = stats.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("eigen 2.0"), "{line}");
        assert!(line.contains("propagate 0.4"), "{line}");
    }

    #[test]
    fn batch_stats_display_reports_the_dedup_win() {
        let stats = BatchStats {
            scenarios: 8,
            instances: 4,
            distinct_fingerprints: 1,
            extractions: 1,
            coalesced: 7,
            elapsed_seconds: 1.25,
            ..BatchStats::default()
        };
        let line = stats.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("8 scenarios x 4 instances"));
        assert!(line.contains("1 distinct fingerprint,"));
        assert!(line.contains("extracted 1"));
        assert!(line.contains("coalesced 7"));
    }
}
