//! The staged analysis pipeline.
//!
//! [`Engine::analyze`](crate::Engine::analyze) used to be a one-shot
//! monolith; it is now a thin wrapper over this subsystem, which splits
//! one analysis into four stages so a batch scheduler can interleave
//! many of them over shared state:
//!
//! 1. **plan** ([`plan`]) — fingerprint + dedupe the instantiated module
//!    definitions under one scenario's resolved configuration, reusing
//!    memoized netlist digests;
//! 2. **resolve** ([`resolve`]) — satisfy every planned fingerprint
//!    through the cache tiers (session memory → persistent library →
//!    parallel extraction), single-flighted across concurrent scenarios;
//! 3. **assemble** ([`assemble`]) — build the design from resolved
//!    models and run the top-level hierarchical analysis;
//! 4. **report** ([`report`]) — per-run / per-batch accounting with
//!    compact `Display` summaries.
//!
//! Shared state lives in [`SharedState`]: the session cache and store
//! are shared by every scenario of a batch (and across batches, via the
//! engine), while the [`SingleFlight`](singleflight::SingleFlight) table
//! is scoped to one batch — it dedupes *concurrency*, the caches dedupe
//! *storage*.

pub(crate) mod assemble;
pub(crate) mod plan;
pub(crate) mod report;
pub(crate) mod resolve;
pub(crate) mod singleflight;
pub(crate) mod sweep;

use crate::error::EngineError;
use crate::spec::DesignSpec;
use crate::store::{ModelStore, StorageBackend};
use report::{RunStats, ScenarioRun};
use singleflight::SingleFlight;
use ssta_core::{
    yield_analysis, CancelToken, CorrelationMode, ExtractOptions, NetlistDigest, SstaConfig,
    TimingModel,
};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

// The deterministic fork-join helpers moved into `ssta_core::parallel`
// so the design-level assembly shares them; the pipeline keeps its old
// names via re-export.
pub(crate) use ssta_core::parallel::{effective_threads, parallel_indexed};

/// The engine's in-memory model cache, shared across scenarios, runs and
/// worker threads.
///
/// Alongside the key → model map it maintains a structural-digest →
/// keys index, because one module resolves to *many* keys across
/// scenario overlays: invalidating a module must drop every
/// configuration's model, not just the base key.
#[derive(Debug, Default)]
pub(crate) struct SessionCache {
    inner: RwLock<SessionCacheInner>,
}

#[derive(Debug, Default)]
struct SessionCacheInner {
    models: HashMap<String, Arc<TimingModel>>,
    by_digest: HashMap<String, Vec<String>>,
}

impl SessionCache {
    /// The cached model for `key`, if any.
    pub(crate) fn get(&self, key: &str) -> Option<Arc<TimingModel>> {
        self.inner
            .read()
            .expect("session cache lock")
            .models
            .get(key)
            .cloned()
    }

    /// Whether `key` is cached.
    pub(crate) fn contains(&self, key: &str) -> bool {
        self.inner
            .read()
            .expect("session cache lock")
            .models
            .contains_key(key)
    }

    /// Caches `model` under `key`, indexed by the structural digest it
    /// was derived from.
    pub(crate) fn insert(&self, digest: &NetlistDigest, key: String, model: Arc<TimingModel>) {
        let mut inner = self.inner.write().expect("session cache lock");
        if inner.models.insert(key.clone(), model).is_none() {
            inner
                .by_digest
                .entry(digest.to_hex())
                .or_default()
                .push(key);
        }
    }

    /// Every cached key derived from `digest` (base configuration and
    /// scenario overlays alike), without dropping anything — callers
    /// remove fallible tiers first and only then commit the memory drop
    /// via [`take_digest_keys`](Self::take_digest_keys).
    pub(crate) fn digest_keys(&self, digest: &NetlistDigest) -> Vec<String> {
        self.inner
            .read()
            .expect("session cache lock")
            .by_digest
            .get(&digest.to_hex())
            .cloned()
            .unwrap_or_default()
    }

    /// Drops every cached key derived from `digest` (base configuration
    /// and scenario overlays alike), returning the dropped keys so the
    /// caller can mirror the removal into the persistent tier.
    pub(crate) fn take_digest_keys(&self, digest: &NetlistDigest) -> Vec<String> {
        let mut inner = self.inner.write().expect("session cache lock");
        let keys = inner.by_digest.remove(&digest.to_hex()).unwrap_or_default();
        for key in &keys {
            inner.models.remove(key);
        }
        keys
    }

    /// Drops every cached model.
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.write().expect("session cache lock");
        inner.models.clear();
        inner.by_digest.clear();
    }
}

/// One scenario's fully resolved analysis parameters (base setup with
/// its overlay already applied).
#[derive(Debug, Clone)]
pub(crate) struct ScenarioParams {
    /// Scenario label.
    pub name: String,
    /// Effective analysis configuration (extraction-relevant).
    pub config: SstaConfig,
    /// Effective extraction options (extraction-relevant).
    pub extract: ExtractOptions,
    /// Effective top-level correlation mode (analysis-level).
    pub mode: CorrelationMode,
    /// Optional yield read-out target in ps (analysis-level).
    pub yield_target_ps: Option<f64>,
}

/// State shared by every scenario of one batch.
pub(crate) struct SharedState<'a> {
    /// The engine's session cache.
    pub cache: &'a SessionCache,
    /// The batch's single-flight table.
    pub flights: &'a SingleFlight,
    /// The engine's persistent model library, if attached.
    pub store: Option<&'a ModelStore<Box<dyn StorageBackend>>>,
    /// Worker threads for the resolve stage (already defaulted, ≥ 1).
    pub threads: usize,
    /// The batch's cooperative cancellation token, polled at stage
    /// checkpoints (never mid-kernel, and never under a flight leader
    /// that other scenarios wait on).
    pub cancel: &'a CancelToken,
}

/// Runs one scenario through the full pipeline: plan → resolve →
/// assemble/analyze → report. Also returns the scenario's distinct
/// fingerprint keys so a batch can union them without re-planning.
pub(crate) fn run_scenario(
    spec: &DesignSpec,
    params: &ScenarioParams,
    shared: &SharedState<'_>,
) -> Result<(ScenarioRun, Vec<String>), EngineError> {
    shared.cancel.checkpoint()?;
    let resolve_started = Instant::now();
    let mut stats = RunStats {
        instances: spec.instances.len(),
        store_codec: shared.store.map(ModelStore::codec),
        ..RunStats::default()
    };

    let plan = plan::plan_modules(spec, &params.config, &params.extract);
    stats.distinct_modules = plan.distinct.len();

    resolve::resolve_models(
        spec,
        &plan.distinct,
        &params.config,
        &params.extract,
        shared,
        &mut stats,
    )?;
    stats.resolve_seconds = resolve_started.elapsed().as_secs_f64();

    // Checkpoint between resolve and assemble: everything resolved so
    // far is already published (session cache + library), so stopping
    // here wastes none of it — the assemble/analyze stage is the pure
    // per-request tail no other request can share.
    shared.cancel.checkpoint()?;
    let assembly_started = Instant::now();
    let timing = assemble::assemble_and_analyze(
        spec,
        &plan.keys,
        &params.config,
        params.mode,
        shared.cache,
        shared.threads,
    )?;
    stats.assembly_seconds = assembly_started.elapsed().as_secs_f64();
    stats.phases = timing.phases;

    let timing_yield = params
        .yield_target_ps
        .map(|target| yield_analysis::timing_yield(&timing.delay, target));

    let distinct_keys = plan.distinct.into_iter().map(|(key, _)| key).collect();
    Ok((
        ScenarioRun {
            scenario: params.name.clone(),
            timing,
            timing_yield,
            stats,
        },
        distinct_keys,
    ))
}
