//! Single-flight deduplication of in-flight module resolutions.
//!
//! When N scenarios — of one batch, or of concurrent requests in a
//! serving worker pool sharing a [`FlightGroup`](crate::FlightGroup) —
//! race on the same `(module, fingerprint)` key, exactly one of them —
//! the *leader* — performs the work (store lookup and, on a miss,
//! characterization + extraction); the rest block until the leader
//! finishes and share its outcome. This is the in-process analogue of
//! the in-flight request dedup a serving front-end needs: without it, a
//! parallel sweep would extract the same module once per scenario,
//! precisely the waste the extracted-model reuse story exists to avoid.
//!
//! The table deduplicates *concurrency*, not storage (the session cache
//! and the persistent library handle reuse across batches): a flight's
//! entry is removed the moment its leader publishes the outcome, so the
//! table stays empty at rest and can safely outlive any one batch.
//!
//! Followers are **cancel-aware**: a waiter whose [`CancelToken`] fires
//! detaches with [`EngineError::Cancelled`] instead of blocking until
//! the leader finishes — and the leader, who may be serving other
//! waiters, is never interrupted by a follower's cancellation.

use crate::error::EngineError;
use ssta_core::{CancelToken, TimingModel};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The shared outcome of one flight. Errors are `Arc`-shared because
/// every waiter jointly owns the leader's failure.
type FlightOutcome = Result<Arc<TimingModel>, Arc<EngineError>>;

/// One in-flight resolution: followers park on `ready` until the leader
/// publishes into `outcome`.
#[derive(Debug, Default)]
struct Flight {
    outcome: Mutex<Option<FlightOutcome>>,
    ready: Condvar,
}

/// How often a parked follower wakes to re-check its cancel token. The
/// condvar notification arrives immediately on publication; this bound
/// only caps how stale a *cancellation* can go unnoticed.
const FOLLOWER_POLL: Duration = Duration::from_millis(2);

/// A single-flight table keyed by module fingerprint.
#[derive(Debug, Default)]
pub(crate) struct SingleFlight {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl SingleFlight {
    /// Resolves `key`, guaranteeing `work` runs at most once per key
    /// *at a time* no matter how many callers race on it. Concurrent
    /// callers block until the leader's `work` completes and then share
    /// its outcome. Returns the outcome plus whether *this* caller led
    /// the flight (ran `work`).
    ///
    /// The leader gets the original error back; waiters get it wrapped
    /// in [`EngineError::Flight`], marking the failure as shared. A
    /// waiter whose `cancel` token fires detaches with
    /// [`EngineError::Cancelled`] without disturbing the flight. The
    /// leader ignores `cancel` once `work` has started — other waiters
    /// may depend on its result — so cancellation of a leader is the
    /// caller's responsibility via checkpoints *inside* `work`.
    ///
    /// Entries retire on publication: callers arriving after the
    /// outcome is published start a fresh flight, so completed results
    /// are never served stale from this table — cross-flight reuse is
    /// the session cache's and model store's job.
    pub(crate) fn resolve(
        &self,
        key: &str,
        cancel: &CancelToken,
        work: impl FnOnce() -> Result<Arc<TimingModel>, EngineError>,
    ) -> (Result<Arc<TimingModel>, EngineError>, bool) {
        let (flight, leading) = {
            let mut flights = self.flights.lock().expect("flight table lock");
            match flights.get(key) {
                Some(existing) => (Arc::clone(existing), false),
                None => {
                    let fresh = Arc::new(Flight::default());
                    flights.insert(key.to_owned(), Arc::clone(&fresh));
                    (fresh, true)
                }
            }
        };
        // The map lock is released before running/waiting on the flight,
        // so a slow flight never blocks resolutions of *other* keys.
        if leading {
            let (published, result) = match work() {
                Ok(model) => (Ok(Arc::clone(&model)), Ok(model)),
                Err(e) => {
                    // Waiters share a structural copy; the leader keeps
                    // the original (with its io::Error intact).
                    (Err(Arc::new(e.shared_copy())), Err(e))
                }
            };
            // Publish, wake followers, then retire the entry so the
            // next caller re-resolves through the caches instead of
            // reading a stale memoized outcome.
            *flight.outcome.lock().expect("flight outcome lock") = Some(published);
            self.flights.lock().expect("flight table lock").remove(key);
            flight.ready.notify_all();
            (result, true)
        } else {
            let mut outcome = flight.outcome.lock().expect("flight outcome lock");
            loop {
                if let Some(published) = outcome.as_ref() {
                    let shared = match published {
                        Ok(model) => Ok(Arc::clone(model)),
                        Err(e) => Err(EngineError::Flight(Arc::clone(e))),
                    };
                    return (shared, false);
                }
                if cancel.is_cancelled() {
                    // Detach: the flight continues for everyone else.
                    return (Err(EngineError::Cancelled), false);
                }
                outcome = flight
                    .ready
                    .wait_timeout(outcome, FOLLOWER_POLL)
                    .expect("flight outcome lock")
                    .0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    fn dummy_model() -> Arc<TimingModel> {
        use ssta_core::{ExtractOptions, ModuleContext, SstaConfig};
        let netlist = ssta_netlist::generators::ripple_carry_adder(1).expect("netlist");
        let ctx = ModuleContext::characterize(netlist, &SstaConfig::paper()).expect("ctx");
        Arc::new(
            ctx.extract_model(&ExtractOptions::default())
                .expect("model"),
        )
    }

    #[test]
    fn racing_callers_run_the_work_exactly_once() {
        let flights = SingleFlight::default();
        let executed = AtomicUsize::new(0);
        let led_count = AtomicUsize::new(0);
        let model = dummy_model();
        let live = CancelToken::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (outcome, led) = flights.resolve("k", &live, || {
                        executed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(10));
                        Ok(Arc::clone(&model))
                    });
                    assert!(outcome.is_ok());
                    if led {
                        led_count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        // With auto-retiring entries, late arrivals (after the leader
        // published) start fresh flights — so the work may run more
        // than once across the whole race, but every *concurrent*
        // cluster coalesces: never once per caller.
        let runs = executed.load(Ordering::SeqCst);
        assert!((1..=8).contains(&runs));
        assert_eq!(
            led_count.load(Ordering::SeqCst),
            runs,
            "every execution had exactly one leader"
        );
    }

    #[test]
    fn followers_coalesce_onto_a_parked_leader() {
        let flights = SingleFlight::default();
        let executed = AtomicUsize::new(0);
        let model = dummy_model();
        let live = CancelToken::new();
        let leader_in = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let (outcome, led) = flights.resolve("k", &live, || {
                    executed.fetch_add(1, Ordering::SeqCst);
                    leader_in.wait(); // followers join while we're in-flight
                    std::thread::sleep(Duration::from_millis(30));
                    Ok(Arc::clone(&model))
                });
                assert!(led);
                assert!(outcome.is_ok());
            });
            leader_in.wait();
            for _ in 0..4 {
                s.spawn(|| {
                    let (outcome, led) = flights.resolve("k", &live, || {
                        executed.fetch_add(1, Ordering::SeqCst);
                        Ok(Arc::clone(&model))
                    });
                    assert!(!led, "joined mid-flight: must follow");
                    assert!(outcome.is_ok());
                });
            }
        });
        assert_eq!(executed.load(Ordering::SeqCst), 1, "one extraction total");
    }

    #[test]
    fn distinct_keys_fly_separately() {
        let flights = SingleFlight::default();
        let executed = AtomicUsize::new(0);
        let model = dummy_model();
        let live = CancelToken::new();
        for key in ["a", "b", "a"] {
            let (outcome, _) = flights.resolve(key, &live, || {
                executed.fetch_add(1, Ordering::SeqCst);
                Ok(Arc::clone(&model))
            });
            assert!(outcome.is_ok());
        }
        assert_eq!(
            executed.load(Ordering::SeqCst),
            3,
            "sequential resolutions each lead a fresh flight"
        );
    }

    #[test]
    fn waiters_share_the_leaders_failure() {
        let flights = SingleFlight::default();
        let live = CancelToken::new();
        let leader_in = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let (first, led) = flights.resolve("k", &live, || {
                    leader_in.wait();
                    std::thread::sleep(Duration::from_millis(20));
                    Err(EngineError::Spec {
                        reason: "boom".into(),
                    })
                });
                assert!(led);
                assert!(
                    matches!(first, Err(EngineError::Spec { .. })),
                    "leader keeps the original"
                );
            });
            leader_in.wait();
            let (second, led) = flights.resolve("k", &live, || unreachable!("joined mid-flight"));
            assert!(!led);
            assert!(
                matches!(second, Err(EngineError::Flight(_))),
                "waiters see the shared copy"
            );
        });
    }

    #[test]
    fn cancelled_follower_detaches_without_killing_the_leader() {
        let flights = SingleFlight::default();
        let model = dummy_model();
        let live = CancelToken::new();
        let doomed = CancelToken::new();
        let leader_in = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let (outcome, led) = flights.resolve("k", &live, || {
                    leader_in.wait();
                    std::thread::sleep(Duration::from_millis(60));
                    Ok(Arc::clone(&model))
                });
                assert!(led);
                assert!(outcome.is_ok(), "leader unaffected by follower cancel");
            });
            leader_in.wait();
            doomed.cancel();
            let start = Instant::now();
            let (outcome, led) =
                flights.resolve("k", &doomed, || unreachable!("joined mid-flight"));
            assert!(!led);
            assert!(
                matches!(outcome, Err(EngineError::Cancelled)),
                "cancelled follower detaches"
            );
            assert!(
                start.elapsed() < Duration::from_millis(50),
                "detach must not wait out the leader"
            );
        });
    }
}
