//! Single-flight deduplication of in-flight module resolutions.
//!
//! When N scenarios of a batch race on the same `(module, fingerprint)`
//! key, exactly one of them — the *leader* — performs the work (store
//! lookup and, on a miss, characterization + extraction); the rest block
//! until the leader finishes and share its outcome. This is the
//! in-process analogue of the in-flight request dedup a serving
//! front-end needs: without it, a parallel sweep would extract the same
//! module once per scenario, precisely the waste the extracted-model
//! reuse story exists to avoid.
//!
//! The table is scoped to one batch: it deduplicates *concurrency*, not
//! storage (the session cache and the persistent library handle reuse
//! across batches), so entries are never evicted — the table dies with
//! the batch.

use crate::error::EngineError;
use ssta_core::TimingModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The shared outcome of one flight. Errors are `Arc`-shared because
/// every waiter jointly owns the leader's failure.
type FlightOutcome = Result<Arc<TimingModel>, Arc<EngineError>>;

/// A per-batch single-flight table keyed by module fingerprint.
#[derive(Debug, Default)]
pub(crate) struct SingleFlight {
    flights: Mutex<HashMap<String, Arc<OnceLock<FlightOutcome>>>>,
}

impl SingleFlight {
    /// An empty table.
    pub(crate) fn new() -> Self {
        SingleFlight::default()
    }

    /// Resolves `key`, guaranteeing `work` runs at most once per key for
    /// the lifetime of this table no matter how many callers race on it.
    /// Concurrent callers block until the leader's `work` completes and
    /// then share its outcome; later callers get the memoized outcome
    /// immediately. Returns the outcome plus whether *this* caller led
    /// the flight (ran `work`).
    ///
    /// The leader gets the original error back; waiters get it wrapped
    /// in [`EngineError::Flight`], marking the failure as shared.
    pub(crate) fn resolve(
        &self,
        key: &str,
        work: impl FnOnce() -> Result<Arc<TimingModel>, EngineError>,
    ) -> (Result<Arc<TimingModel>, EngineError>, bool) {
        let cell = {
            let mut flights = self.flights.lock().expect("flight table lock");
            Arc::clone(flights.entry(key.to_owned()).or_default())
        };
        // The map lock is released before waiting on the cell, so a slow
        // flight never blocks resolutions of *other* keys.
        let mut led = false;
        let mut original_err = None;
        let outcome = cell
            .get_or_init(|| {
                led = true;
                match work() {
                    Ok(model) => Ok(model),
                    Err(e) => {
                        // Waiters share a structural copy; the leader
                        // keeps the original (with its io::Error intact).
                        let shared = Arc::new(e.shared_copy());
                        original_err = Some(e);
                        Err(shared)
                    }
                }
            })
            .clone();
        let result = match outcome {
            Ok(model) => Ok(model),
            Err(shared) => Err(match original_err.take() {
                Some(original) => original,
                None => EngineError::Flight(shared),
            }),
        };
        (result, led)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn dummy_model() -> Arc<TimingModel> {
        use ssta_core::{ExtractOptions, ModuleContext, SstaConfig};
        let netlist = ssta_netlist::generators::ripple_carry_adder(1).expect("netlist");
        let ctx = ModuleContext::characterize(netlist, &SstaConfig::paper()).expect("ctx");
        Arc::new(
            ctx.extract_model(&ExtractOptions::default())
                .expect("model"),
        )
    }

    #[test]
    fn racing_callers_run_the_work_exactly_once() {
        let flights = SingleFlight::new();
        let executed = AtomicUsize::new(0);
        let led_count = AtomicUsize::new(0);
        let model = dummy_model();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (outcome, led) = flights.resolve("k", || {
                        executed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Ok(Arc::clone(&model))
                    });
                    assert!(outcome.is_ok());
                    if led {
                        led_count.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(executed.load(Ordering::SeqCst), 1);
        assert_eq!(led_count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn distinct_keys_fly_separately() {
        let flights = SingleFlight::new();
        let executed = AtomicUsize::new(0);
        let model = dummy_model();
        for key in ["a", "b", "a"] {
            let (outcome, _) = flights.resolve(key, || {
                executed.fetch_add(1, Ordering::SeqCst);
                Ok(Arc::clone(&model))
            });
            assert!(outcome.is_ok());
        }
        assert_eq!(executed.load(Ordering::SeqCst), 2, "one flight per key");
    }

    #[test]
    fn waiters_share_the_leaders_failure() {
        let flights = SingleFlight::new();
        let (first, led) = flights.resolve("k", || {
            Err(EngineError::Spec {
                reason: "boom".into(),
            })
        });
        assert!(led);
        assert!(
            matches!(first, Err(EngineError::Spec { .. })),
            "leader keeps the original"
        );
        let (second, led) = flights.resolve("k", || unreachable!("flight is memoized"));
        assert!(!led);
        assert!(
            matches!(second, Err(EngineError::Flight(_))),
            "waiters see the shared copy"
        );
    }
}
