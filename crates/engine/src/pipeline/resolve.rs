//! Stage 2 — resolve: turn every planned fingerprint into a model.
//!
//! Three tiers, cheapest first:
//!
//! 1. the shared in-memory session cache;
//! 2. the persistent model library (when attached), with corrupt
//!    artifacts rejected, counted and transparently recomputed;
//! 3. characterization + extraction, fanned out over scoped worker
//!    threads.
//!
//! Tiers 2 and 3 run inside the batch's [`SingleFlight`] table: when
//! several scenarios miss on the same fingerprint concurrently, one
//! *leads* (loads or extracts, then publishes to the store and session
//! cache) and the rest *coalesce* — they block on the leader and share
//! its model. Extraction is a deterministic pure function of the
//! fingerprinted inputs, so neither the thread count nor who wins the
//! leader race can change any result bit — only the wall clock.

use crate::error::EngineError;
use crate::pipeline::report::RunStats;
use crate::pipeline::{parallel_indexed, SharedState};
use crate::spec::DesignSpec;
use ssta_core::{ExtractOptions, ModuleContext, SstaConfig, TimingModel};
use std::sync::Arc;

/// How one planned fingerprint was satisfied.
enum Resolution {
    /// Led the flight, but a just-retired flight's leader had already
    /// published the model to the session cache — a memory hit taken
    /// inside the flight to keep "extractions ≤ distinct fingerprints"
    /// airtight across the retire window.
    Memory,
    /// Led the flight; loaded from the persistent library.
    Store {
        /// Artifact bytes read (envelope included).
        bytes: u64,
    },
    /// Led the flight; characterized + extracted.
    Extracted {
        /// The store was consulted and reported a clean miss.
        missed: bool,
        /// A corrupt store artifact was rejected first (integrity or
        /// format defect in the artifact itself).
        rejected: bool,
        /// The store *read* failed (transport down, retries exhausted,
        /// breaker open) and the analysis degraded to re-extraction
        /// instead of failing.
        degraded: bool,
        /// Artifact bytes written on the best-effort store publish.
        wrote: Option<u64>,
        /// The best-effort store publish failed.
        write_failed: bool,
    },
    /// Coalesced onto another scenario's in-flight resolution.
    Coalesced,
}

/// Resolves every distinct planned module into the shared session cache,
/// recording tier hits into `stats`.
pub(crate) fn resolve_models(
    spec: &DesignSpec,
    distinct: &[(String, usize)],
    config: &SstaConfig,
    extract: &ExtractOptions,
    shared: &SharedState<'_>,
    stats: &mut RunStats,
) -> Result<(), EngineError> {
    // Tier 1: the session cache, shared across scenarios and runs.
    let mut jobs: Vec<(&String, usize)> = Vec::new();
    for (key, idx) in distinct {
        if shared.cache.contains(key) {
            stats.memory_hits += 1;
            continue;
        }
        jobs.push((key, *idx));
    }
    if jobs.is_empty() {
        return Ok(());
    }

    // Tiers 2 + 3, single-flighted and fanned out over workers.
    let run_job = |i: usize| -> Result<(Arc<TimingModel>, Resolution), EngineError> {
        let (key, idx) = jobs[i];
        // Checkpoint per job: a cancelled request stops before starting
        // (or following) the next flight, never under one it leads.
        shared.cancel.checkpoint()?;
        let mut led_how = None;
        let (outcome, led) = shared.flights.resolve(key, shared.cancel, || {
            // Tier 1½: flights auto-retire on publication, so a caller
            // that raced past the tier-1 check and became leader *after*
            // another leader published must take the cached model, not
            // re-extract it.
            if let Some(model) = shared.cache.get(key) {
                led_how = Some(Resolution::Memory);
                return Ok(model);
            }
            // The leader publishes to the session cache *inside* the
            // flight (before it retires), so no later caller can slip
            // between publication and cache visibility and re-extract.
            let digest = spec.modules[idx].structural_digest();
            let mut missed = false;
            let mut rejected = false;
            let mut degraded = false;
            if let Some(store) = shared.store {
                match store.load_traced(key) {
                    Ok(Some((model, info))) => {
                        led_how = Some(Resolution::Store {
                            bytes: info.bytes as u64,
                        });
                        let model = Arc::new(model);
                        shared.cache.insert(digest, key.clone(), Arc::clone(&model));
                        return Ok(model);
                    }
                    Ok(None) => missed = true,
                    Err(e) if e.is_cancelled() => return Err(e),
                    // The artifact itself is defective: reject it,
                    // count it, recompute it.
                    Err(EngineError::Store { .. }) => rejected = true,
                    // The *read* failed — transport down, retries
                    // exhausted, breaker open. Degrade to re-extraction
                    // rather than failing the analysis: the store is an
                    // accelerator, never a single point of failure.
                    Err(_) => degraded = true,
                }
            }
            let def = &spec.modules[idx];
            let ctx = ModuleContext::characterize((*def.netlist).clone(), config)?;
            let model = Arc::new(ctx.extract_model(extract)?);
            let (wrote, write_failed) = match shared.store {
                // Best-effort: the model is already in hand, so a failed
                // cache write (read-only library, full disk) must not
                // fail the analysis.
                Some(store) => match store.save_traced(key, &model) {
                    Ok(bytes) => (Some(bytes as u64), false),
                    Err(_) => (None, true),
                },
                None => (None, false),
            };
            led_how = Some(Resolution::Extracted {
                missed,
                rejected,
                degraded,
                wrote,
                write_failed,
            });
            shared.cache.insert(digest, key.clone(), Arc::clone(&model));
            Ok(model)
        });
        let model = outcome?;
        let how = if led {
            led_how.expect("leader recorded its resolution")
        } else {
            Resolution::Coalesced
        };
        Ok((model, how))
    };

    let outcomes = parallel_indexed(jobs.len(), shared.threads.min(jobs.len()), run_job);

    // Fold in deterministic job order and publish to the session cache.
    for ((key, idx), outcome) in jobs.iter().zip(outcomes) {
        let (model, how) = outcome?;
        match how {
            Resolution::Memory => stats.memory_hits += 1,
            Resolution::Store { bytes } => {
                stats.store_hits += 1;
                stats.store_bytes_read += bytes;
            }
            Resolution::Extracted {
                missed,
                rejected,
                degraded,
                wrote,
                write_failed,
            } => {
                stats.extractions += 1;
                if missed {
                    stats.store_misses += 1;
                }
                if rejected {
                    stats.store_rejects += 1;
                }
                if degraded {
                    stats.store_degraded += 1;
                }
                if let Some(bytes) = wrote {
                    stats.store_writes += 1;
                    stats.store_bytes_written += bytes;
                }
                if write_failed {
                    stats.store_write_failures += 1;
                }
            }
            Resolution::Coalesced => stats.coalesced += 1,
        }
        let digest = spec.modules[*idx].structural_digest();
        shared.cache.insert(digest, (*key).clone(), model);
    }
    Ok(())
}
