//! Stage 3 — assemble: build the [`Design`] from resolved models and run
//! the top-level hierarchical analysis (partition, design PCA, variable
//! replacement, propagation).

use crate::error::EngineError;
use crate::pipeline::SessionCache;
use crate::spec::DesignSpec;
use ssta_core::{
    analyze_with, AnalyzeOptions, CorrelationMode, Design, DesignBuilder, DesignTiming, SstaConfig,
};

/// Builds the [`Design`] from the session cache (every planned key is
/// resolved by the time this stage runs).
pub(crate) fn assemble(
    spec: &DesignSpec,
    keys: &[Option<String>],
    config: &SstaConfig,
    cache: &SessionCache,
) -> Result<Design, EngineError> {
    let mut b = DesignBuilder::new(spec.name.clone(), spec.die, config.clone());
    for inst in &spec.instances {
        let key = keys[inst.module.0]
            .as_ref()
            .expect("instanced modules were planned");
        let model = cache.get(key).expect("model resolved above");
        b.add_instance(inst.name.clone(), model, None, inst.origin)?;
    }
    for c in &spec.connections {
        b.connect(c.from.0, c.from.1, c.to.0, c.to.1, c.wire_delay_ps)?;
    }
    for targets in &spec.pi_bindings {
        b.expose_input(targets.clone())?;
    }
    for &(inst, port) in &spec.po_sources {
        b.expose_output(inst, port)?;
    }
    Ok(b.finish()?)
}

/// Assembles and analyzes in one step — the tail of every scenario run.
/// `threads` is this scenario's share of the batch thread budget, passed
/// through to the parallel assembly phases so a scenario fan-out never
/// oversubscribes to workers² OS threads.
pub(crate) fn assemble_and_analyze(
    spec: &DesignSpec,
    keys: &[Option<String>],
    config: &SstaConfig,
    mode: CorrelationMode,
    cache: &SessionCache,
    threads: usize,
) -> Result<DesignTiming, EngineError> {
    let design = assemble(spec, keys, config, cache)?;
    Ok(analyze_with(&design, mode, &AnalyzeOptions { threads })?)
}
