//! Mega-sweeps: fingerprint-collapsed planning, sharded self-scheduling
//! execution, and streaming aggregation for corner grids.
//!
//! [`Engine::analyze_batch`](crate::Engine::analyze_batch) treats every
//! scenario as an independent pipeline trip and leans on the
//! single-flight table to dedupe racing extractions. That is the right
//! shape for a handful of heterogeneous scenarios; for a corner grid
//! with thousands of corners it wastes nearly everything — N scenarios
//! sharing K distinct extraction fingerprints would plan N times,
//! assemble N designs, run N eigendecompositions and materialize N full
//! [`DesignTiming`]s. This module replaces that with three layers:
//!
//! 1. **Collapse-aware planning** ([`plan_sweep`]): corners are grouped
//!    by [`extraction_signature`] *before any work runs*, so the sweep
//!    schedules exactly one resolve + assemble per distinct
//!    `(config, extract)` group — the single-flight table becomes a
//!    second line of defense instead of the only one. Within a group,
//!    corners are bucketed by correlation mode: mode and yield-target
//!    overlays skip re-extraction *and* re-assembly entirely.
//! 2. **Sharded execution** ([`run_sweep`]): workers self-schedule whole
//!    groups over a shared atomic cursor (the same chunked-cursor style
//!    as `ssta_math::parallel`), sharing one session cache, one
//!    single-flight table and one store. Per group the design is
//!    assembled once, one [`LevelSchedule`] is built and reused across
//!    mode buckets (graph *structure* is mode-independent), and the
//!    covariance/PCA basis is pulled from a sweep-wide cache keyed by
//!    the basis-relevant config fields — sigma-scale axes share one
//!    eigendecomposition across all their groups.
//! 3. **Streaming aggregation**: workers emit compact
//!    [`ScenarioRecord`]s through a bounded channel into an incremental
//!    [`SweepSummary`]; full `DesignTiming`s are dropped as soon as a
//!    mode bucket is summarized, so peak resident full results stay
//!    O(workers) no matter the grid size. Tests opt into
//!    [`SweepOptions::retain_results`] to get every timing back for
//!    bit-identity checks.

use crate::error::EngineError;
use crate::grid::CornerGrid;
use crate::pipeline::report::RunStats;
use crate::pipeline::{assemble, plan, resolve, SharedState};
use crate::spec::DesignSpec;
use ssta_core::{
    assemble_design_graph_with_basis, extraction_signature, propagate_assembled, yield_analysis,
    AnalyzeOptions, CoreError, CorrelationMode, DesignTiming, DesignVariables, ExtractOptions,
    LevelSchedule, PhaseTimings, SstaConfig,
};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Tuning knobs for [`Engine::analyze_sweep`](crate::Engine::analyze_sweep).
///
/// The default is the production shape: inherit the engine's thread
/// budget, stream records, auto-size the channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepOptions {
    /// Sweep worker threads; `0` inherits the engine's thread budget
    /// ([`EngineOptions::threads`](crate::EngineOptions::threads)).
    /// Every worker count produces bit-identical results.
    pub workers: usize,
    /// Keep every corner's full [`DesignTiming`] in
    /// [`SweepSummary::retained`]. Off by default: streaming mode keeps
    /// peak resident full results O(workers), which is the whole point
    /// on a 2 048-corner grid. Turn on for bit-identity tests and small
    /// grids only.
    pub retain_results: bool,
    /// Bounded result-channel capacity; `0` picks `2 × workers`.
    pub channel_capacity: usize,
}

/// One corner's roll-up in a [`SweepSummary`] — everything a sign-off
/// table needs, a few hundred bytes instead of a full [`DesignTiming`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The corner's grid name (`process=slow/clock=1100ps/…`).
    pub scenario: String,
    /// Index of the extraction-fingerprint group this corner collapsed
    /// into (groups are numbered in first-appearance corner order).
    pub group: usize,
    /// The correlation mode this corner was analyzed under.
    pub mode: CorrelationMode,
    /// Design delay mean in ps.
    pub mean_ps: f64,
    /// Design delay standard deviation in ps.
    pub sigma_ps: f64,
    /// The 99.73 % quantile (+3σ corner) of the design delay in ps.
    pub p9973_ps: f64,
    /// Parametric yield `P{delay ≤ target}` when the corner's overlay
    /// requested a yield target.
    pub timing_yield: Option<f64>,
    /// Index of the critical primary output (largest mean arrival;
    /// first wins ties).
    pub critical_po: usize,
    /// Whether this corner reused a sibling's design analysis outright
    /// (same group, same mode) instead of running its own. Reusers
    /// carry zeroed [`phases`](Self::phases); the analysis cost sits on
    /// the one record per `(group, mode)` with `reused_analysis: false`,
    /// so summing phases over records never double-counts.
    pub reused_analysis: bool,
    /// Per-corner analysis phase breakdown (see
    /// [`reused_analysis`](Self::reused_analysis) for attribution).
    pub phases: PhaseTimings,
}

/// One corner's full result, kept only in
/// [`SweepOptions::retain_results`] mode. Corners of one
/// `(group, mode)` bucket share a single [`Arc`]'d timing.
#[derive(Debug, Clone)]
pub struct RetainedResult {
    /// The corner's grid name.
    pub scenario: String,
    /// The full design-level timing result.
    pub timing: Arc<DesignTiming>,
    /// Yield read-out, when requested by the corner's overlay.
    pub timing_yield: Option<f64>,
}

/// The streaming aggregate of one corner-grid sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    /// Corners swept (the grid size).
    pub scenarios: usize,
    /// Distinct extraction-fingerprint groups the corners collapsed
    /// into — the number of resolve + assemble passes the sweep ran.
    pub groups: usize,
    /// Design analyses actually run (distinct `(group, mode)` pairs);
    /// every other corner reused one of these.
    pub analyses: usize,
    /// Distinct module fingerprints across the whole sweep — the
    /// ceiling on extractions.
    pub distinct_fingerprints: usize,
    /// Modules actually characterized + extracted. On a cold engine
    /// this equals [`distinct_fingerprints`](Self::distinct_fingerprints).
    pub extractions: usize,
    /// Resolutions coalesced onto another group's in-flight work
    /// (non-zero only when an external engine shares the flight group).
    pub coalesced: usize,
    /// Modules served from the in-memory session cache.
    pub memory_hits: usize,
    /// Modules served from the persistent model library.
    pub store_hits: usize,
    /// Store lookups that came back a clean miss.
    pub store_misses: usize,
    /// Store artifacts rejected as corrupt/mismatched and recomputed.
    pub store_rejects: usize,
    /// Store reads that failed and gracefully degraded to
    /// re-extraction (the sweep still completed).
    pub store_degraded: usize,
    /// Models written to the persistent library.
    pub store_writes: usize,
    /// Failed (best-effort) library writes.
    pub store_write_failures: usize,
    /// Transport retries the backend stack performed during the sweep.
    pub store_retries: u64,
    /// Corrupt artifacts quarantined during the sweep.
    pub store_quarantined: u64,
    /// Cold-tier circuit-breaker trips during the sweep.
    pub store_breaker_trips: u64,
    /// Circuit-breaker state when the sweep finished;
    /// [`BreakerState::Closed`](crate::BreakerState::Closed) for stacks
    /// without a breaker.
    pub store_breaker: crate::store::BreakerState,
    /// Worker threads the sweep ran with.
    pub workers: usize,
    /// Peak number of full [`DesignTiming`]s resident at once. In
    /// streaming mode this is bounded by
    /// [`workers`](Self::workers); in retain-all mode it grows to
    /// [`analyses`](Self::analyses).
    pub peak_retained_results: usize,
    /// Wall-clock seconds for the whole sweep.
    pub elapsed_seconds: f64,
    /// Analysis phase times summed over the whole sweep (CPU seconds;
    /// workers overlap).
    pub phases: PhaseTimings,
    /// Per-corner roll-ups, in grid index order.
    pub records: Vec<ScenarioRecord>,
    /// Full per-corner results, in grid index order; empty unless
    /// [`SweepOptions::retain_results`] was set.
    pub retained: Vec<RetainedResult>,
}

impl SweepSummary {
    /// The record for a corner by grid name, if any.
    pub fn record(&self, scenario: &str) -> Option<&ScenarioRecord> {
        self.records.iter().find(|r| r.scenario == scenario)
    }

    /// The retained full result for a corner by grid name, if any
    /// (retain-all mode only).
    pub fn retained_result(&self, scenario: &str) -> Option<&RetainedResult> {
        self.retained.iter().find(|r| r.scenario == scenario)
    }
}

impl fmt::Display for SweepSummary {
    /// One compact summary line, e.g.
    /// `512 corners -> 8 groups / 16 analyses | 8 fingerprints, extracted 8 | peak 4 resident | 12.3 s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} corners -> {} group{} / {} analyses | {} fingerprint{}, extracted {}, memory {}, store {}",
            self.scenarios,
            self.groups,
            if self.groups == 1 { "" } else { "s" },
            self.analyses,
            self.distinct_fingerprints,
            if self.distinct_fingerprints == 1 { "" } else { "s" },
            self.extractions,
            self.memory_hits,
            self.store_hits,
        )?;
        if self.coalesced > 0 {
            write!(f, ", coalesced {}", self.coalesced)?;
        }
        if self.store_degraded > 0 {
            write!(f, ", degraded {}", self.store_degraded)?;
        }
        if self.store_retries > 0 || self.store_quarantined > 0 {
            write!(
                f,
                " | retries {}, quarantined {}",
                self.store_retries, self.store_quarantined
            )?;
        }
        write!(
            f,
            " | peak {} resident | {:.2} s",
            self.peak_retained_results, self.elapsed_seconds
        )
    }
}

/// Corners of one group that share a correlation mode — one design
/// analysis serves the whole bucket.
struct ModeBucket {
    mode: CorrelationMode,
    /// `(corner index, yield target)` per corner, in grid order.
    corners: Vec<(usize, Option<f64>)>,
}

/// One extraction-fingerprint group: every corner whose resolved
/// `(config, extract)` hash to the same [`extraction_signature`].
struct GroupPlan {
    config: SstaConfig,
    extract: ExtractOptions,
    buckets: Vec<ModeBucket>,
    /// Lowest corner index in the group — deterministic error anchor.
    first_corner: usize,
}

/// Groups a grid's corners by extraction signature and, within each
/// group, by correlation mode. Runs before any netlist work: the only
/// per-corner cost is one overlay resolution and one signature hash,
/// and only K distinct configs are retained.
fn plan_sweep(
    grid: &CornerGrid,
    base_config: &SstaConfig,
    base_extract: &ExtractOptions,
    base_mode: CorrelationMode,
) -> Vec<GroupPlan> {
    let mut groups: Vec<GroupPlan> = Vec::new();
    let mut by_signature: HashMap<String, usize> = HashMap::new();
    for index in 0..grid.len() {
        let scenario = grid.scenario(index);
        let (config, extract, mode) =
            scenario
                .overlay
                .resolve(base_config, base_extract, base_mode);
        let signature = extraction_signature(&config, &extract);
        let group = *by_signature.entry(signature).or_insert_with(|| {
            groups.push(GroupPlan {
                config,
                extract,
                buckets: Vec::new(),
                first_corner: index,
            });
            groups.len() - 1
        });
        let buckets = &mut groups[group].buckets;
        let corner = (index, scenario.overlay.yield_target_ps);
        match buckets.iter_mut().find(|b| b.mode == mode) {
            Some(bucket) => bucket.corners.push(corner),
            None => buckets.push(ModeBucket {
                mode,
                corners: vec![corner],
            }),
        }
    }
    groups
}

/// A bounded MPSC channel over `Mutex` + `Condvar` — the workspace's
/// no-async, no-unsafe concurrency idiom (the vendored crossbeam shim
/// provides scoped threads only). Senders block when full; `recv`
/// returns `None` once the queue is drained and every producer closed.
struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    producers: usize,
}

impl<T> Channel<T> {
    fn new(capacity: usize, producers: usize) -> Self {
        Channel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::with_capacity(capacity),
                producers,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    fn send(&self, item: T) {
        let mut state = self.state.lock().expect("sweep channel lock");
        while state.queue.len() >= self.capacity {
            state = self.not_full.wait(state).expect("sweep channel lock");
        }
        state.queue.push_back(item);
        drop(state);
        self.not_empty.notify_one();
    }

    fn close_producer(&self) {
        let mut state = self.state.lock().expect("sweep channel lock");
        state.producers -= 1;
        drop(state);
        // Wake the consumer even with an empty queue so it can observe
        // the producer count reaching zero.
        self.not_empty.notify_all();
    }

    fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().expect("sweep channel lock");
        loop {
            if let Some(item) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.producers == 0 {
                return None;
            }
            state = self.not_empty.wait(state).expect("sweep channel lock");
        }
    }
}

/// A saturating high-water-mark gauge over the number of full
/// `DesignTiming`s currently alive.
struct ResidencyGauge {
    current: AtomicUsize,
    peak: AtomicUsize,
}

impl ResidencyGauge {
    fn new() -> Self {
        ResidencyGauge {
            current: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    fn acquire(&self) {
        let now = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
    }

    fn release(&self) {
        self.current.fetch_sub(1, Ordering::SeqCst);
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

/// What workers stream to the aggregating consumer.
enum Event {
    /// One corner's roll-up (plus its shared timing in retain mode).
    Record {
        index: usize,
        record: ScenarioRecord,
        retained: Option<RetainedResult>,
    },
    /// One group finished its resolve stage: cache-tier accounting plus
    /// the group's distinct fingerprint keys and analysis count.
    Group {
        stats: RunStats,
        distinct_keys: Vec<String>,
        analyses: usize,
        basis_phases: PhaseTimings,
    },
    /// A group failed; `index` is the group's first corner (errors are
    /// reported for the lowest failing corner index, deterministically).
    Error { index: usize, error: EngineError },
}

/// The sweep-wide covariance/PCA basis cache.
///
/// `DesignVariables` depend on the die, the placed geometries and the
/// config's correlation/grid/PCA settings — *not* on sigma magnitudes —
/// and within one sweep the die and geometries are determined by the
/// spec plus those same config fields. So the cache key is the
/// serialized basis-relevant config subset, and sigma-scale axes hit
/// one shared eigendecomposition across all their groups.
struct BasisCache {
    entries: Mutex<HashMap<String, Arc<DesignVariables>>>,
}

impl BasisCache {
    fn new() -> Self {
        BasisCache {
            entries: Mutex::new(HashMap::new()),
        }
    }

    fn key(config: &SstaConfig) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            serde_json::to_string(&config.correlation).expect("correlation serializes"),
            config.cell_pitch_um,
            config.grid_side_cells,
            serde_json::to_string(&config.pca).expect("pca options serialize"),
            config.parameters.len(),
        )
    }

    fn get(&self, key: &str) -> Option<Arc<DesignVariables>> {
        self.entries
            .lock()
            .expect("basis cache lock")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: String, basis: Arc<DesignVariables>) {
        self.entries
            .lock()
            .expect("basis cache lock")
            .insert(key, basis);
    }
}

/// Processes one group end to end on the claiming worker: resolve the
/// group's models through the shared tiers, assemble the design once,
/// then run one analysis per mode bucket and stream a record per
/// corner. Returns the group-level accounting event.
#[allow(clippy::too_many_arguments)]
fn run_group(
    spec: &DesignSpec,
    grid: &CornerGrid,
    group_index: usize,
    group: &GroupPlan,
    shared: &SharedState<'_>,
    basis_cache: &BasisCache,
    gauge: &ResidencyGauge,
    retain: bool,
    events: &Channel<Event>,
) -> Result<Event, EngineError> {
    shared.cancel.checkpoint()?;
    let resolve_started = Instant::now();
    let mut stats = RunStats {
        instances: spec.instances.len(),
        ..RunStats::default()
    };
    let group_plan = plan::plan_modules(spec, &group.config, &group.extract);
    stats.distinct_modules = group_plan.distinct.len();
    resolve::resolve_models(
        spec,
        &group_plan.distinct,
        &group.config,
        &group.extract,
        shared,
        &mut stats,
    )?;
    stats.resolve_seconds = resolve_started.elapsed().as_secs_f64();

    shared.cancel.checkpoint()?;
    let assembly_started = Instant::now();
    let design = assemble::assemble(spec, &group_plan.keys, &group.config, shared.cache)?;

    // The shared covariance/PCA basis, built at most once per distinct
    // basis key across the whole sweep. Its phase cost is attributed to
    // the group event, not a record, so record sums never double-count.
    let mut basis_phases = PhaseTimings::default();
    let needs_basis = group
        .buckets
        .iter()
        .any(|b| b.mode == CorrelationMode::Proposed);
    let basis: Option<Arc<DesignVariables>> = if needs_basis {
        let key = BasisCache::key(&group.config);
        match basis_cache.get(&key) {
            Some(basis) => Some(basis),
            None => {
                // Raced builders may duplicate this work; the result is
                // deterministic, so last-insert-wins is harmless.
                let (vars, phases) = DesignVariables::build_profiled(&design, shared.threads)?;
                basis_phases = phases;
                let basis = Arc::new(vars);
                basis_cache.insert(key, Arc::clone(&basis));
                Some(basis)
            }
        }
    } else {
        None
    };

    // One analysis per mode bucket; one level schedule serves every
    // bucket (the graph structure is mode-independent — only the delay
    // coefficients differ).
    let mut schedule: Option<LevelSchedule> = None;
    for bucket in &group.buckets {
        shared.cancel.checkpoint()?;
        let assembled = assemble_design_graph_with_basis(
            &design,
            bucket.mode,
            &AnalyzeOptions {
                threads: shared.threads,
            },
            basis.as_deref(),
        )?;
        if schedule.is_none() {
            schedule = Some(LevelSchedule::build(&assembled.graph).map_err(CoreError::from)?);
        }
        let level_schedule = schedule.as_ref().expect("schedule built above");
        gauge.acquire();
        let timing = Arc::new(propagate_assembled(
            &assembled,
            level_schedule,
            shared.threads,
        )?);
        drop(assembled);

        // Critical primary output: largest mean arrival, first index
        // wins ties (deterministic regardless of worker count).
        let mut critical_po = 0;
        let mut critical_mean = f64::NEG_INFINITY;
        for (i, arrival) in timing.po_arrivals.iter().enumerate() {
            if arrival.mean() > critical_mean {
                critical_mean = arrival.mean();
                critical_po = i;
            }
        }
        for (slot, &(index, yield_target)) in bucket.corners.iter().enumerate() {
            let leader = slot == 0;
            let timing_yield = yield_target.map(|t| yield_analysis::timing_yield(&timing.delay, t));
            let record = ScenarioRecord {
                scenario: grid.scenario(index).name,
                group: group_index,
                mode: bucket.mode,
                mean_ps: timing.delay.mean(),
                sigma_ps: timing.delay.std_dev(),
                p9973_ps: timing.delay.quantile(0.9973),
                timing_yield,
                critical_po,
                reused_analysis: !leader,
                phases: if leader {
                    timing.phases
                } else {
                    PhaseTimings::default()
                },
            };
            let retained = retain.then(|| RetainedResult {
                scenario: record.scenario.clone(),
                timing: Arc::clone(&timing),
                timing_yield,
            });
            events.send(Event::Record {
                index,
                record,
                retained,
            });
        }
        // Streaming mode: the bucket is fully summarized, release the
        // full result now. Retained Arcs (if any) share the allocation,
        // so in retain mode the gauge stays held — that is the point of
        // measuring peak residency.
        if !retain {
            drop(timing);
            gauge.release();
        }
    }
    stats.assembly_seconds = assembly_started.elapsed().as_secs_f64();

    Ok(Event::Group {
        stats,
        distinct_keys: group_plan
            .distinct
            .into_iter()
            .map(|(key, _)| key)
            .collect(),
        analyses: group.buckets.len(),
        basis_phases,
    })
}

/// Runs a corner-grid sweep over shared engine state. See the
/// [module docs](self) for the three layers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sweep(
    spec: &DesignSpec,
    grid: &CornerGrid,
    options: &SweepOptions,
    workers: usize,
    base_config: &SstaConfig,
    base_extract: &ExtractOptions,
    base_mode: CorrelationMode,
    shared: &SharedState<'_>,
) -> Result<SweepSummary, EngineError> {
    let started = Instant::now();
    // Health is attributed at the sweep boundary: groups share one
    // backend stack, so per-group deltas would double-count.
    let health_before = shared.store.map(|s| s.health()).unwrap_or_default();
    let groups = plan_sweep(grid, base_config, base_extract, base_mode);

    // Each claimed group gets the budget divided by the group fan-out,
    // so the sweep never oversubscribes to workers² OS threads; with
    // fewer groups than workers the per-group stages get the surplus.
    let group_workers = workers.min(groups.len()).max(1);
    let shared = SharedState {
        cache: shared.cache,
        flights: shared.flights,
        store: shared.store,
        threads: (workers / group_workers).max(1),
        cancel: shared.cancel,
    };

    let capacity = if options.channel_capacity > 0 {
        options.channel_capacity
    } else {
        (2 * workers).max(4)
    };
    let events: Channel<Event> = Channel::new(capacity, group_workers);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let basis_cache = BasisCache::new();
    let gauge = ResidencyGauge::new();

    let n_corners = grid.len();
    let mut records: Vec<Option<ScenarioRecord>> = (0..n_corners).map(|_| None).collect();
    let mut retained: Vec<Option<RetainedResult>> = if options.retain_results {
        (0..n_corners).map(|_| None).collect()
    } else {
        Vec::new()
    };
    let mut summary = SweepSummary {
        scenarios: n_corners,
        groups: groups.len(),
        workers,
        ..SweepSummary::default()
    };
    let mut distinct: BTreeSet<String> = BTreeSet::new();
    let mut first_error: Option<(usize, EngineError)> = None;

    crossbeam::thread::scope(|scope| {
        for _ in 0..group_workers {
            scope.spawn(|_| {
                // Chunked self-scheduling: claim the next unprocessed
                // group off the shared cursor until the plan is drained
                // (or a sibling failed and further work is wasted).
                loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let g = cursor.fetch_add(1, Ordering::SeqCst);
                    if g >= groups.len() {
                        break;
                    }
                    let group = &groups[g];
                    match run_group(
                        spec,
                        grid,
                        g,
                        group,
                        &shared,
                        &basis_cache,
                        &gauge,
                        options.retain_results,
                        &events,
                    ) {
                        Ok(event) => events.send(event),
                        Err(error) => {
                            abort.store(true, Ordering::SeqCst);
                            events.send(Event::Error {
                                index: group.first_corner,
                                error,
                            });
                        }
                    }
                }
                events.close_producer();
            });
        }

        // The calling thread is the aggregating consumer: fold events
        // into the summary as they stream in, holding compact records
        // only — never the full timings (except in retain mode).
        while let Some(event) = events.recv() {
            match event {
                Event::Record {
                    index,
                    record,
                    retained: kept,
                } => {
                    summary.phases.accumulate(&record.phases);
                    records[index] = Some(record);
                    if let Some(kept) = kept {
                        retained[index] = Some(kept);
                    }
                }
                Event::Group {
                    stats,
                    distinct_keys,
                    analyses,
                    basis_phases,
                } => {
                    summary.analyses += analyses;
                    summary.extractions += stats.extractions;
                    summary.coalesced += stats.coalesced;
                    summary.memory_hits += stats.memory_hits;
                    summary.store_hits += stats.store_hits;
                    summary.store_misses += stats.store_misses;
                    summary.store_rejects += stats.store_rejects;
                    summary.store_degraded += stats.store_degraded;
                    summary.store_writes += stats.store_writes;
                    summary.store_write_failures += stats.store_write_failures;
                    summary.phases.accumulate(&basis_phases);
                    distinct.extend(distinct_keys);
                }
                Event::Error { index, error } => {
                    if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                        first_error = Some((index, error));
                    }
                }
            }
        }
    })
    .expect("sweep workers do not panic");

    if let Some((_, error)) = first_error {
        return Err(error);
    }
    let mut final_records = Vec::with_capacity(n_corners);
    for (index, record) in records.into_iter().enumerate() {
        match record {
            Some(record) => final_records.push(record),
            // No record and no error: a worker observed the abort flag
            // (cancellation) before claiming this corner's group.
            None => {
                shared.cancel.checkpoint()?;
                return Err(EngineError::Spec {
                    reason: format!("sweep dropped corner {index} without an error"),
                });
            }
        }
    }
    summary.records = final_records;
    if options.retain_results {
        summary.retained = retained.into_iter().map(|r| r.expect("retained")).collect();
    }
    summary.distinct_fingerprints = distinct.len();
    summary.peak_retained_results = gauge.peak();
    if let Some(store) = shared.store {
        let health = store.health().delta(&health_before);
        summary.store_retries = health.retries;
        summary.store_quarantined = health.quarantined;
        summary.store_breaker_trips = health.breaker_trips;
        summary.store_breaker = health.breaker;
    }
    summary.elapsed_seconds = started.elapsed().as_secs_f64();
    Ok(summary)
}
