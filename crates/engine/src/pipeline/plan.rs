//! Stage 1 — plan: fingerprint and deduplicate module definitions.
//!
//! The plan walks the spec's *instantiated* definitions (a registered but
//! unused definition must not cost an extraction), keys each one by its
//! overlay-aware module fingerprint, and collapses duplicates. The
//! expensive half of the fingerprint — canonicalizing the netlist — is
//! memoized on the [`ModuleDef`](crate::ModuleDef) itself, so a batch of
//! K scenarios re-keys the same netlist with K cheap digest+config
//! combinations, not K full canonicalizations.

use crate::spec::DesignSpec;
use ssta_core::{module_fingerprint_from_digest, ExtractOptions, SstaConfig};

/// One scenario's resolved module plan.
#[derive(Debug)]
pub(crate) struct ModulePlan {
    /// Fingerprint key per module slot; `None` for definitions without
    /// instances.
    pub keys: Vec<Option<String>>,
    /// Distinct `(key, module index)` pairs in first-instantiation order.
    pub distinct: Vec<(String, usize)>,
}

/// Plans `spec` under one scenario's resolved `(config, extract)` pair.
pub(crate) fn plan_modules(
    spec: &DesignSpec,
    config: &SstaConfig,
    extract: &ExtractOptions,
) -> ModulePlan {
    let mut keys: Vec<Option<String>> = vec![None; spec.modules.len()];
    for inst in &spec.instances {
        let idx = inst.module.0;
        if keys[idx].is_none() {
            let def = &spec.modules[idx];
            keys[idx] = Some(
                module_fingerprint_from_digest(def.structural_digest(), config, extract).to_hex(),
            );
        }
    }
    let mut distinct: Vec<(String, usize)> = Vec::new();
    for (idx, key) in keys.iter().enumerate() {
        let Some(key) = key else { continue };
        if !distinct.iter().any(|(k, _)| k == key) {
            distinct.push((key.clone(), idx));
        }
    }
    ModulePlan { keys, distinct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DesignSpec;
    use ssta_netlist::{generators, DieRect};

    #[test]
    fn duplicate_definitions_collapse_and_unused_ones_are_skipped() {
        let die = DieRect {
            width: 60.0,
            height: 40.0,
        };
        let mut b = DesignSpec::builder("plan", die);
        let ma = b.add_module(generators::ripple_carry_adder(4).expect("adder"));
        let mb = b.add_module(
            generators::ripple_carry_adder(4)
                .expect("adder")
                .renamed("alias"),
        );
        let _unused = b.add_module(generators::ripple_carry_adder(7).expect("adder"));
        let u0 = b.add_instance("u0", ma, (0.0, 0.0)).expect("u0");
        let u1 = b.add_instance("u1", mb, (30.0, 0.0)).expect("u1");
        for k in 0..9 {
            b.expose_input(vec![(u0, k)]);
            b.expose_input(vec![(u1, k)]);
        }
        b.expose_output(u0, 4);
        let spec = b.finish().expect("spec");

        let plan = plan_modules(&spec, &SstaConfig::paper(), &ExtractOptions::default());
        assert_eq!(plan.distinct.len(), 1, "content dedupe across definitions");
        assert_eq!(plan.keys[0], plan.keys[1]);
        assert!(plan.keys[2].is_none(), "unused definition is not keyed");
    }
}
