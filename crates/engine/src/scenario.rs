//! Named scenario sets for batch analysis.
//!
//! A [`ScenarioSet`] is an ordered collection of named
//! [`ScenarioOverlay`]s over an engine's base setup — the input to
//! [`Engine::analyze_batch`](crate::Engine::analyze_batch), which sweeps
//! one [`DesignSpec`](crate::DesignSpec) across every scenario over one
//! shared model store. Scenarios that resolve to the same
//! `(SstaConfig, ExtractOptions)` pair share cached models by
//! construction (fingerprints are content-derived), and concurrent
//! misses on one fingerprint are single-flighted so the batch never
//! extracts a module twice.

use ssta_core::{CorrelationMode, CorrelationModel, ExtractOptions, ScenarioOverlay, SstaConfig};
use std::collections::BTreeSet;

/// A named scenario: a label plus a delta over the engine's base setup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    /// Scenario label, used in reports and stats tables.
    pub name: String,
    /// The configuration delta over the engine's base setup.
    pub overlay: ScenarioOverlay,
}

impl Scenario {
    /// A scenario reproducing the base setup exactly (empty overlay).
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            overlay: ScenarioOverlay::default(),
        }
    }

    /// A scenario with an explicit overlay.
    pub fn with_overlay(name: impl Into<String>, overlay: ScenarioOverlay) -> Self {
        Scenario {
            name: name.into(),
            overlay,
        }
    }

    /// Replaces the analysis configuration (extraction-relevant: re-keys
    /// cached models).
    pub fn with_config(mut self, config: SstaConfig) -> Self {
        self.overlay.config = Some(config);
        self
    }

    /// Replaces the extraction options (extraction-relevant: re-keys
    /// cached models).
    pub fn with_extract(mut self, extract: ExtractOptions) -> Self {
        self.overlay.extract = Some(extract);
        self
    }

    /// Overrides the top-level correlation mode (analysis-level: cached
    /// models are shared with the base).
    pub fn with_mode(mut self, mode: CorrelationMode) -> Self {
        self.overlay.mode = Some(mode);
        self
    }

    /// Requests a yield read-out at `target_ps` (analysis-level: cached
    /// models are shared with the base).
    pub fn with_yield_target(mut self, target_ps: f64) -> Self {
        self.overlay.yield_target_ps = Some(target_ps);
        self
    }

    /// Scales every parameter sigma by `scale` (extraction-relevant:
    /// re-keys cached models).
    pub fn with_sigma_scale(mut self, scale: f64) -> Self {
        self.overlay.sigma_scale = Some(scale);
        self
    }

    /// Replaces the spatial-correlation model (extraction-relevant:
    /// re-keys cached models).
    pub fn with_correlation(mut self, correlation: CorrelationModel) -> Self {
        self.overlay.correlation = Some(correlation);
        self
    }
}

/// An ordered set of named scenarios, analyzed as one batch.
///
/// Scenario names key the batch report
/// ([`BatchRun::scenario`](crate::BatchRun::scenario)) and the
/// per-scenario stats tables, so they must be unique. Duplicates are
/// detected at insertion time and rejected when the set reaches an
/// engine ([`Engine::analyze_batch`](crate::Engine::analyze_batch)
/// returns a spec error naming the offender) — construction itself
/// stays infallible so builder chains read cleanly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
    names: BTreeSet<String>,
    duplicate: Option<String>,
}

impl ScenarioSet {
    /// An empty set.
    pub fn new() -> Self {
        ScenarioSet::default()
    }

    /// The single-scenario set equivalent to a plain
    /// [`Engine::analyze`](crate::Engine::analyze) — one scenario named
    /// `base` with an empty overlay.
    pub fn baseline() -> Self {
        ScenarioSet::new().with(Scenario::new("base"))
    }

    /// Appends a scenario (builder style).
    pub fn with(mut self, scenario: Scenario) -> Self {
        self.push(scenario);
        self
    }

    /// Appends a scenario.
    pub fn push(&mut self, scenario: Scenario) {
        if !self.names.insert(scenario.name.clone()) && self.duplicate.is_none() {
            self.duplicate = Some(scenario.name.clone());
        }
        self.scenarios.push(scenario);
    }

    /// The first duplicated scenario name, if any — what the engine
    /// reports when rejecting the set.
    pub fn duplicate_name(&self) -> Option<&str> {
        self.duplicate.as_deref()
    }

    /// The scenarios, in analysis order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Iterates the scenarios in analysis order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.scenarios.iter()
    }
}

impl FromIterator<Scenario> for ScenarioSet {
    fn from_iter<I: IntoIterator<Item = Scenario>>(iter: I) -> Self {
        let mut set = ScenarioSet::new();
        for scenario in iter {
            set.push(scenario);
        }
        set
    }
}

impl<'a> IntoIterator for &'a ScenarioSet {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;
    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_composes() {
        let set = ScenarioSet::new()
            .with(Scenario::new("nominal").with_yield_target(1500.0))
            .with(Scenario::new("global-only").with_mode(CorrelationMode::GlobalOnly));
        assert_eq!(set.len(), 2);
        assert_eq!(set.scenarios()[0].name, "nominal");
        assert_eq!(set.scenarios()[0].overlay.yield_target_ps, Some(1500.0));
        assert!(!set.scenarios()[1].overlay.touches_extraction_inputs());
    }

    #[test]
    fn baseline_is_one_empty_overlay() {
        let set = ScenarioSet::baseline();
        assert_eq!(set.len(), 1);
        assert_eq!(set.scenarios()[0].overlay, ScenarioOverlay::default());
        assert!(set.duplicate_name().is_none());
    }

    #[test]
    fn duplicate_names_are_detected_at_insertion() {
        let set = ScenarioSet::new()
            .with(Scenario::new("fast"))
            .with(Scenario::new("slow"))
            .with(Scenario::new("fast").with_yield_target(900.0));
        assert_eq!(set.duplicate_name(), Some("fast"));
        // The first offender sticks even if more duplicates follow.
        let set = set.with(Scenario::new("slow"));
        assert_eq!(set.duplicate_name(), Some("fast"));
        assert_eq!(set.len(), 4);

        let collected: ScenarioSet = ["a", "b", "a"].iter().map(|n| Scenario::new(*n)).collect();
        assert_eq!(collected.duplicate_name(), Some("a"));
    }
}
