//! The persistent model library: a content-addressed, versioned on-disk
//! store of extracted [`TimingModel`]s.
//!
//! # On-disk format (version 1)
//!
//! Each model lives in its own file, `<root>/<k0k1>/<key>.stm`, where
//! `key` is the module's 64-hex-character [`ModuleFingerprint`] and
//! `k0k1` its first two characters (sharding keeps directories small).
//! The file is a fixed header followed by a JSON payload:
//!
//! | bytes | contents |
//! |---|---|
//! | 0..4 | magic `SSTM` |
//! | 4..6 | format version, u16 little-endian (currently 1) |
//! | 6..14 | payload length in bytes, u64 little-endian |
//! | 14..22 | integrity stamp: first 8 bytes of SHA-256(payload), big-endian |
//! | 22.. | payload: the serialized [`TimingModel`] |
//!
//! Readers reject — with a precise [`EngineError::Store`] reason — files
//! that are truncated, carry the wrong magic or an unsupported version,
//! fail the integrity check, or do not decode. Writes go through a
//! temporary file renamed into place, so a crashed writer never leaves a
//! half-written artifact under a valid key.

use crate::error::EngineError;
use ssta_core::TimingModel;
use ssta_math::digest::sha256;
use std::fs;
use std::path::{Path, PathBuf};

/// Magic bytes opening every artifact.
pub const MAGIC: [u8; 4] = *b"SSTM";
/// The current (and only) format version.
pub const FORMAT_VERSION: u16 = 1;
const HEADER_LEN: usize = 22;

/// A content-addressed, disk-backed library of extracted timing models.
#[derive(Debug)]
pub struct ModelStore {
    root: PathBuf,
}

impl ModelStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ModelStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: &str) -> PathBuf {
        let shard = key.get(..2).unwrap_or("xx");
        self.root.join(shard).join(format!("{key}.stm"))
    }

    /// Whether an artifact exists under `key` (without validating it).
    pub fn contains(&self, key: &str) -> bool {
        self.path_of(key).is_file()
    }

    /// Loads and validates the model stored under `key`; `Ok(None)` if
    /// absent.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] for corrupt, truncated or
    /// wrong-version artifacts and [`EngineError::Io`] for read failures.
    pub fn load(&self, key: &str) -> Result<Option<TimingModel>, EngineError> {
        let path = self.path_of(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            // NotADirectory: a path component is missing or not a
            // directory — either way, no artifact exists under this key.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::NotFound | std::io::ErrorKind::NotADirectory
                ) =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        };
        let payload = decode_envelope(&bytes)?;
        let model: TimingModel =
            serde_json::from_slice(payload).map_err(|e| EngineError::Store {
                reason: format!("payload of `{key}` does not decode: {e}"),
            })?;
        Ok(Some(model))
    }

    /// Stores `model` under `key`, atomically replacing any previous
    /// artifact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] for write failures.
    pub fn save(&self, key: &str, model: &TimingModel) -> Result<(), EngineError> {
        let payload = serde_json::to_vec(model).map_err(|e| EngineError::Store {
            reason: format!("model does not serialize: {e}"),
        })?;
        let bytes = encode_envelope(&payload);
        let path = self.path_of(key);
        fs::create_dir_all(path.parent().expect("sharded path has a parent"))?;
        // Unique temp name per writer: stores are shared across
        // processes, and two engines cold-starting on the same key must
        // not truncate each other's half-written temp file before the
        // rename.
        let nonce = NEXT_TMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("stm.tmp.{}.{nonce}", std::process::id()));
        fs::write(&tmp, bytes)?;
        if let Err(e) = fs::rename(&tmp, &path) {
            // Some platforms refuse to rename over an existing (possibly
            // open) destination; retry once after unlinking it, and clean
            // up the temp file if the rename still fails.
            let _ = fs::remove_file(&path);
            if let Err(retry) = fs::rename(&tmp, &path) {
                let _ = fs::remove_file(&tmp);
                return Err(if retry.kind() == e.kind() { e } else { retry }.into());
            }
        }
        Ok(())
    }

    /// Removes the artifact under `key`; returns whether one existed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] for removal failures other than the
    /// file being absent.
    pub fn remove(&self, key: &str) -> Result<bool, EngineError> {
        match fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Number of artifacts currently stored.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the store directories cannot be
    /// read.
    pub fn len(&self) -> Result<usize, EngineError> {
        let mut n = 0;
        for shard in fs::read_dir(&self.root)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path())? {
                if entry?.path().extension().is_some_and(|e| e == "stm") {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Whether the store holds no artifacts.
    ///
    /// # Errors
    ///
    /// See [`ModelStore::len`].
    pub fn is_empty(&self) -> Result<bool, EngineError> {
        Ok(self.len()? == 0)
    }

    /// Removes every artifact in the store (all shards), including ones
    /// written by other engines or processes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the store cannot be traversed or a
    /// file cannot be removed.
    pub fn clear(&self) -> Result<(), EngineError> {
        for shard in fs::read_dir(&self.root)? {
            let shard = shard?;
            if !shard.file_type()?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path())? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "stm") {
                    fs::remove_file(path)?;
                }
            }
        }
        Ok(())
    }
}

/// Monotonic nonce distinguishing concurrent writers within a process.
static NEXT_TMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Wraps a payload in the version-1 envelope.
pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sha256(payload).prefix_u64().to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope and returns its payload slice.
///
/// # Errors
///
/// Returns [`EngineError::Store`] describing the first defect found.
pub fn decode_envelope(bytes: &[u8]) -> Result<&[u8], EngineError> {
    let reject = |reason: String| EngineError::Store { reason };
    if bytes.len() < HEADER_LEN {
        return Err(reject(format!(
            "truncated header: {} bytes, need {HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(reject(format!(
            "bad magic {:02x?}, expected {:02x?}",
            &bytes[..4],
            MAGIC
        )));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != FORMAT_VERSION {
        return Err(reject(format!(
            "unsupported format version {version}, this build reads {FORMAT_VERSION}"
        )));
    }
    let len = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != len {
        return Err(reject(format!(
            "payload length mismatch: header says {len}, file has {}",
            payload.len()
        )));
    }
    let stamp = u64::from_be_bytes(bytes[14..22].try_into().expect("8 bytes"));
    let actual = sha256(payload).prefix_u64();
    if stamp != actual {
        return Err(reject(format!(
            "integrity stamp mismatch: header {stamp:016x}, payload {actual:016x}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let payload = b"{\"hello\": 1}";
        let bytes = encode_envelope(payload);
        assert_eq!(decode_envelope(&bytes).unwrap(), payload);
    }

    #[test]
    fn envelope_rejects_defects() {
        let bytes = encode_envelope(b"payload");

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_envelope(&bad_magic),
            Err(EngineError::Store { reason }) if reason.contains("magic")
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_envelope(&bad_version),
            Err(EngineError::Store { reason }) if reason.contains("version 99")
        ));

        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(matches!(
            decode_envelope(&flipped),
            Err(EngineError::Store { reason }) if reason.contains("integrity")
        ));

        assert!(matches!(
            decode_envelope(&bytes[..10]),
            Err(EngineError::Store { reason }) if reason.contains("truncated")
        ));

        let mut short_payload = bytes;
        short_payload.pop();
        assert!(matches!(
            decode_envelope(&short_payload),
            Err(EngineError::Store { reason }) if reason.contains("length mismatch")
        ));
    }
}
