//! The analysis engine: a staged pipeline plus a scenario-sweep batch
//! scheduler over shared caches.
//!
//! One analysis flows through four stages (see [`crate::pipeline`]):
//! **plan** (fingerprint + dedupe module definitions), **resolve**
//! (session cache → persistent [`ModelStore`] → parallel extraction),
//! **assemble** (build the design, run the top-level hierarchical
//! analysis) and **report** ([`RunStats`]/[`BatchStats`]).
//!
//! [`Engine::analyze`] runs exactly one trip through that pipeline — it
//! is a single-scenario batch. [`Engine::analyze_batch`] sweeps one
//! [`DesignSpec`] across a [`ScenarioSet`] of named configuration
//! overlays, running scenarios in parallel over one shared store with a
//! **single-flight table** deduplicating concurrent extractions: N
//! scenarios needing the same `(module, fingerprint)` trigger exactly
//! one characterization, however they race. Scenarios that differ only
//! in analysis-level knobs (correlation mode, yield target) share cached
//! models by construction, because fingerprints are derived from the
//! extraction-relevant inputs alone.
//!
//! Invalidation ([`Engine::invalidate`]) drops one module from both
//! cache tiers; the next analyze re-extracts exactly that module and
//! reuses every other cached model, which is the incremental re-analysis
//! story: an ECO in one IP block costs one extraction plus the top-level
//! assembly, never a full re-characterization.

use crate::error::EngineError;
use crate::grid::CornerGrid;
use crate::pipeline::sweep::{SweepOptions, SweepSummary};
use crate::pipeline::{
    self, effective_threads, parallel_indexed, singleflight::SingleFlight, ScenarioParams,
    SessionCache, SharedState,
};
use crate::scenario::ScenarioSet;
use crate::spec::{DesignSpec, ModuleId};
use crate::store::{Codec, FsBackend, ModelStore, StorageBackend};
use ssta_core::{
    module_fingerprint, module_fingerprint_from_digest, netlist_digest, CancelToken,
    CorrelationMode, ExtractOptions, ModuleContext, SstaConfig, TimingModel,
};
use ssta_netlist::Netlist;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

pub use crate::pipeline::report::{BatchRun, BatchStats, EngineRun, RunStats, ScenarioRun};

/// A single-flight table shareable **across engines**: clone one group
/// into every worker of a serving pool and concurrent identical requests
/// coalesce their extractions across workers, not just across the
/// scenarios of one batch.
///
/// Entries retire as soon as their leader publishes, so the group holds
/// no memoized results — it is pure concurrency dedup and is always
/// safe to keep alive across invalidations (a retired flight cannot
/// serve a stale model).
#[derive(Debug, Clone, Default)]
pub struct FlightGroup {
    flights: Arc<SingleFlight>,
}

impl FlightGroup {
    /// An empty group.
    pub fn new() -> Self {
        FlightGroup::default()
    }

    pub(crate) fn table(&self) -> &SingleFlight {
        &self.flights
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Extraction options applied to every module (part of the cache
    /// key).
    pub extract: ExtractOptions,
    /// Correlation handling for the top-level analysis.
    pub mode: CorrelationMode,
    /// Worker threads for module characterization/extraction and for
    /// scenario fan-out in batch runs; `0` uses the available
    /// parallelism, `1` forces the serial path.
    pub threads: usize,
    /// Payload codec for model-library writes (reads auto-detect).
    /// Not part of the cache key: both codecs store the same model
    /// bit-exactly, so artifacts are interchangeable.
    pub codec: Codec,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            extract: ExtractOptions::default(),
            mode: CorrelationMode::Proposed,
            threads: 0,
            codec: Codec::default(),
        }
    }
}

/// Where a resolved model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSource {
    /// The in-memory session cache.
    Memory,
    /// The persistent model library.
    Store,
    /// Characterized and extracted in this call.
    Extracted,
}

/// A parallel, cache-backed hierarchical analysis engine.
///
/// The persistent tier is backend-agnostic: [`Engine::with_store`]
/// attaches the sharded filesystem library, [`Engine::with_backend`]
/// any other [`StorageBackend`] (e.g. a [`MemoryBackend`](crate::store::MemoryBackend)
/// for services and tests). The backend is type-erased so `Engine`
/// itself stays a single concrete type at every call site.
#[derive(Debug)]
pub struct Engine {
    config: SstaConfig,
    options: EngineOptions,
    memory: SessionCache,
    store: Option<ModelStore<Box<dyn StorageBackend>>>,
    flights: FlightGroup,
}

impl Engine {
    /// Creates an engine analyzing under `config` with default options
    /// and no persistent store.
    pub fn new(config: SstaConfig) -> Self {
        Engine::with_options(config, EngineOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(config: SstaConfig, options: EngineOptions) -> Self {
        Engine {
            config,
            options,
            memory: SessionCache::default(),
            store: None,
            flights: FlightGroup::new(),
        }
    }

    /// Shares a [`FlightGroup`] with this engine, so in-flight module
    /// resolutions coalesce with every other engine holding a clone of
    /// the same group (a serving worker pool, typically). Engines not
    /// given a group still single-flight within their own batches.
    pub fn with_flight_group(mut self, flights: FlightGroup) -> Self {
        self.flights = flights;
        self
    }

    /// Attaches a persistent model library rooted at `path` (created if
    /// missing). Models found there are reused across engine instances
    /// and across processes. Writes use the codec from
    /// [`EngineOptions::codec`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the directory cannot be created.
    pub fn with_store(self, path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let backend = FsBackend::open(path.as_ref().to_path_buf())?;
        Ok(self.with_backend(backend))
    }

    /// Attaches a model library over an arbitrary storage backend.
    /// Writes use the codec from [`EngineOptions::codec`].
    pub fn with_backend(mut self, backend: impl StorageBackend + 'static) -> Self {
        self.store = Some(
            ModelStore::with_backend(backend)
                .with_codec(self.options.codec)
                .boxed(),
        );
        self
    }

    /// The analysis configuration.
    pub fn config(&self) -> &SstaConfig {
        &self.config
    }

    /// The engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The attached model library, if any.
    pub fn store(&self) -> Option<&ModelStore<Box<dyn StorageBackend>>> {
        self.store.as_ref()
    }

    /// The cache key of a module definition under this engine's
    /// configuration.
    pub fn module_key(&self, netlist: &Netlist) -> String {
        module_fingerprint(netlist, &self.config, &self.options.extract).to_hex()
    }

    /// Resolves one module to a timing model through the cache tiers,
    /// reporting where it came from.
    ///
    /// # Errors
    ///
    /// Propagates characterization/extraction and store I/O failures.
    pub fn model_for(
        &mut self,
        netlist: &Netlist,
    ) -> Result<(std::sync::Arc<TimingModel>, ModelSource), EngineError> {
        let digest = netlist_digest(netlist);
        let key =
            module_fingerprint_from_digest(&digest, &self.config, &self.options.extract).to_hex();
        if let Some(m) = self.memory.get(&key) {
            return Ok((m, ModelSource::Memory));
        }
        if let Some(store) = &self.store {
            match store.load(&key) {
                Ok(Some(model)) => {
                    let model = std::sync::Arc::new(model);
                    self.memory
                        .insert(&digest, key, std::sync::Arc::clone(&model));
                    return Ok((model, ModelSource::Store));
                }
                Ok(None) | Err(EngineError::Store { .. }) => {}
                Err(e) if e.is_cancelled() => return Err(e),
                // A failed store *read* (transport down, retries
                // exhausted, breaker open) degrades to re-extraction;
                // the backend stack's health counters record it.
                Err(_) => {}
            }
        }
        let ctx = ModuleContext::characterize((*netlist).clone(), &self.config)?;
        let model = std::sync::Arc::new(ctx.extract_model(&self.options.extract)?);
        if let Some(store) = &self.store {
            // Best-effort cache write; the extracted model is returned
            // regardless.
            let _ = store.save(&key, &model);
        }
        self.memory
            .insert(&digest, key, std::sync::Arc::clone(&model));
        Ok((model, ModelSource::Extracted))
    }

    /// Drops `module` of `spec` from every cache tier — under every
    /// configuration this engine has resolved it (the base setup and any
    /// scenario overlays), plus the base key itself whether or not it
    /// was ever cached. The next analyze (or batch) re-extracts exactly
    /// this module. Returns whether any tier held it.
    ///
    /// Store artifacts written under configurations this engine never
    /// resolved (other processes, other overlays) are untouched — their
    /// keys cannot be enumerated from the module alone.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if a store artifact exists but cannot
    /// be removed.
    pub fn invalidate(&mut self, spec: &DesignSpec, module: ModuleId) -> Result<bool, EngineError> {
        let def = spec
            .modules
            .get(module.0)
            .ok_or_else(|| EngineError::Spec {
                reason: format!("module id {} does not exist", module.0),
            })?;
        let digest = def.structural_digest();
        let base_key =
            module_fingerprint_from_digest(digest, &self.config, &self.options.extract).to_hex();
        // Remove the fallible tier first: if a store removal errors out,
        // the memory index is still intact and a retry sees every key
        // again. Dropping memory first would leave overlay-keyed store
        // artifacts permanently un-invalidatable after a transient error.
        let mut keys = self.memory.digest_keys(digest);
        if !keys.contains(&base_key) {
            keys.push(base_key);
        }
        let mut in_store = false;
        if let Some(store) = &self.store {
            for key in &keys {
                in_store |= store.remove(key)?;
            }
        }
        let in_memory = !self.memory.take_digest_keys(digest).is_empty();
        Ok(in_memory || in_store)
    }

    /// Drops every cached model from both tiers — including store
    /// artifacts written by other engines or processes, not just keys
    /// this engine has seen.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if store artifacts cannot be removed.
    pub fn invalidate_all(&mut self) -> Result<(), EngineError> {
        self.memory.clear();
        if let Some(store) = &self.store {
            store.clear()?;
        }
        Ok(())
    }

    /// Analyzes a design spec through the staged pipeline: plan
    /// (deduplicate modules by fingerprint), resolve them through the
    /// caches (extracting misses in parallel), assemble the design and
    /// run the top-level hierarchical analysis.
    ///
    /// Equivalent to a single-scenario [`Engine::analyze_batch`] with an
    /// empty overlay.
    ///
    /// # Errors
    ///
    /// Propagates spec, characterization/extraction, store and analysis
    /// failures.
    pub fn analyze(&mut self, spec: &DesignSpec) -> Result<EngineRun, EngineError> {
        let mut batch = self.analyze_batch(spec, &ScenarioSet::baseline())?;
        let run = batch.scenarios.pop().expect("baseline has one scenario");
        let mut stats = run.stats;
        // A baseline batch is this one scenario, so the batch-boundary
        // health delta is exactly this run's.
        stats.store_retries = batch.stats.store_retries;
        stats.store_quarantined = batch.stats.store_quarantined;
        stats.store_breaker_trips = batch.stats.store_breaker_trips;
        stats.store_breaker = batch.stats.store_breaker;
        Ok(EngineRun {
            timing: run.timing,
            stats,
        })
    }

    /// Sweeps one design spec across a set of named scenarios, sharing
    /// this engine's caches and store across all of them.
    ///
    /// Scenarios run in parallel (bounded by [`EngineOptions::threads`];
    /// `1` forces a serial sweep). Concurrent misses on the same module
    /// fingerprint are single-flighted: exactly one scenario leads the
    /// resolution, the rest coalesce onto it — so a batch performs at
    /// most [`BatchStats::distinct_fingerprints`] extractions no matter
    /// how many scenarios race. Extraction is deterministic, so batch
    /// results are bit-identical to running the scenarios one at a time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Spec`] for an empty scenario set and
    /// propagates the first failing scenario's error (in scenario-set
    /// order).
    pub fn analyze_batch(
        &mut self,
        spec: &DesignSpec,
        scenarios: &ScenarioSet,
    ) -> Result<BatchRun, EngineError> {
        self.analyze_batch_cancellable(spec, scenarios, &CancelToken::new())
    }

    /// [`Engine::analyze_batch`] with a cooperative [`CancelToken`].
    ///
    /// The pipeline polls `cancel` at stage checkpoints — before
    /// planning, before each module resolution, and between resolve and
    /// assemble — and returns [`EngineError::Cancelled`] at the first
    /// one that fires. Cancellation never interrupts work mid-kernel:
    /// a module resolution this request *leads* runs to completion
    /// (other requests may be waiting on it) and its model is published
    /// to the caches as usual, while a resolution this request merely
    /// *follows* is detached from immediately. A token with a deadline
    /// ([`CancelToken::with_timeout`]) turns a latency budget into an
    /// automatic mid-pipeline stop.
    ///
    /// # Errors
    ///
    /// As [`Engine::analyze_batch`], plus [`EngineError::Cancelled`]
    /// once the token fires.
    pub fn analyze_batch_cancellable(
        &mut self,
        spec: &DesignSpec,
        scenarios: &ScenarioSet,
        cancel: &CancelToken,
    ) -> Result<BatchRun, EngineError> {
        if scenarios.is_empty() {
            return Err(EngineError::Spec {
                reason: "a batch needs at least one scenario".into(),
            });
        }
        // Duplicate labels would make per-scenario reporting ambiguous
        // (`BatchRun::scenario` returns the first match) and silently
        // double-count stats; reject them up front with the offending
        // name.
        if let Some(name) = scenarios.duplicate_name() {
            return Err(EngineError::Spec {
                reason: format!("duplicate scenario name {name:?} in batch"),
            });
        }
        let started = Instant::now();
        // Health is attributed at the batch boundary: scenarios share
        // one backend stack, so per-scenario deltas would double-count.
        let health_before = self
            .store
            .as_ref()
            .map(ModelStore::health)
            .unwrap_or_default();
        let params: Vec<ScenarioParams> = scenarios
            .iter()
            .map(|s| {
                let (config, extract, mode) =
                    s.overlay
                        .resolve(&self.config, &self.options.extract, self.options.mode);
                ScenarioParams {
                    name: s.name.clone(),
                    config,
                    extract,
                    mode,
                    yield_target_ps: s.overlay.yield_target_ps,
                }
            })
            .collect();

        // One thread budget bounds both fan-out levels: scenarios get up
        // to `workers` threads, and each scenario's resolve stage gets
        // the budget divided by the scenario fan-out — so a batch never
        // oversubscribes to workers² OS threads.
        let workers = effective_threads(self.options.threads);
        let scenario_workers = workers.min(params.len());
        let shared = SharedState {
            cache: &self.memory,
            flights: self.flights.table(),
            store: self.store.as_ref(),
            threads: (workers / scenario_workers.max(1)).max(1),
            cancel,
        };

        let outcomes = parallel_indexed(params.len(), scenario_workers, |i| {
            pipeline::run_scenario(spec, &params[i], &shared)
        });
        // The batch-wide fingerprint universe: the union of every
        // scenario's plan, as reported by the runs themselves.
        let mut runs: Vec<ScenarioRun> = Vec::with_capacity(outcomes.len());
        let mut distinct: BTreeSet<String> = BTreeSet::new();
        for outcome in outcomes {
            let (run, keys) = outcome?;
            runs.push(run);
            distinct.extend(keys);
        }

        let mut stats = BatchStats {
            scenarios: runs.len(),
            instances: spec.instances.len(),
            distinct_fingerprints: distinct.len(),
            store_codec: self.store.as_ref().map(ModelStore::codec),
            ..BatchStats::default()
        };
        for run in &runs {
            stats.absorb(&run.stats);
        }
        if let Some(store) = &self.store {
            stats.absorb_health(&store.health().delta(&health_before));
        }
        stats.elapsed_seconds = started.elapsed().as_secs_f64();

        Ok(BatchRun {
            scenarios: runs,
            stats,
        })
    }

    /// Sweeps one design spec across a [`CornerGrid`] of scenario
    /// overlays — the mega-sweep path for hundreds-to-thousands of
    /// corners.
    ///
    /// Where [`Engine::analyze_batch`] runs every scenario as an
    /// independent pipeline trip (relying on the single-flight table to
    /// dedupe racing extractions), this path **plans the collapse up
    /// front**: corners are grouped by extraction signature before any
    /// work runs, so a grid with N corners and K distinct
    /// `(config, extract)` groups schedules exactly K resolve + assemble
    /// passes — and corners differing only in correlation mode or yield
    /// target share one design analysis outright. Workers self-schedule
    /// whole groups over a shared cursor and stream compact per-corner
    /// records into the returned [`SweepSummary`]; full results are
    /// dropped as soon as each group summarizes, keeping peak resident
    /// memory O(workers) (see [`SweepOptions::retain_results`] to keep
    /// them all).
    ///
    /// Results are bit-identical to analyzing each corner one at a time
    /// with [`Engine::analyze`], for every worker count.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Spec`] for an empty grid (unbuildable —
    /// [`CornerGrid`] construction rejects it) and propagates the
    /// failing group's error for the lowest affected corner index.
    pub fn analyze_sweep(
        &mut self,
        spec: &DesignSpec,
        grid: &CornerGrid,
        options: &SweepOptions,
    ) -> Result<SweepSummary, EngineError> {
        self.analyze_sweep_cancellable(spec, grid, options, &CancelToken::new())
    }

    /// [`Engine::analyze_sweep`] with a cooperative [`CancelToken`],
    /// polled at the same stage checkpoints as
    /// [`Engine::analyze_batch_cancellable`] (before each group's
    /// resolve, before each module resolution, and before each mode
    /// bucket's analysis).
    ///
    /// # Errors
    ///
    /// As [`Engine::analyze_sweep`], plus [`EngineError::Cancelled`]
    /// once the token fires.
    pub fn analyze_sweep_cancellable(
        &mut self,
        spec: &DesignSpec,
        grid: &CornerGrid,
        options: &SweepOptions,
        cancel: &CancelToken,
    ) -> Result<SweepSummary, EngineError> {
        let workers = effective_threads(if options.workers != 0 {
            options.workers
        } else {
            self.options.threads
        });
        let shared = SharedState {
            cache: &self.memory,
            flights: self.flights.table(),
            store: self.store.as_ref(),
            threads: workers,
            cancel,
        };
        pipeline::sweep::run_sweep(
            spec,
            grid,
            options,
            workers,
            &self.config,
            &self.options.extract,
            self.options.mode,
            &shared,
        )
    }
}
