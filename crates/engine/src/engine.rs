//! The analysis engine: dedupe, schedule, cache, assemble, analyze.
//!
//! [`Engine::analyze`] turns a [`DesignSpec`] into a [`DesignTiming`] in
//! four steps:
//!
//! 1. **Fingerprint** every module definition
//!    ([`ssta_core::module_fingerprint`]) and deduplicate identical
//!    definitions — four instances of one multiplier, or two separately
//!    registered but structurally identical blocks, resolve to a single
//!    characterization unit.
//! 2. **Resolve** each distinct fingerprint against the two cache tiers:
//!    the in-memory session cache, then the persistent [`ModelStore`]
//!    (when attached). A corrupt store artifact is rejected by the store
//!    layer, counted, and transparently recomputed.
//! 3. **Extract** the remaining modules in parallel over scoped worker
//!    threads. Characterization and extraction are deterministic pure
//!    functions of the fingerprinted inputs, so the thread count cannot
//!    change any result bit — only the wall clock.
//! 4. **Assemble** the design from the resolved models and run the
//!    top-level hierarchical analysis (partition, design PCA, variable
//!    replacement, propagation).
//!
//! Invalidation ([`Engine::invalidate`]) drops one module from both cache
//! tiers; the next analyze re-extracts exactly that module and reuses
//! every other cached model, which is the incremental re-analysis story:
//! an ECO in one IP block costs one extraction plus the top-level
//! assembly, never a full re-characterization.

use crate::error::EngineError;
use crate::spec::{DesignSpec, ModuleId};
use crate::store::{Codec, FsBackend, ModelStore, StorageBackend};
use ssta_core::{
    analyze, module_fingerprint, CorrelationMode, Design, DesignBuilder, DesignTiming,
    ExtractOptions, ModuleContext, SstaConfig, TimingModel,
};
use ssta_netlist::Netlist;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Extraction options applied to every module (part of the cache
    /// key).
    pub extract: ExtractOptions,
    /// Correlation handling for the top-level analysis.
    pub mode: CorrelationMode,
    /// Worker threads for module characterization/extraction; `0` uses
    /// the available parallelism, `1` forces the serial path.
    pub threads: usize,
    /// Payload codec for model-library writes (reads auto-detect).
    /// Not part of the cache key: both codecs store the same model
    /// bit-exactly, so artifacts are interchangeable.
    pub codec: Codec,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            extract: ExtractOptions::default(),
            mode: CorrelationMode::Proposed,
            threads: 0,
            codec: Codec::default(),
        }
    }
}

/// Where a resolved model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSource {
    /// The in-memory session cache.
    Memory,
    /// The persistent model library.
    Store,
    /// Characterized and extracted in this call.
    Extracted,
}

/// Accounting for one [`Engine::analyze`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Instances in the analyzed design.
    pub instances: usize,
    /// Distinct module definitions after fingerprint deduplication.
    pub distinct_modules: usize,
    /// Modules characterized + extracted in this run (cache misses).
    pub extractions: usize,
    /// Modules served from the in-memory session cache.
    pub memory_hits: usize,
    /// Modules served from the persistent model library.
    pub store_hits: usize,
    /// Store artifacts rejected as corrupt/mismatched and recomputed.
    pub store_rejects: usize,
    /// Models written to the persistent library in this run.
    pub store_writes: usize,
    /// Failed library writes (read-only mount, disk full, …). The cache
    /// is best-effort: a failed write never fails the analysis.
    pub store_write_failures: usize,
    /// Artifact bytes written to the persistent library in this run
    /// (envelope headers included).
    pub store_bytes_written: u64,
    /// Artifact bytes read from the persistent library in this run,
    /// counting hits only (envelope headers included).
    pub store_bytes_read: u64,
    /// Codec used for library writes; `None` when no store is attached.
    pub store_codec: Option<Codec>,
    /// Wall-clock seconds resolving models (cache lookups + parallel
    /// extraction).
    pub resolve_seconds: f64,
    /// Wall-clock seconds assembling and analyzing the top level.
    pub assembly_seconds: f64,
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The design-level timing result.
    pub timing: DesignTiming,
    /// What the run cost and where its models came from.
    pub stats: RunStats,
}

/// A parallel, cache-backed hierarchical analysis engine.
///
/// The persistent tier is backend-agnostic: [`Engine::with_store`]
/// attaches the sharded filesystem library, [`Engine::with_backend`]
/// any other [`StorageBackend`] (e.g. a [`MemoryBackend`](crate::store::MemoryBackend)
/// for services and tests). The backend is type-erased so `Engine`
/// itself stays a single concrete type at every call site.
#[derive(Debug)]
pub struct Engine {
    config: SstaConfig,
    options: EngineOptions,
    memory: HashMap<String, std::sync::Arc<TimingModel>>,
    store: Option<ModelStore<Box<dyn StorageBackend>>>,
}

impl Engine {
    /// Creates an engine analyzing under `config` with default options
    /// and no persistent store.
    pub fn new(config: SstaConfig) -> Self {
        Engine::with_options(config, EngineOptions::default())
    }

    /// Creates an engine with explicit options.
    pub fn with_options(config: SstaConfig, options: EngineOptions) -> Self {
        Engine {
            config,
            options,
            memory: HashMap::new(),
            store: None,
        }
    }

    /// Attaches a persistent model library rooted at `path` (created if
    /// missing). Models found there are reused across engine instances
    /// and across processes. Writes use the codec from
    /// [`EngineOptions::codec`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the directory cannot be created.
    pub fn with_store(self, path: impl AsRef<Path>) -> Result<Self, EngineError> {
        let backend = FsBackend::open(path.as_ref().to_path_buf())?;
        Ok(self.with_backend(backend))
    }

    /// Attaches a model library over an arbitrary storage backend.
    /// Writes use the codec from [`EngineOptions::codec`].
    pub fn with_backend(mut self, backend: impl StorageBackend + 'static) -> Self {
        self.store = Some(
            ModelStore::with_backend(backend)
                .with_codec(self.options.codec)
                .boxed(),
        );
        self
    }

    /// The analysis configuration.
    pub fn config(&self) -> &SstaConfig {
        &self.config
    }

    /// The engine options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The attached model library, if any.
    pub fn store(&self) -> Option<&ModelStore<Box<dyn StorageBackend>>> {
        self.store.as_ref()
    }

    /// The cache key of a module definition under this engine's
    /// configuration.
    pub fn module_key(&self, netlist: &Netlist) -> String {
        module_fingerprint(netlist, &self.config, &self.options.extract).to_hex()
    }

    /// Resolves one module to a timing model through the cache tiers,
    /// reporting where it came from.
    ///
    /// # Errors
    ///
    /// Propagates characterization/extraction and store I/O failures.
    pub fn model_for(
        &mut self,
        netlist: &Netlist,
    ) -> Result<(std::sync::Arc<TimingModel>, ModelSource), EngineError> {
        let key = self.module_key(netlist);
        if let Some(m) = self.memory.get(&key) {
            return Ok((std::sync::Arc::clone(m), ModelSource::Memory));
        }
        if let Some(store) = &self.store {
            match store.load(&key) {
                Ok(Some(model)) => {
                    let model = std::sync::Arc::new(model);
                    self.memory.insert(key, std::sync::Arc::clone(&model));
                    return Ok((model, ModelSource::Store));
                }
                Ok(None) | Err(EngineError::Store { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let ctx = ModuleContext::characterize((*netlist).clone(), &self.config)?;
        let model = std::sync::Arc::new(ctx.extract_model(&self.options.extract)?);
        if let Some(store) = &self.store {
            // Best-effort cache write; the extracted model is returned
            // regardless.
            let _ = store.save(&key, &model);
        }
        self.memory.insert(key, std::sync::Arc::clone(&model));
        Ok((model, ModelSource::Extracted))
    }

    /// Drops `module` of `spec` from every cache tier; the next analyze
    /// re-extracts exactly this module. Returns whether any tier held it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if a store artifact exists but cannot
    /// be removed.
    pub fn invalidate(&mut self, spec: &DesignSpec, module: ModuleId) -> Result<bool, EngineError> {
        let def = spec
            .modules
            .get(module.0)
            .ok_or_else(|| EngineError::Spec {
                reason: format!("module id {} does not exist", module.0),
            })?;
        let key = self.module_key(&def.netlist);
        let in_memory = self.memory.remove(&key).is_some();
        let in_store = match &self.store {
            Some(store) => store.remove(&key)?,
            None => false,
        };
        Ok(in_memory || in_store)
    }

    /// Drops every cached model from both tiers — including store
    /// artifacts written by other engines or processes, not just keys
    /// this engine has seen.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if store artifacts cannot be removed.
    pub fn invalidate_all(&mut self) -> Result<(), EngineError> {
        self.memory.clear();
        if let Some(store) = &self.store {
            store.clear()?;
        }
        Ok(())
    }

    /// Analyzes a design spec: deduplicate modules, resolve them through
    /// the caches (extracting misses in parallel), assemble the design
    /// and run the top-level hierarchical analysis.
    ///
    /// # Errors
    ///
    /// Propagates spec, characterization/extraction, store and analysis
    /// failures.
    pub fn analyze(&mut self, spec: &DesignSpec) -> Result<EngineRun, EngineError> {
        let resolve_started = Instant::now();
        let mut stats = RunStats {
            instances: spec.instances.len(),
            store_codec: self.store.as_ref().map(ModelStore::codec),
            ..RunStats::default()
        };

        // Step 1: fingerprint + dedupe the definitions that are actually
        // instantiated — a registered-but-unused definition must not cost
        // an extraction (or skew the stats).
        let mut keys: Vec<Option<String>> = vec![None; spec.modules.len()];
        for inst in &spec.instances {
            let idx = inst.module.0;
            if keys[idx].is_none() {
                keys[idx] = Some(self.module_key(&spec.modules[idx].netlist));
            }
        }
        let mut distinct: Vec<(String, usize)> = Vec::new(); // (key, module idx)
        for (idx, key) in keys.iter().enumerate() {
            let Some(key) = key else { continue };
            if !distinct.iter().any(|(k, _)| k == key) {
                distinct.push((key.clone(), idx));
            }
        }
        stats.distinct_modules = distinct.len();

        // Step 2: cache tiers.
        let mut jobs: Vec<(String, usize)> = Vec::new();
        for (key, idx) in &distinct {
            if self.memory.contains_key(key) {
                stats.memory_hits += 1;
                continue;
            }
            if let Some(store) = &self.store {
                match store.load_traced(key) {
                    Ok(Some((model, info))) => {
                        self.memory.insert(key.clone(), std::sync::Arc::new(model));
                        stats.store_hits += 1;
                        stats.store_bytes_read += info.bytes as u64;
                        continue;
                    }
                    Ok(None) => {}
                    Err(EngineError::Store { .. }) => stats.store_rejects += 1,
                    Err(e) => return Err(e),
                }
            }
            jobs.push((key.clone(), *idx));
        }

        // Step 3: extract misses in parallel.
        stats.extractions = jobs.len();
        if !jobs.is_empty() {
            let extracted = extract_parallel(spec, &jobs, &self.config, &self.options)?;
            for ((key, _), model) in jobs.iter().zip(extracted) {
                let model = std::sync::Arc::new(model);
                if let Some(store) = &self.store {
                    // Best-effort: the model is already in hand, so a
                    // failed cache write (read-only library, full disk)
                    // must not fail the analysis.
                    match store.save_traced(key, &model) {
                        Ok(bytes) => {
                            stats.store_writes += 1;
                            stats.store_bytes_written += bytes as u64;
                        }
                        Err(_) => stats.store_write_failures += 1,
                    }
                }
                self.memory.insert(key.clone(), model);
            }
        }
        stats.resolve_seconds = resolve_started.elapsed().as_secs_f64();

        // Step 4: assemble + top-level analysis.
        let assembly_started = Instant::now();
        let design = self.assemble(spec, &keys)?;
        let timing = analyze(&design, self.options.mode)?;
        stats.assembly_seconds = assembly_started.elapsed().as_secs_f64();

        Ok(EngineRun { timing, stats })
    }

    /// Builds the [`Design`] from cached models (all of which exist once
    /// [`Engine::analyze`] reaches this step).
    fn assemble(&self, spec: &DesignSpec, keys: &[Option<String>]) -> Result<Design, EngineError> {
        let mut b = DesignBuilder::new(spec.name.clone(), spec.die, self.config.clone());
        for inst in &spec.instances {
            let key = keys[inst.module.0]
                .as_ref()
                .expect("instanced modules were fingerprinted above");
            let model = self.memory.get(key).expect("model resolved above");
            b.add_instance(
                inst.name.clone(),
                std::sync::Arc::clone(model),
                None,
                inst.origin,
            )?;
        }
        for c in &spec.connections {
            b.connect(c.from.0, c.from.1, c.to.0, c.to.1, c.wire_delay_ps)?;
        }
        for targets in &spec.pi_bindings {
            b.expose_input(targets.clone())?;
        }
        for &(inst, port) in &spec.po_sources {
            b.expose_output(inst, port)?;
        }
        Ok(b.finish()?)
    }
}

/// Characterizes and extracts the given `(key, module idx)` jobs across
/// scoped worker threads, returning models in job order.
fn extract_parallel(
    spec: &DesignSpec,
    jobs: &[(String, usize)],
    config: &SstaConfig,
    options: &EngineOptions,
) -> Result<Vec<TimingModel>, EngineError> {
    let workers = match options.threads {
        0 => std::thread::available_parallelism().map_or(4, |n| n.get()),
        n => n,
    }
    .min(jobs.len());

    let run_job = |idx: usize| -> Result<TimingModel, EngineError> {
        let def = &spec.modules[jobs[idx].1];
        let ctx = ModuleContext::characterize((*def.netlist).clone(), config)?;
        Ok(ctx.extract_model(&options.extract)?)
    };

    if workers <= 1 {
        return jobs.iter().enumerate().map(|(i, _)| run_job(i)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<TimingModel, EngineError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run_job(i);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every job ran")
        })
        .collect()
}
