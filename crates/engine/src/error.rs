//! Engine error type.

use ssta_core::CoreError;
use std::fmt;

/// Errors from the analysis engine and its model library.
#[derive(Debug)]
pub enum EngineError {
    /// An underlying characterization/extraction/analysis failure.
    Core(CoreError),
    /// A filesystem failure in the model library.
    Io(std::io::Error),
    /// A model-library artifact was rejected: bad magic, unsupported
    /// format version, truncated payload, checksum mismatch or
    /// undecodable contents.
    Store {
        /// What was wrong with the artifact.
        reason: String,
    },
    /// An invalid design specification.
    Spec {
        /// The first violation found.
        reason: String,
    },
    /// A transient storage-layer failure: the transport dropped the
    /// operation, a retry policy exhausted its attempts, or a circuit
    /// breaker is refusing cold-tier traffic. Unlike
    /// [`Store`](Self::Store), nothing is wrong with the artifact
    /// itself — the operation is worth retrying later, and the engine
    /// degrades a read that fails this way into a re-extraction.
    Unavailable {
        /// What gave out.
        reason: String,
    },
    /// A failure shared from another scenario's in-flight resolution of
    /// the same module: the single-flight table coalesced this request
    /// onto a resolution that then failed, and the original error is
    /// jointly owned by every waiter.
    Flight(std::sync::Arc<EngineError>),
    /// The request's [`CancelToken`](ssta_core::CancelToken) fired — an
    /// expired deadline or an explicit client cancel — and the pipeline
    /// stopped at the next checkpoint. Partial work already published to
    /// the session cache or model library stays valid and reusable.
    Cancelled,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "core error: {e}"),
            EngineError::Io(e) => write!(f, "model library I/O error: {e}"),
            EngineError::Store { reason } => write!(f, "model library artifact rejected: {reason}"),
            EngineError::Spec { reason } => write!(f, "invalid design spec: {reason}"),
            EngineError::Unavailable { reason } => {
                write!(f, "model library unavailable: {reason}")
            }
            EngineError::Flight(e) => write!(f, "coalesced module resolution failed: {e}"),
            EngineError::Cancelled => write!(f, "analysis cancelled"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            EngineError::Io(e) => Some(e),
            EngineError::Flight(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl EngineError {
    /// A structurally equivalent copy for sharing across single-flight
    /// waiters. Every variant clones; `Io` — whose payload is not
    /// clonable — is re-created from its kind and rendered message.
    pub(crate) fn shared_copy(&self) -> EngineError {
        match self {
            EngineError::Core(e) => EngineError::Core(e.clone()),
            EngineError::Io(e) => EngineError::Io(std::io::Error::new(e.kind(), e.to_string())),
            EngineError::Store { reason } => EngineError::Store {
                reason: reason.clone(),
            },
            EngineError::Spec { reason } => EngineError::Spec {
                reason: reason.clone(),
            },
            EngineError::Unavailable { reason } => EngineError::Unavailable {
                reason: reason.clone(),
            },
            EngineError::Flight(e) => EngineError::Flight(std::sync::Arc::clone(e)),
            EngineError::Cancelled => EngineError::Cancelled,
        }
    }

    /// Whether this error (or the flight failure it shares) is a
    /// cooperative cancellation rather than a genuine analysis failure.
    pub fn is_cancelled(&self) -> bool {
        match self {
            EngineError::Cancelled => true,
            EngineError::Flight(e) => e.is_cancelled(),
            _ => false,
        }
    }
}

impl From<CoreError> for EngineError {
    fn from(e: CoreError) -> Self {
        EngineError::Core(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<ssta_core::Cancelled> for EngineError {
    fn from(_: ssta_core::Cancelled) -> Self {
        EngineError::Cancelled
    }
}
