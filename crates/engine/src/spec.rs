//! Pre-extraction design specification.
//!
//! [`ssta_core::Design`] is built from already-extracted models — the
//! right input for one-shot analysis, but too late for an engine that
//! wants to decide *whether* to extract at all. A [`DesignSpec`] is the
//! same hierarchy expressed one level earlier: module *definitions*
//! (netlists) plus instances referencing them, with the wiring of the
//! eventual design. The engine resolves every definition to a model
//! (cache or fresh extraction) and only then assembles the `Design`.

use crate::error::EngineError;
use ssta_core::{netlist_digest, NetlistDigest};
use ssta_netlist::{DieRect, Netlist};
use std::sync::{Arc, OnceLock};

/// Identifier of a module definition within one [`DesignSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(pub usize);

/// A module definition: a named netlist shared by any number of
/// instances.
#[derive(Debug, Clone)]
pub struct ModuleDef {
    /// Definition name (defaults to the netlist name).
    pub name: String,
    /// The module netlist.
    pub netlist: Arc<Netlist>,
    /// Memoized canonical-form digest of the netlist structure. Shared
    /// across clones (scenario sweeps fingerprint the same spec under K
    /// configurations; the netlist is canonicalized exactly once).
    digest: Arc<OnceLock<NetlistDigest>>,
}

impl ModuleDef {
    /// The configuration-independent digest of this definition's
    /// canonical structural form, computed on first use and cached for
    /// the lifetime of the spec (and every clone of it).
    pub fn structural_digest(&self) -> &NetlistDigest {
        self.digest.get_or_init(|| netlist_digest(&self.netlist))
    }
}

/// One placed instance of a module definition.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// Instance name.
    pub name: String,
    /// The definition this instance refers to.
    pub module: ModuleId,
    /// Placement offset of the module origin, in µm.
    pub origin: (f64, f64),
}

/// A wire between instance ports, mirroring
/// [`ssta_core::hier::Connection`] at spec level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectionSpec {
    /// `(instance, output port)` source.
    pub from: (usize, usize),
    /// `(instance, input port)` sink.
    pub to: (usize, usize),
    /// Wire delay in ps.
    pub wire_delay_ps: f64,
}

/// A hierarchical design expressed over module definitions rather than
/// extracted models.
#[derive(Debug, Clone)]
pub struct DesignSpec {
    pub(crate) name: String,
    pub(crate) die: DieRect,
    pub(crate) modules: Vec<ModuleDef>,
    pub(crate) instances: Vec<InstanceSpec>,
    pub(crate) connections: Vec<ConnectionSpec>,
    pub(crate) pi_bindings: Vec<Vec<(usize, usize)>>,
    pub(crate) po_sources: Vec<(usize, usize)>,
}

impl DesignSpec {
    /// Starts building a spec for a design named `name` on `die`.
    pub fn builder(name: impl Into<String>, die: DieRect) -> DesignSpecBuilder {
        DesignSpecBuilder {
            spec: DesignSpec {
                name: name.into(),
                die,
                modules: Vec::new(),
                instances: Vec::new(),
                connections: Vec::new(),
                pi_bindings: Vec::new(),
                po_sources: Vec::new(),
            },
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module definitions.
    pub fn modules(&self) -> &[ModuleDef] {
        &self.modules
    }

    /// The placed instances.
    pub fn instances(&self) -> &[InstanceSpec] {
        &self.instances
    }
}

/// Incremental builder for [`DesignSpec`].
#[derive(Debug)]
pub struct DesignSpecBuilder {
    spec: DesignSpec,
}

impl DesignSpecBuilder {
    /// Registers a module definition and returns its id. The same
    /// netlist may be registered once and instantiated many times — the
    /// engine also deduplicates *identical* definitions registered
    /// separately (same structure, by content fingerprint).
    pub fn add_module(&mut self, netlist: Netlist) -> ModuleId {
        let name = netlist.name().to_owned();
        self.spec.modules.push(ModuleDef {
            name,
            netlist: Arc::new(netlist),
            digest: Arc::new(OnceLock::new()),
        });
        ModuleId(self.spec.modules.len() - 1)
    }

    /// Places an instance of `module` at `origin`; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Spec`] for an unknown module id.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        module: ModuleId,
        origin: (f64, f64),
    ) -> Result<usize, EngineError> {
        if module.0 >= self.spec.modules.len() {
            return Err(EngineError::Spec {
                reason: format!("module id {} does not exist", module.0),
            });
        }
        self.spec.instances.push(InstanceSpec {
            name: name.into(),
            module,
            origin,
        });
        Ok(self.spec.instances.len() - 1)
    }

    /// Wires instance `from`'s output port to instance `to`'s input port.
    /// Port ranges are validated at assembly time, once models (and thus
    /// port counts) exist.
    pub fn connect(&mut self, from: usize, from_port: usize, to: usize, to_port: usize) {
        self.spec.connections.push(ConnectionSpec {
            from: (from, from_port),
            to: (to, to_port),
            wire_delay_ps: 0.0,
        });
    }

    /// As [`connect`](Self::connect) with an explicit wire delay.
    pub fn connect_with_delay(
        &mut self,
        from: usize,
        from_port: usize,
        to: usize,
        to_port: usize,
        wire_delay_ps: f64,
    ) {
        self.spec.connections.push(ConnectionSpec {
            from: (from, from_port),
            to: (to, to_port),
            wire_delay_ps,
        });
    }

    /// Declares a design primary input driving the given instance input
    /// ports; returns the design PI index.
    pub fn expose_input(&mut self, targets: Vec<(usize, usize)>) -> usize {
        self.spec.pi_bindings.push(targets);
        self.spec.pi_bindings.len() - 1
    }

    /// Declares a design primary output observing the given instance
    /// output port; returns the design PO index.
    pub fn expose_output(&mut self, inst: usize, port: usize) -> usize {
        self.spec.po_sources.push((inst, port));
        self.spec.po_sources.len() - 1
    }

    /// Finalizes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Spec`] if the design has no instances or no
    /// outputs, or an instance references a missing module. Port-level
    /// validation happens at assembly, via [`ssta_core::DesignBuilder`].
    pub fn finish(self) -> Result<DesignSpec, EngineError> {
        let spec = self.spec;
        if spec.instances.is_empty() || spec.po_sources.is_empty() {
            return Err(EngineError::Spec {
                reason: "a design needs at least one instance and one output".into(),
            });
        }
        for inst in &spec.instances {
            if inst.module.0 >= spec.modules.len() {
                return Err(EngineError::Spec {
                    reason: format!(
                        "instance `{}` references missing module {}",
                        inst.name, inst.module.0
                    ),
                });
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_netlist::generators;

    #[test]
    fn builder_validates_module_ids() {
        let die = DieRect {
            width: 1000.0,
            height: 1000.0,
        };
        let mut b = DesignSpec::builder("d", die);
        let m = b.add_module(generators::ripple_carry_adder(2).unwrap());
        assert!(b.add_instance("u0", m, (0.0, 0.0)).is_ok());
        assert!(b.add_instance("bad", ModuleId(7), (0.0, 0.0)).is_err());
    }

    #[test]
    fn finish_requires_instances_and_outputs() {
        let die = DieRect {
            width: 10.0,
            height: 10.0,
        };
        assert!(DesignSpec::builder("d", die).finish().is_err());
    }
}
