//! # ssta-engine — parallel, cache-backed hierarchical analysis
//!
//! The DATE 2009 flow's whole point is that a module's extracted timing
//! model is characterized **once** and reused everywhere the module is
//! instantiated — across instances, across analysis runs, and across the
//! IP-vendor/integrator boundary. The rest of this workspace provides the
//! one-shot algorithms; this crate turns them into an engine with three
//! layers:
//!
//! * [`ModelStore`] — a **persistent model library**: a content-addressed
//!   store keyed by a SHA-256 fingerprint of (netlist structure, library,
//!   [`SstaConfig`](ssta_core::SstaConfig),
//!   [`ExtractOptions`](ssta_core::ExtractOptions)), layered over
//!   pluggable [`StorageBackend`]s (sharded filesystem, in-memory) with
//!   a versioned artifact envelope (magic + format version + payload
//!   codec + integrity stamp) that rejects corrupt or wrong-version
//!   artifacts cleanly. Payloads are compact deterministic binary by
//!   default ([`Codec::Binary`]), with JSON ([`Codec::Json`]) still
//!   read and writable, and legacy v1 artifacts migrate in place;
//! * [`Engine`] — a **staged pipeline** (plan → resolve → assemble →
//!   report) that walks a [`DesignSpec`], deduplicates identical module
//!   definitions by fingerprint, resolves each distinct module through
//!   the in-memory and persistent cache tiers, and
//!   characterizes/extracts the misses **in parallel** over scoped
//!   threads (thread count cannot change results — extraction is a
//!   deterministic pure function of the fingerprinted inputs);
//! * [`Engine::analyze_batch`] — a **scenario-sweep batch scheduler**:
//!   a [`ScenarioSet`] of named configuration overlays analyzed over one
//!   shared store, with concurrent extractions deduplicated by a
//!   single-flight table — N scenarios needing the same
//!   `(module, fingerprint)` trigger exactly one extraction, and
//!   scenarios differing only in analysis-level knobs (correlation mode,
//!   yield target) share cached models outright;
//! * **incremental re-analysis** — [`Engine::invalidate`] drops one
//!   module from both tiers; the next [`Engine::analyze`] recomputes only
//!   it plus the top-level assembly, serving every other model from
//!   cache.
//!
//! # Example
//!
//! ```
//! use ssta_engine::{DesignSpec, Engine};
//! use ssta_core::SstaConfig;
//! use ssta_netlist::{generators, DieRect};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two instances of one adder, chained.
//! let netlist = generators::ripple_carry_adder(4)?;
//! let mut b = DesignSpec::builder(
//!     "pair",
//!     DieRect { width: 60.0, height: 40.0 },
//! );
//! let m = b.add_module(netlist);
//! let u0 = b.add_instance("u0", m, (0.0, 0.0))?;
//! let u1 = b.add_instance("u1", m, (30.0, 0.0))?;
//! for k in 0..4 {
//!     b.connect(u0, k, u1, k); // sum bits feed the a operand
//! }
//! b.connect(u0, 4, u1, 8); // carry chain
//! for k in 0..9 {
//!     b.expose_input(vec![(u0, k)]);
//! }
//! for k in 4..8 {
//!     b.expose_input(vec![(u1, k)]);
//! }
//! for k in 0..5 {
//!     b.expose_output(u1, k);
//! }
//! let spec = b.finish()?;
//!
//! let mut engine = Engine::new(SstaConfig::paper());
//! let run = engine.analyze(&spec)?;
//! // Two instances, one definition: exactly one extraction.
//! assert_eq!(run.stats.distinct_modules, 1);
//! assert_eq!(run.stats.extractions, 1);
//! assert!(run.timing.delay.mean() > 0.0);
//!
//! // Same engine again: everything is served from memory.
//! let warm = engine.analyze(&spec)?;
//! assert_eq!(warm.stats.extractions, 0);
//! assert_eq!(warm.stats.memory_hits, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod grid;
mod pipeline;
mod scenario;
mod spec;
pub mod store;

pub use engine::{
    BatchRun, BatchStats, Engine, EngineOptions, EngineRun, FlightGroup, ModelSource, RunStats,
    ScenarioRun,
};
pub use error::EngineError;
pub use grid::{CornerGrid, CornerGridBuilder, GridAxis};
pub use pipeline::sweep::{ScenarioRecord, SweepOptions, SweepSummary};
pub use scenario::{Scenario, ScenarioSet};
pub use spec::{ConnectionSpec, DesignSpec, DesignSpecBuilder, InstanceSpec, ModuleDef, ModuleId};
pub use store::{
    ArtifactInfo, BreakerState, Codec, FaultCounters, FaultInjectingBackend, FaultPlan, FsBackend,
    MemoryBackend, ModelStore, NetworkModel, RemoteBackend, RetryOutcome, RetryPolicy, SdfImport,
    StorageBackend, StoreHealth, TieredBackend, TieredOptions,
};
