//! The tiered backend: an in-memory hot tier over a cold tier, with a
//! circuit breaker on the cold path.
//!
//! A [`TieredBackend`] serves reads from a byte-bounded in-memory hot
//! tier first, falling back to the cold tier
//! ([`FsBackend`](super::FsBackend), [`RemoteBackend`](super::RemoteBackend),
//! anything implementing [`StorageBackend`]) and **promoting** cold
//! hits into the hot tier. Writes go **write-through**: hot first, then
//! cold, so the freshest artifact is always servable even while the
//! cold tier is down. The hot tier evicts least-recently-used entries
//! to stay under its byte budget — but never a key with an operation in
//! flight (reads mid-promotion, writes mid-through), so a concurrent
//! reader cannot lose the bytes out from under itself.
//!
//! The cold path runs behind a **circuit breaker**: after
//! `breaker_threshold` consecutive cold-tier failures it *trips open*
//! and refuses cold traffic outright (fast-failing with
//! [`EngineError::Unavailable`] instead of hammering a dead store),
//! then *half-opens* after a cooldown to let a single probe through.
//! A successful probe re-closes the breaker; a failed one re-opens it
//! with a doubled (capped) cooldown. Hot-tier hits keep flowing the
//! whole time — a tripped breaker degrades cold reads, it never blocks
//! warm traffic.

use super::backend::StorageBackend;
use super::health::{BreakerState, StoreHealth};
use crate::error::EngineError;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Capacity and circuit-breaker tuning for a [`TieredBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieredOptions {
    /// Hot-tier byte budget; least-recently-used entries are evicted to
    /// stay under it. `0` disables the hot tier (every read goes cold).
    pub hot_capacity_bytes: usize,
    /// Consecutive cold-tier failures that trip the breaker open.
    pub breaker_threshold: u32,
    /// Cooldown before a tripped breaker half-opens for a probe.
    pub breaker_cooldown: Duration,
    /// Ceiling on the cooldown as consecutive re-trips double it.
    pub breaker_max_cooldown: Duration,
}

impl Default for TieredOptions {
    /// 64 MiB hot tier; breaker trips after 3 consecutive failures,
    /// probes after 100 ms, backs off to at most 5 s.
    fn default() -> Self {
        TieredOptions {
            hot_capacity_bytes: 64 << 20,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
            breaker_max_cooldown: Duration::from_secs(5),
        }
    }
}

/// One hot-tier entry: the bytes plus its last-touched tick for LRU.
#[derive(Debug)]
struct HotEntry {
    bytes: Vec<u8>,
    touched: u64,
}

/// The in-memory hot tier: an LRU-by-tick map with byte accounting.
#[derive(Debug, Default)]
struct HotTier {
    entries: BTreeMap<String, HotEntry>,
    total_bytes: usize,
    tick: u64,
}

impl HotTier {
    fn touch(&mut self, key: &str) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.touched = tick;
            e.bytes.clone()
        })
    }

    fn insert(&mut self, key: &str, bytes: &[u8]) {
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key.to_owned(),
            HotEntry {
                bytes: bytes.to_vec(),
                touched: self.tick,
            },
        ) {
            self.total_bytes -= old.bytes.len();
        }
        self.total_bytes += bytes.len();
    }

    fn remove(&mut self, key: &str) -> bool {
        if let Some(old) = self.entries.remove(key) {
            self.total_bytes -= old.bytes.len();
            true
        } else {
            false
        }
    }

    /// Evicts LRU entries until the tier fits `capacity`, skipping
    /// pinned (in-flight) keys; stops early if only pinned keys remain.
    /// Returns how many entries were evicted.
    fn evict_to(&mut self, capacity: usize, pinned: &HashMap<String, usize>) -> u64 {
        let mut evicted = 0;
        while self.total_bytes > capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| !pinned.contains_key(k.as_str()))
                .min_by_key(|(_, e)| e.touched)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else {
                break; // everything left is in flight
            };
            self.remove(&key);
            evicted += 1;
        }
        evicted
    }
}

/// The cold-path circuit breaker's internal state machine.
#[derive(Debug)]
enum Breaker {
    /// Flowing; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Refusing cold traffic until `until`; `streak` counts consecutive
    /// trips for cooldown escalation.
    Open { until: Instant, streak: u32 },
    /// One probe is in flight; everyone else is refused.
    HalfOpen { streak: u32 },
}

/// An in-memory hot tier over a cold [`StorageBackend`], with
/// promote-on-hit, write-through, pinned LRU eviction, and a cold-path
/// circuit breaker.
#[derive(Debug)]
pub struct TieredBackend<C> {
    cold: C,
    options: TieredOptions,
    hot: Mutex<HotTier>,
    /// Refcounts of keys with operations in flight — never evicted.
    pins: Mutex<HashMap<String, usize>>,
    breaker: Mutex<Breaker>,
    hot_hits: AtomicU64,
    promotions: AtomicU64,
    evictions: AtomicU64,
    cold_failures: AtomicU64,
    breaker_trips: AtomicU64,
}

/// RAII pin on a hot-tier key: while held, the key cannot be evicted.
struct Pin<'a> {
    pins: &'a Mutex<HashMap<String, usize>>,
    key: String,
}

impl<'a> Pin<'a> {
    fn new(pins: &'a Mutex<HashMap<String, usize>>, key: &str) -> Self {
        *pins
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key.to_owned())
            .or_insert(0) += 1;
        Pin {
            pins,
            key: key.to_owned(),
        }
    }
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(count) = pins.get_mut(&self.key) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.key);
            }
        }
    }
}

impl<C: StorageBackend> TieredBackend<C> {
    /// Stacks an in-memory hot tier over `cold` with the given tuning.
    pub fn new(cold: C, options: TieredOptions) -> Self {
        TieredBackend {
            cold,
            options,
            hot: Mutex::new(HotTier::default()),
            pins: Mutex::new(HashMap::new()),
            breaker: Mutex::new(Breaker::Closed { failures: 0 }),
            hot_hits: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cold_failures: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
        }
    }

    /// Stacks with the default tuning ([`TieredOptions::default`]).
    pub fn with_defaults(cold: C) -> Self {
        TieredBackend::new(cold, TieredOptions::default())
    }

    /// The cold-tier backend.
    pub fn cold(&self) -> &C {
        &self.cold
    }

    /// The active tuning.
    pub fn options(&self) -> &TieredOptions {
        &self.options
    }

    /// Current hot-tier payload bytes (always ≤ the budget between
    /// operations).
    pub fn hot_bytes(&self) -> usize {
        self.lock_hot().total_bytes
    }

    /// The circuit breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        match *self.lock_breaker() {
            Breaker::Closed { .. } => BreakerState::Closed,
            Breaker::Open { .. } => BreakerState::Open,
            Breaker::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    fn lock_hot(&self) -> std::sync::MutexGuard<'_, HotTier> {
        self.hot.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_breaker(&self) -> std::sync::MutexGuard<'_, Breaker> {
        self.breaker.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts into the hot tier and evicts back under budget.
    fn admit_hot(&self, key: &str, bytes: &[u8]) {
        if self.options.hot_capacity_bytes == 0 {
            return;
        }
        let pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        let mut hot = self.lock_hot();
        hot.insert(key, bytes);
        let evicted = hot.evict_to(self.options.hot_capacity_bytes, &pins);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Runs `op` against the cold tier under the breaker: refuses
    /// fast when open, lets one probe through when half-open, and feeds
    /// successes/failures back into the state machine.
    fn cold_call<T>(
        &self,
        op: impl FnOnce(&C) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        {
            let mut breaker = self.lock_breaker();
            match *breaker {
                Breaker::Closed { .. } => {}
                Breaker::Open { until, streak } => {
                    if Instant::now() < until {
                        return Err(EngineError::Unavailable {
                            reason: "cold-tier circuit breaker is open".into(),
                        });
                    }
                    // Cooldown elapsed: this call becomes the probe.
                    *breaker = Breaker::HalfOpen { streak };
                }
                Breaker::HalfOpen { .. } => {
                    // A probe is already in flight; don't pile on.
                    return Err(EngineError::Unavailable {
                        reason: "cold-tier circuit breaker is probing".into(),
                    });
                }
            }
        }
        let result = op(&self.cold);
        let mut breaker = self.lock_breaker();
        match result {
            Ok(v) => {
                *breaker = Breaker::Closed { failures: 0 };
                Ok(v)
            }
            Err(e) => {
                self.cold_failures.fetch_add(1, Ordering::Relaxed);
                let trip = |streak: u32| {
                    let factor = 1u32 << streak.min(16);
                    let cooldown = (self.options.breaker_cooldown * factor)
                        .min(self.options.breaker_max_cooldown);
                    Breaker::Open {
                        until: Instant::now() + cooldown,
                        streak: streak + 1,
                    }
                };
                match *breaker {
                    Breaker::Closed { failures } => {
                        let failures = failures + 1;
                        if failures >= self.options.breaker_threshold.max(1) {
                            self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                            *breaker = trip(0);
                        } else {
                            *breaker = Breaker::Closed { failures };
                        }
                    }
                    Breaker::HalfOpen { streak } => {
                        // Failed probe: re-open with escalated cooldown.
                        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                        *breaker = trip(streak);
                    }
                    // Another thread already re-opened it; leave as is.
                    Breaker::Open { .. } => {}
                }
                Err(e)
            }
        }
    }
}

impl<C: StorageBackend> StorageBackend for TieredBackend<C> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
        let _pin = Pin::new(&self.pins, key);
        if let Some(bytes) = self.lock_hot().touch(key) {
            self.hot_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(bytes));
        }
        match self.cold_call(|c| c.get(key))? {
            Some(bytes) => {
                self.promotions.fetch_add(1, Ordering::Relaxed);
                self.admit_hot(key, &bytes);
                Ok(Some(bytes))
            }
            None => Ok(None),
        }
    }

    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
        let _pin = Pin::new(&self.pins, key);
        // Hot first: the artifact is servable even if the cold
        // write-through fails below (the caller still sees that
        // failure and can count it).
        self.admit_hot(key, bytes);
        self.cold_call(|c| c.put(key, bytes))
    }

    fn remove(&self, key: &str) -> Result<bool, EngineError> {
        let hot_removed = self.lock_hot().remove(key);
        let cold_removed = self.cold_call(|c| c.remove(key))?;
        Ok(hot_removed || cold_removed)
    }

    fn list_keys(&self) -> Result<Vec<String>, EngineError> {
        let mut keys: BTreeSet<String> = self.cold.list_keys()?.into_iter().collect();
        keys.extend(self.lock_hot().entries.keys().cloned());
        Ok(keys.into_iter().collect())
    }

    fn clear(&self) -> Result<(), EngineError> {
        {
            let mut hot = self.lock_hot();
            hot.entries.clear();
            hot.total_bytes = 0;
        }
        self.cold.clear()
    }

    fn contains(&self, key: &str) -> Result<bool, EngineError> {
        if self.lock_hot().entries.contains_key(key) {
            return Ok(true);
        }
        self.cold.contains(key)
    }

    fn len(&self) -> Result<usize, EngineError> {
        self.list_keys().map(|k| k.len())
    }

    fn is_empty(&self) -> Result<bool, EngineError> {
        Ok(self.lock_hot().entries.is_empty() && self.cold.is_empty()?)
    }

    fn health(&self) -> StoreHealth {
        let mine = StoreHealth {
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cold_failures: self.cold_failures.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker: self.breaker_state(),
            ..StoreHealth::default()
        };
        mine.merged(&self.cold.health())
    }
}

#[cfg(test)]
mod tests {
    use super::super::fault::{FaultInjectingBackend, FaultPlan};
    use super::super::MemoryBackend;
    use super::*;

    fn key(fill: char) -> String {
        String::from(fill).repeat(64)
    }

    fn small_options() -> TieredOptions {
        TieredOptions {
            hot_capacity_bytes: 64,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(5),
            breaker_max_cooldown: Duration::from_millis(50),
        }
    }

    #[test]
    fn hot_hits_and_promotions_are_counted() {
        let tiered = TieredBackend::with_defaults(MemoryBackend::new());
        let k = key('a');
        tiered.put(&k, b"payload").unwrap();
        // Write-through put admits hot: the first read is a hot hit.
        assert_eq!(tiered.get(&k).unwrap().unwrap(), b"payload");
        assert_eq!(tiered.health().hot_hits, 1);
        assert_eq!(tiered.health().promotions, 0);

        // Drop the hot entry; the next read promotes from cold.
        tiered.lock_hot().remove(&k);
        assert_eq!(tiered.get(&k).unwrap().unwrap(), b"payload");
        assert_eq!(tiered.health().promotions, 1);
        assert_eq!(tiered.get(&k).unwrap().unwrap(), b"payload");
        assert_eq!(tiered.health().hot_hits, 2);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_and_recency() {
        let tiered = TieredBackend::new(MemoryBackend::new(), small_options());
        let (ka, kb, kc) = (key('a'), key('b'), key('c'));
        tiered.put(&ka, &[1u8; 30]).unwrap();
        tiered.put(&kb, &[2u8; 30]).unwrap();
        assert_eq!(tiered.hot_bytes(), 60);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        tiered.get(&ka).unwrap();
        tiered.put(&kc, &[3u8; 30]).unwrap();
        assert!(tiered.hot_bytes() <= 64);
        assert!(tiered.health().evictions >= 1);
        let hot = tiered.lock_hot();
        assert!(hot.entries.contains_key(&kc), "newest stays");
        assert!(!hot.entries.contains_key(&kb), "LRU victim evicted");
        drop(hot);
        // The evicted artifact is still servable from cold.
        assert_eq!(tiered.get(&kb).unwrap().unwrap(), vec![2u8; 30]);
    }

    #[test]
    fn pinned_keys_survive_eviction_pressure() {
        let tiered = TieredBackend::new(MemoryBackend::new(), small_options());
        let (ka, kb) = (key('a'), key('b'));
        tiered.put(&ka, &[1u8; 40]).unwrap();
        {
            let _pin = Pin::new(&tiered.pins, &ka);
            // `a` is the LRU victim, but it's pinned: `b` itself must
            // not displace it... so `b` gets admitted and the tier runs
            // over budget until the pin releases.
            tiered.put(&kb, &[2u8; 40]).unwrap();
            assert!(tiered.lock_hot().entries.contains_key(&ka));
        }
        // Pin released: the next admission evicts back under budget.
        tiered.put(&key('c'), &[3u8; 10]).unwrap();
        assert!(tiered.hot_bytes() <= 64);
    }

    #[test]
    fn breaker_trips_fast_fails_and_recovers_via_probe() {
        let plan = FaultPlan {
            seed: 2,
            stuck_key_rate: 1.0, // every key fails, always
            ..FaultPlan::default()
        };
        let tiered = TieredBackend::new(
            FaultInjectingBackend::new(MemoryBackend::new(), plan),
            small_options(),
        );
        let k = key('a');
        // Two consecutive cold failures trip the breaker.
        assert!(tiered.get(&k).is_err());
        assert!(tiered.get(&k).is_err());
        assert_eq!(tiered.breaker_state(), BreakerState::Open);
        assert_eq!(tiered.health().breaker_trips, 1);
        // While open, cold calls fast-fail without touching the
        // backend.
        let cold_gets_before = tiered.cold().counters().gets;
        assert!(matches!(
            tiered.get(&k),
            Err(EngineError::Unavailable { .. })
        ));
        assert_eq!(tiered.cold().counters().gets, cold_gets_before);

        // After the cooldown a probe goes through; it fails (backend
        // still stuck) and re-opens with a longer cooldown.
        std::thread::sleep(Duration::from_millis(10));
        assert!(tiered.get(&k).is_err());
        assert_eq!(tiered.breaker_state(), BreakerState::Open);
        assert_eq!(tiered.health().breaker_trips, 2);

        // Hot-tier traffic keeps flowing while the breaker is open.
        let healthy = TieredBackend::new(MemoryBackend::new(), small_options());
        let kb = key('b');
        healthy.put(&kb, b"warm").unwrap();
        *healthy.lock_breaker() = Breaker::Open {
            until: Instant::now() + Duration::from_secs(60),
            streak: 1,
        };
        assert_eq!(healthy.get(&kb).unwrap().unwrap(), b"warm");

        // A healthy probe re-closes the breaker.
        *healthy.lock_breaker() = Breaker::Open {
            until: Instant::now(),
            streak: 3,
        };
        let kc = key('c');
        healthy.cold().put(&kc, b"cold only").unwrap();
        assert_eq!(healthy.get(&kc).unwrap().unwrap(), b"cold only");
        assert_eq!(healthy.breaker_state(), BreakerState::Closed);
    }
}
