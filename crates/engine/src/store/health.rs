//! Operational health reporting for storage backends.
//!
//! Every [`StorageBackend`](super::StorageBackend) can report a
//! [`StoreHealth`] snapshot: monotonic fault-handling counters (retries,
//! quarantines, injected faults, tier traffic) plus the current
//! [`BreakerState`] gauge. Wrapper backends merge their own counters
//! with their inner backend's, so one `health()` call on the top of a
//! stack (tiered → remote → fault-injecting → memory) sees the whole
//! tower. The engine snapshots health around each run and reports the
//! delta in [`RunStats`](crate::RunStats)/[`BatchStats`](crate::BatchStats),
//! and the serving layer exposes the absolute numbers in
//! [`ServerSnapshot`](../../ssta_serve/struct.ServerSnapshot.html) —
//! operators see the store misbehaving without losing traffic.

use std::fmt;

/// The cold-tier circuit breaker's state, as reported by
/// [`StoreHealth::breaker`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Normal operation: cold-tier calls flow through.
    #[default]
    Closed,
    /// Tripped: cold-tier calls are refused until the probe cooldown
    /// elapses.
    Open,
    /// Probing: one call is allowed through; success re-closes the
    /// breaker, failure re-opens it with a longer cooldown.
    HalfOpen,
}

impl BreakerState {
    /// Severity rank for merging stacked backends' states (worst wins).
    fn severity(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }

    /// Short lowercase name (`"closed"` / `"open"` / `"half-open"`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A point-in-time health snapshot of a storage backend (stack).
///
/// All counter fields are monotonic over a backend's lifetime;
/// [`delta`](Self::delta) turns two snapshots into a per-interval
/// reading. [`breaker`](Self::breaker) is a gauge, not a counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Transport operations retried after a retryable failure
    /// ([`RemoteBackend`](super::RemoteBackend)'s
    /// [`RetryPolicy`](super::RetryPolicy)).
    pub retries: u64,
    /// Corrupt artifacts quarantined — moved aside, counted, never
    /// re-served.
    pub quarantined: u64,
    /// Faults deliberately injected by a
    /// [`FaultInjectingBackend`](super::FaultInjectingBackend) in the
    /// stack (zero in production stacks).
    pub faults_injected: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Reads served from a [`TieredBackend`](super::TieredBackend)'s
    /// hot tier.
    pub hot_hits: u64,
    /// Cold-tier hits promoted into the hot tier.
    pub promotions: u64,
    /// Hot-tier entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Artifacts deleted by [`FsBackend::gc`](super::FsBackend::gc) to
    /// bring a filesystem store back under its byte budget.
    pub gc_evictions: u64,
    /// Cold-tier calls that failed (and fed the circuit breaker).
    pub cold_failures: u64,
    /// Current circuit-breaker state; [`BreakerState::Closed`] for
    /// backends without a breaker.
    pub breaker: BreakerState,
}

impl StoreHealth {
    /// The change since `baseline`: counters subtract (saturating, so a
    /// swapped-out backend reads zero rather than wrapping), the
    /// breaker gauge keeps this snapshot's value.
    #[must_use]
    pub fn delta(&self, baseline: &StoreHealth) -> StoreHealth {
        StoreHealth {
            retries: self.retries.saturating_sub(baseline.retries),
            quarantined: self.quarantined.saturating_sub(baseline.quarantined),
            faults_injected: self
                .faults_injected
                .saturating_sub(baseline.faults_injected),
            breaker_trips: self.breaker_trips.saturating_sub(baseline.breaker_trips),
            hot_hits: self.hot_hits.saturating_sub(baseline.hot_hits),
            promotions: self.promotions.saturating_sub(baseline.promotions),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            gc_evictions: self.gc_evictions.saturating_sub(baseline.gc_evictions),
            cold_failures: self.cold_failures.saturating_sub(baseline.cold_failures),
            breaker: self.breaker,
        }
    }

    /// Sums counters with another snapshot (a wrapper backend folding in
    /// its inner backend's health); the breaker gauge keeps the more
    /// severe state.
    #[must_use]
    pub fn merged(&self, inner: &StoreHealth) -> StoreHealth {
        StoreHealth {
            retries: self.retries + inner.retries,
            quarantined: self.quarantined + inner.quarantined,
            faults_injected: self.faults_injected + inner.faults_injected,
            breaker_trips: self.breaker_trips + inner.breaker_trips,
            hot_hits: self.hot_hits + inner.hot_hits,
            promotions: self.promotions + inner.promotions,
            evictions: self.evictions + inner.evictions,
            gc_evictions: self.gc_evictions + inner.gc_evictions,
            cold_failures: self.cold_failures + inner.cold_failures,
            breaker: if inner.breaker.severity() > self.breaker.severity() {
                inner.breaker
            } else {
                self.breaker
            },
        }
    }

    /// Whether every counter is zero and the breaker is closed — the
    /// "nothing to report" snapshot healthy stacks return.
    pub fn is_quiet(&self) -> bool {
        *self == StoreHealth::default()
    }
}

impl fmt::Display for StoreHealth {
    /// One compact line listing only the nonzero facts, e.g.
    /// `retries 3, quarantined 1, breaker open (2 trips)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, label: &str, n: u64| -> fmt::Result {
            if n == 0 {
                return Ok(());
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{label} {n}")
        };
        item(f, "retries", self.retries)?;
        item(f, "quarantined", self.quarantined)?;
        item(f, "faults-injected", self.faults_injected)?;
        item(f, "hot-hits", self.hot_hits)?;
        item(f, "promotions", self.promotions)?;
        item(f, "evictions", self.evictions)?;
        item(f, "gc-evictions", self.gc_evictions)?;
        item(f, "cold-failures", self.cold_failures)?;
        if self.breaker != BreakerState::Closed || self.breaker_trips > 0 {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "breaker {} ({} trips)", self.breaker, self.breaker_trips)?;
        }
        if first {
            write!(f, "healthy")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters_and_keeps_the_current_gauge() {
        let before = StoreHealth {
            retries: 2,
            quarantined: 1,
            breaker: BreakerState::Open,
            ..StoreHealth::default()
        };
        let after = StoreHealth {
            retries: 5,
            quarantined: 1,
            breaker: BreakerState::Closed,
            ..StoreHealth::default()
        };
        let d = after.delta(&before);
        assert_eq!(d.retries, 3);
        assert_eq!(d.quarantined, 0);
        assert_eq!(d.breaker, BreakerState::Closed);
        // A replaced backend (counters reset) reads zero, not a wrap.
        assert_eq!(before.delta(&after).retries, 0);
    }

    #[test]
    fn merged_sums_counters_and_keeps_the_worst_breaker() {
        let outer = StoreHealth {
            hot_hits: 4,
            breaker: BreakerState::Closed,
            ..StoreHealth::default()
        };
        let inner = StoreHealth {
            retries: 2,
            breaker: BreakerState::HalfOpen,
            ..StoreHealth::default()
        };
        let m = outer.merged(&inner);
        assert_eq!(m.hot_hits, 4);
        assert_eq!(m.retries, 2);
        assert_eq!(m.breaker, BreakerState::HalfOpen);
        assert!(!m.is_quiet());
        assert!(StoreHealth::default().is_quiet());
    }

    #[test]
    fn display_lists_only_nonzero_facts() {
        assert_eq!(StoreHealth::default().to_string(), "healthy");
        let h = StoreHealth {
            retries: 3,
            quarantined: 1,
            breaker_trips: 2,
            breaker: BreakerState::Open,
            ..StoreHealth::default()
        };
        let line = h.to_string();
        assert!(line.contains("retries 3"));
        assert!(line.contains("quarantined 1"));
        assert!(line.contains("breaker open (2 trips)"));
        assert!(!line.contains("evictions"));
    }
}
