//! The remote model-library backend: content-addressed get/put over an
//! unreliable transport, with retry, integrity re-verification, and
//! quarantine.
//!
//! A [`RemoteBackend`] wraps a *transport* — any [`StorageBackend`]
//! standing in for the far side of the wire (an in-process
//! [`MemoryBackend`](super::MemoryBackend) in tests and benches, an
//! [`FsBackend`](super::FsBackend) for a network mount) — behind a
//! [`NetworkModel`] (deterministic latency + loss) and a
//! [`RetryPolicy`]. Every `get` re-verifies the SSTM envelope's
//! integrity stamp before the bytes are released upstream:
//!
//! * an integrity failure is classified **retryable** first — wire
//!   corruption heals on a re-read;
//! * if the artifact is *still* corrupt after retries are exhausted,
//!   the stored bytes themselves are rotten: the artifact is
//!   **quarantined** — removed from the transport, stashed aside,
//!   counted, and never re-served. The get then reports a clean miss,
//!   so the caller re-extracts instead of failing.
//!
//! Transient transport errors ([`EngineError::Unavailable`]) that
//! outlive the retry budget propagate as `Unavailable`, which the
//! engine degrades into a re-extraction — analysis never fails because
//! the store did.

use super::backend::StorageBackend;
use super::envelope::decode_envelope;
use super::health::StoreHealth;
use super::retry::{key_salt, splitmix64, unit_fraction, RetryPolicy};
use crate::error::EngineError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A deterministic model of the wire between a [`RemoteBackend`] and
/// its transport: fixed per-operation latency plus seed-keyed packet
/// loss. Loss draws are pure functions of `(seed, key, op index)`, so
/// a replayed run loses the same operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Latency added to every transport operation.
    pub latency: Duration,
    /// Probability an operation is lost in transit (surfacing as a
    /// retryable [`EngineError::Unavailable`]).
    pub loss_rate: f64,
    /// Seed for the loss draws.
    pub seed: u64,
}

impl Default for NetworkModel {
    /// A perfect wire: no latency, no loss.
    fn default() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            loss_rate: 0.0,
            seed: 0,
        }
    }
}

impl NetworkModel {
    /// A perfect wire (alias for [`Default::default`]).
    pub fn perfect() -> Self {
        NetworkModel::default()
    }

    /// Whether the `index`-th operation on `key` is lost.
    fn drops(&self, key: &str, index: u64) -> bool {
        self.loss_rate > 0.0
            && unit_fraction(splitmix64(
                self.seed ^ key_salt(key).rotate_left(13) ^ index.rotate_left(41),
            )) < self.loss_rate
    }
}

/// A content-addressed remote artifact store: transport + network model
/// + retry policy + integrity re-verification + quarantine.
#[derive(Debug)]
pub struct RemoteBackend<B = super::MemoryBackend> {
    transport: B,
    network: NetworkModel,
    policy: RetryPolicy,
    verify: bool,
    /// Quarantined artifacts, keyed by store key: moved aside here so
    /// they are never re-served but stay inspectable post-mortem.
    quarantine: Mutex<BTreeMap<String, Vec<u8>>>,
    /// Per-key wire-operation sequence numbers for the loss draws.
    seq: Mutex<BTreeMap<String, u64>>,
    retries: AtomicU64,
    quarantined: AtomicU64,
}

impl<B: StorageBackend> RemoteBackend<B> {
    /// Wraps `transport` behind `network` and `policy`, with envelope
    /// verification on every get.
    pub fn new(transport: B, network: NetworkModel, policy: RetryPolicy) -> Self {
        RemoteBackend {
            transport,
            network,
            policy,
            verify: true,
            quarantine: Mutex::new(BTreeMap::new()),
            seq: Mutex::new(BTreeMap::new()),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// A remote backend over a perfect wire with the default retry
    /// policy — behaves like the bare transport plus verification.
    pub fn perfect(transport: B) -> Self {
        RemoteBackend::new(transport, NetworkModel::perfect(), RetryPolicy::default())
    }

    /// Disables envelope verification on get (builder style). Only for
    /// transports storing non-envelope bytes; the conformance suite
    /// runs the verifying configuration with real envelopes.
    #[must_use]
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }

    /// The wrapped transport.
    pub fn transport(&self) -> &B {
        &self.transport
    }

    /// The active retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Keys currently held in quarantine, in ascending order.
    pub fn quarantined_keys(&self) -> Vec<String> {
        self.lock_quarantine().keys().cloned().collect()
    }

    /// The quarantined bytes for `key`, if any (post-mortem access).
    pub fn quarantined_bytes(&self, key: &str) -> Option<Vec<u8>> {
        self.lock_quarantine().get(key).cloned()
    }

    fn lock_quarantine(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.quarantine.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Claims the next wire-operation index for `key`.
    fn next_index(&self, key: &str) -> u64 {
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        let slot = seq.entry(key.to_owned()).or_insert(0);
        let index = *slot;
        *slot += 1;
        index
    }

    /// One wire round-trip: latency, then a loss draw, then the
    /// transport call.
    fn wire<T>(
        &self,
        key: &str,
        op: impl FnOnce(&B) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        if !self.network.latency.is_zero() {
            std::thread::sleep(self.network.latency);
        }
        if self.network.drops(key, self.next_index(key)) {
            return Err(EngineError::Unavailable {
                reason: format!("network dropped operation on `{key}`"),
            });
        }
        op(&self.transport)
    }

    /// Moves the rotten bytes for `key` into quarantine: removed from
    /// the transport (best-effort — a partitioned transport cannot
    /// block quarantine), stashed aside, counted. Subsequent gets see a
    /// miss and re-extract; the key is never re-served.
    fn quarantine_artifact(&self, key: &str, bytes: Vec<u8>) {
        let _ = self.transport.remove(key);
        self.lock_quarantine().insert(key.to_owned(), bytes);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Transient transport failures are worth retrying; so are
    /// integrity rejects (wire corruption heals on a re-read — only
    /// *persistent* corruption is quarantined, after exhaustion).
    fn retryable(e: &EngineError) -> bool {
        matches!(
            e,
            EngineError::Unavailable { .. } | EngineError::Store { .. } | EngineError::Io(_)
        )
    }
}

impl<B: StorageBackend> StorageBackend for RemoteBackend<B> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
        let salt = key_salt(key);
        let last_bytes = Mutex::new(None::<Vec<u8>>);
        let (result, outcome) = self.policy.run(salt, Self::retryable, |_attempt| {
            let fetched = self.wire(key, |t| t.get(key))?;
            let Some(bytes) = fetched else {
                return Ok(None);
            };
            if self.verify {
                if let Err(e) = decode_envelope(&bytes) {
                    // Remember the rotten bytes: if this rejection is
                    // the last attempt, they go to quarantine.
                    *last_bytes.lock().unwrap_or_else(|p| p.into_inner()) = Some(bytes);
                    return Err(e);
                }
            }
            Ok(Some(bytes))
        });
        self.retries
            .fetch_add(u64::from(outcome.retries), Ordering::Relaxed);
        match result {
            Ok(bytes) => Ok(bytes),
            Err(e) => {
                // Retries exhausted. If any attempt fetched bytes that
                // failed verification and none produced a clean copy,
                // the stored artifact is treated as rotten — even when
                // the final attempt happened to die on the wire
                // instead. Quarantine it and report a miss so the
                // caller re-extracts.
                let rotten = last_bytes.lock().unwrap_or_else(|p| p.into_inner()).take();
                match (rotten, e) {
                    (Some(bytes), _) => {
                        self.quarantine_artifact(key, bytes);
                        Ok(None)
                    }
                    // A transport-originated integrity error without
                    // captured bytes: nothing to stash, still rotten.
                    (None, EngineError::Store { .. }) => {
                        self.quarantine_artifact(key, Vec::new());
                        Ok(None)
                    }
                    (None, e) => Err(e),
                }
            }
        }
    }

    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
        // A fresh artifact supersedes any quarantined one: the new
        // bytes are re-verified on every future get anyway.
        self.lock_quarantine().remove(key);
        let salt = key_salt(key).rotate_left(1);
        let (result, outcome) = self.policy.run(salt, Self::retryable, |_attempt| {
            self.wire(key, |t| t.put(key, bytes))
        });
        self.retries
            .fetch_add(u64::from(outcome.retries), Ordering::Relaxed);
        result
    }

    fn remove(&self, key: &str) -> Result<bool, EngineError> {
        let quarantined = self.lock_quarantine().remove(key).is_some();
        let salt = key_salt(key).rotate_left(2);
        let (result, outcome) = self.policy.run(salt, Self::retryable, |_attempt| {
            self.wire(key, |t| t.remove(key))
        });
        self.retries
            .fetch_add(u64::from(outcome.retries), Ordering::Relaxed);
        result.map(|existed| existed || quarantined)
    }

    fn list_keys(&self) -> Result<Vec<String>, EngineError> {
        // Listing is a control-plane call: no loss draw (it would skew
        // per-key sequences), just latency.
        if !self.network.latency.is_zero() {
            std::thread::sleep(self.network.latency);
        }
        self.transport.list_keys()
    }

    fn clear(&self) -> Result<(), EngineError> {
        self.lock_quarantine().clear();
        self.transport.clear()
    }

    fn contains(&self, key: &str) -> Result<bool, EngineError> {
        self.transport.contains(key)
    }

    fn len(&self) -> Result<usize, EngineError> {
        self.transport.len()
    }

    fn is_empty(&self) -> Result<bool, EngineError> {
        self.transport.is_empty()
    }

    fn health(&self) -> StoreHealth {
        let mine = StoreHealth {
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            ..StoreHealth::default()
        };
        mine.merged(&self.transport.health())
    }
}

#[cfg(test)]
mod tests {
    use super::super::envelope::encode_envelope;
    use super::super::{Codec, MemoryBackend};
    use super::*;

    fn key(fill: char) -> String {
        String::from(fill).repeat(64)
    }

    fn envelope(payload: &[u8]) -> Vec<u8> {
        encode_envelope(Codec::Binary, payload)
    }

    #[test]
    fn perfect_wire_round_trips_envelopes() {
        let remote = RemoteBackend::perfect(MemoryBackend::new());
        let k = key('a');
        let bytes = envelope(b"model payload");
        remote.put(&k, &bytes).unwrap();
        assert_eq!(remote.get(&k).unwrap().unwrap(), bytes);
        assert!(remote.health().is_quiet());
    }

    #[test]
    fn lossy_wire_retries_until_success() {
        // 40% loss with 6 attempts: every op in this short test gets
        // through, but some need retries.
        let network = NetworkModel {
            loss_rate: 0.4,
            seed: 11,
            ..NetworkModel::default()
        };
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let remote = RemoteBackend::new(MemoryBackend::new(), network, policy);
        for fill in ['a', 'b', 'c', 'd'] {
            let k = key(fill);
            let bytes = envelope(format!("payload {fill}").as_bytes());
            remote.put(&k, &bytes).unwrap();
            assert_eq!(remote.get(&k).unwrap().unwrap(), bytes);
        }
        assert!(remote.health().retries > 0, "40% loss must force retries");
        assert_eq!(remote.health().quarantined, 0);
    }

    #[test]
    fn persistently_corrupt_artifact_is_quarantined_and_never_reserved() {
        let transport = MemoryBackend::new();
        let k = key('e');
        let mut rotten = envelope(b"was a fine model");
        *rotten.last_mut().unwrap() ^= 0x40; // break the stamp
        transport.put(&k, &rotten).unwrap();

        let remote = RemoteBackend::perfect(transport);
        // The get re-reads (integrity failures are retryable), then
        // quarantines and reports a miss.
        assert_eq!(remote.get(&k).unwrap(), None);
        assert_eq!(remote.health().quarantined, 1);
        assert!(remote.health().retries > 0, "corruption is retried first");
        assert_eq!(remote.quarantined_keys(), vec![k.clone()]);
        assert_eq!(remote.quarantined_bytes(&k).unwrap(), rotten);
        // Gone from the transport; every future get is a clean miss.
        assert_eq!(remote.transport().get(&k).unwrap(), None);
        assert_eq!(remote.get(&k).unwrap(), None);
        assert_eq!(remote.health().quarantined, 1, "quarantine counted once");

        // A fresh put supersedes the quarantined artifact.
        let fresh = envelope(b"re-extracted model");
        remote.put(&k, &fresh).unwrap();
        assert_eq!(remote.get(&k).unwrap().unwrap(), fresh);
        assert!(remote.quarantined_keys().is_empty());
    }

    #[test]
    fn dead_wire_exhausts_retries_with_unavailable() {
        let network = NetworkModel {
            loss_rate: 1.0,
            seed: 5,
            ..NetworkModel::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            ..RetryPolicy::default()
        };
        let remote = RemoteBackend::new(MemoryBackend::new(), network, policy);
        let k = key('f');
        assert!(matches!(
            remote.get(&k),
            Err(EngineError::Unavailable { .. })
        ));
        assert!(matches!(
            remote.put(&k, &envelope(b"x")),
            Err(EngineError::Unavailable { .. })
        ));
        assert_eq!(remote.health().retries, 4, "2 retries per failed op");
    }
}
