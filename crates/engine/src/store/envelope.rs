//! The versioned SSTM artifact envelope.
//!
//! Every stored artifact — whatever backend holds it — is an envelope:
//! a fixed header carrying the format version, the payload codec (v2)
//! and an integrity stamp, followed by the payload bytes. The envelope
//! is what makes artifacts safe to exchange: readers reject truncated,
//! corrupt, wrong-magic or wrong-version bytes with a precise
//! [`EngineError::Store`] reason instead of misinterpreting them.
//!
//! See the [module-level documentation](super) for the byte-exact
//! layout of both envelope versions and the compatibility matrix.

use crate::error::EngineError;
use ssta_math::digest::sha256;
use std::fmt;

/// Magic bytes opening every artifact.
pub const MAGIC: [u8; 4] = *b"SSTM";
/// The envelope version this build writes.
pub const FORMAT_VERSION: u16 = 2;
/// The legacy envelope version (JSON-only, no codec byte); still read.
pub const FORMAT_VERSION_V1: u16 = 1;

const HEADER_LEN_V1: usize = 22;
const HEADER_LEN_V2: usize = 23;

/// How a model payload is serialized inside the envelope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Codec {
    /// `serde_json` text (payload codec 0) — self-describing and
    /// greppable, but ~2–3× larger and slower to parse.
    Json,
    /// The deterministic binary layout of [`ssta_core::codec`]
    /// (payload codec 1) — the default.
    #[default]
    Binary,
}

impl Codec {
    /// The codec byte stored in the v2 envelope header.
    pub fn byte(self) -> u8 {
        match self {
            Codec::Json => 0,
            Codec::Binary => 1,
        }
    }

    /// Parses a v2 envelope codec byte.
    pub fn from_byte(b: u8) -> Option<Codec> {
        match b {
            0 => Some(Codec::Json),
            1 => Some(Codec::Binary),
            _ => None,
        }
    }

    /// Short lowercase name (`"json"` / `"binary"`).
    pub fn name(self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoded envelope: header facts plus a borrow of the payload.
#[derive(Debug, Clone, Copy)]
pub struct Envelope<'a> {
    /// Envelope version the artifact was written under (1 or 2).
    pub version: u16,
    /// Payload codec (v1 artifacts are implicitly [`Codec::Json`]).
    pub codec: Codec,
    /// The integrity-checked payload bytes.
    pub payload: &'a [u8],
}

/// Wraps a payload in the current (v2) envelope.
pub fn encode_envelope(codec: Codec, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN_V2 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(codec.byte());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sha256(payload).prefix_u64().to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope (either version) and returns its parsed form.
///
/// # Errors
///
/// Returns [`EngineError::Store`] describing the first defect found:
/// truncation, bad magic, unsupported version, unknown codec byte,
/// payload length mismatch, or integrity stamp mismatch.
pub fn decode_envelope(bytes: &[u8]) -> Result<Envelope<'_>, EngineError> {
    let reject = |reason: String| EngineError::Store { reason };
    if bytes.len() < HEADER_LEN_V1 {
        return Err(reject(format!(
            "truncated header: {} bytes, need at least {HEADER_LEN_V1}",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(reject(format!(
            "bad magic {:02x?}, expected {:02x?}",
            &bytes[..4],
            MAGIC
        )));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    let (codec, header_len) = match version {
        FORMAT_VERSION_V1 => (Codec::Json, HEADER_LEN_V1),
        FORMAT_VERSION => {
            if bytes.len() < HEADER_LEN_V2 {
                return Err(reject(format!(
                    "truncated v2 header: {} bytes, need {HEADER_LEN_V2}",
                    bytes.len()
                )));
            }
            let codec = Codec::from_byte(bytes[6]).ok_or_else(|| reject(format!(
                "unknown payload codec byte {:#04x}",
                bytes[6]
            )))?;
            (codec, HEADER_LEN_V2)
        }
        v => {
            return Err(reject(format!(
                "unsupported format version {v}, this build reads {FORMAT_VERSION_V1} and {FORMAT_VERSION}"
            )))
        }
    };
    let len_at = header_len - 16;
    let len = u64::from_le_bytes(bytes[len_at..len_at + 8].try_into().expect("8 bytes")) as usize;
    let payload = &bytes[header_len..];
    if payload.len() != len {
        return Err(reject(format!(
            "payload length mismatch: header says {len}, artifact has {}",
            payload.len()
        )));
    }
    let stamp_at = header_len - 8;
    let stamp = u64::from_be_bytes(bytes[stamp_at..header_len].try_into().expect("8 bytes"));
    let actual = sha256(payload).prefix_u64();
    if stamp != actual {
        return Err(reject(format!(
            "integrity stamp mismatch: header {stamp:016x}, payload {actual:016x}"
        )));
    }
    Ok(Envelope {
        version,
        codec,
        payload,
    })
}

/// Wraps a payload in the legacy v1 envelope. Only used by tests and
/// fixtures: writers always emit v2, but the v1 layout must stay
/// byte-exact so migration coverage keeps testing the real thing.
pub fn encode_envelope_v1(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN_V1 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION_V1.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sha256(payload).prefix_u64().to_be_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_envelope_round_trips_both_codecs() {
        for codec in [Codec::Json, Codec::Binary] {
            let payload = b"payload bytes";
            let bytes = encode_envelope(codec, payload);
            let env = decode_envelope(&bytes).unwrap();
            assert_eq!(env.version, FORMAT_VERSION);
            assert_eq!(env.codec, codec);
            assert_eq!(env.payload, payload);
        }
    }

    #[test]
    fn v1_envelope_still_decodes_as_json() {
        let payload = b"{\"hello\": 1}";
        let bytes = encode_envelope_v1(payload);
        let env = decode_envelope(&bytes).unwrap();
        assert_eq!(env.version, FORMAT_VERSION_V1);
        assert_eq!(env.codec, Codec::Json);
        assert_eq!(env.payload, payload);
    }

    #[test]
    fn envelope_rejects_defects() {
        let bytes = encode_envelope(Codec::Binary, b"payload");

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_envelope(&bad_magic),
            Err(EngineError::Store { reason }) if reason.contains("magic")
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_envelope(&bad_version),
            Err(EngineError::Store { reason }) if reason.contains("version 99")
        ));

        let mut bad_codec = bytes.clone();
        bad_codec[6] = 7;
        assert!(matches!(
            decode_envelope(&bad_codec),
            Err(EngineError::Store { reason }) if reason.contains("codec")
        ));

        let mut flipped = bytes.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(matches!(
            decode_envelope(&flipped),
            Err(EngineError::Store { reason }) if reason.contains("integrity")
        ));

        assert!(matches!(
            decode_envelope(&bytes[..10]),
            Err(EngineError::Store { reason }) if reason.contains("truncated")
        ));

        let mut short_payload = bytes;
        short_payload.pop();
        assert!(matches!(
            decode_envelope(&short_payload),
            Err(EngineError::Store { reason }) if reason.contains("length mismatch")
        ));
    }

    #[test]
    fn codec_bytes_round_trip() {
        for codec in [Codec::Json, Codec::Binary] {
            assert_eq!(Codec::from_byte(codec.byte()), Some(codec));
        }
        assert_eq!(Codec::from_byte(2), None);
        assert_eq!(Codec::default(), Codec::Binary);
        assert_eq!(Codec::Json.to_string(), "json");
    }
}
