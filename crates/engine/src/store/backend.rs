//! The storage abstraction the model library is built on.
//!
//! A [`StorageBackend`] moves opaque envelope bytes under
//! content-addressed keys; it knows nothing about timing models,
//! codecs or envelope versions — that is all
//! [`ModelStore`](super::ModelStore)'s job. Keeping the boundary at
//! raw bytes is what makes backends swappable: the sharded local
//! filesystem ([`FsBackend`](super::FsBackend)), the in-process map
//! ([`MemoryBackend`](super::MemoryBackend)), and eventually a remote
//! object store all satisfy the same five-method contract and pass the
//! same conformance suite.

use super::health::StoreHealth;
use crate::error::EngineError;
use std::fmt;

/// A key-value byte store for model-library artifacts.
///
/// # Contract
///
/// * Keys are validated by the store layer before reaching a backend:
///   implementations may assume `key` is 64 lowercase-hex characters
///   (a [`ModuleFingerprint`](ssta_core::ModuleFingerprint) in hex)
///   and need not defend against path traversal themselves.
/// * [`put`](Self::put) replaces atomically with respect to concurrent
///   readers of the same key: a reader observes the old bytes or the
///   new bytes, never a mix.
/// * All methods are `&self`: backends are internally synchronized and
///   safe to share across threads.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Reads the artifact bytes under `key`; `Ok(None)` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] for backend failures (absence is not
    /// a failure).
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError>;

    /// Writes `bytes` under `key`, replacing any previous artifact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] for write failures.
    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError>;

    /// Removes the artifact under `key`; returns whether one existed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] for removal failures other than
    /// absence.
    fn remove(&self, key: &str) -> Result<bool, EngineError>;

    /// All keys currently stored, in ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the backend cannot be enumerated.
    fn list_keys(&self) -> Result<Vec<String>, EngineError>;

    /// Removes every artifact, including ones written by other
    /// processes sharing the backend.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if artifacts cannot be removed.
    fn clear(&self) -> Result<(), EngineError>;

    /// Whether an artifact exists under `key` (without validating its
    /// contents). Backends with cheap existence checks should override
    /// the default full read.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] for backend failures.
    fn contains(&self, key: &str) -> Result<bool, EngineError> {
        Ok(self.get(key)?.is_some())
    }

    /// Number of artifacts currently stored.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the backend cannot be enumerated.
    fn len(&self) -> Result<usize, EngineError> {
        Ok(self.list_keys()?.len())
    }

    /// Whether the backend holds no artifacts. Backends that can
    /// short-circuit on the first artifact found should override the
    /// default full enumeration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the backend cannot be enumerated.
    fn is_empty(&self) -> Result<bool, EngineError> {
        Ok(self.len()? == 0)
    }

    /// Operational health of this backend (stack): fault-handling
    /// counters plus the circuit-breaker gauge. Wrapper backends merge
    /// their own counters with their inner backend's; plain backends
    /// keep the default all-quiet snapshot. Never fails — health must
    /// stay readable while the backend itself is misbehaving.
    fn health(&self) -> StoreHealth {
        StoreHealth::default()
    }
}

macro_rules! delegate_backend {
    ($wrapper:ty) => {
        impl<B: StorageBackend + ?Sized> StorageBackend for $wrapper {
            fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
                (**self).get(key)
            }
            fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
                (**self).put(key, bytes)
            }
            fn remove(&self, key: &str) -> Result<bool, EngineError> {
                (**self).remove(key)
            }
            fn list_keys(&self) -> Result<Vec<String>, EngineError> {
                (**self).list_keys()
            }
            fn clear(&self) -> Result<(), EngineError> {
                (**self).clear()
            }
            fn contains(&self, key: &str) -> Result<bool, EngineError> {
                (**self).contains(key)
            }
            fn len(&self) -> Result<usize, EngineError> {
                (**self).len()
            }
            fn is_empty(&self) -> Result<bool, EngineError> {
                (**self).is_empty()
            }
            fn health(&self) -> StoreHealth {
                (**self).health()
            }
        }
    };
}

// Smart pointers delegate, so `ModelStore<Box<dyn StorageBackend>>`
// (the engine's type-erased store) and `ModelStore<Arc<MemoryBackend>>`
// (one map shared by several stores) both just work.
delegate_backend!(Box<B>);
delegate_backend!(std::sync::Arc<B>);
