//! The thread-safe in-memory backend.
//!
//! A [`MemoryBackend`] holds artifacts in a mutex-guarded map: the
//! right store for services that want a shared hot tier without disk
//! I/O, for ephemeral runs that must not leave files behind, and for
//! tests (the backend conformance suite runs against it and
//! [`FsBackend`](super::FsBackend) identically). Wrap one in an
//! [`Arc`](std::sync::Arc) to share a single library across several
//! stores or engines.

use super::backend::StorageBackend;
use crate::error::EngineError;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// An in-process, mutex-synchronized artifact store.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    map: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemoryBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        MemoryBackend::default()
    }

    /// Total payload bytes currently held (for capacity accounting).
    pub fn total_bytes(&self) -> usize {
        self.lock().values().map(Vec::len).sum()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        // A poisoned mutex means another thread panicked mid-operation;
        // every operation leaves the map consistent (single insert /
        // remove / clear), so the data is still valid.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl StorageBackend for MemoryBackend {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
        Ok(self.lock().get(key).cloned())
    }

    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
        self.lock().insert(key.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn remove(&self, key: &str) -> Result<bool, EngineError> {
        Ok(self.lock().remove(key).is_some())
    }

    fn list_keys(&self) -> Result<Vec<String>, EngineError> {
        // BTreeMap iterates in key order, matching FsBackend's sorted
        // listing.
        Ok(self.lock().keys().cloned().collect())
    }

    fn clear(&self) -> Result<(), EngineError> {
        self.lock().clear();
        Ok(())
    }

    fn contains(&self, key: &str) -> Result<bool, EngineError> {
        Ok(self.lock().contains_key(key))
    }

    fn len(&self) -> Result<usize, EngineError> {
        Ok(self.lock().len())
    }

    fn is_empty(&self) -> Result<bool, EngineError> {
        Ok(self.lock().is_empty())
    }
}
