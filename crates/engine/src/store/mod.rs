//! The persistent model library: a content-addressed, versioned store
//! of extracted [`TimingModel`]s over pluggable storage backends.
//!
//! # Architecture
//!
//! The subsystem is three layers, each swappable independently:
//!
//! * **[`ModelStore`]** — the typed facade. Validates keys, picks the
//!   payload codec, wraps/unwraps the envelope, and transparently
//!   migrates legacy artifacts. Generic over its backend
//!   (`ModelStore<B: StorageBackend>`, defaulting to [`FsBackend`]).
//! * **[`envelope`]** — the versioned artifact framing: magic, format
//!   version, payload codec (v2), length, integrity stamp.
//! * **[`StorageBackend`]** — raw byte transport:
//!   [`FsBackend`] (sharded local filesystem, atomic
//!   temp-file+rename writes), [`MemoryBackend`] (mutex-guarded
//!   in-process map), [`RemoteBackend`] (content-addressed get/put
//!   over an unreliable transport with retry, integrity re-check and
//!   quarantine), [`TieredBackend`] (hot in-memory tier over a cold
//!   backend, with LRU eviction and a circuit breaker), and
//!   [`FaultInjectingBackend`] (deterministic chaos wrapper for tests
//!   and benches) — all behind the same contract, all passing the same
//!   conformance suite, all reporting [`StoreHealth`].
//!
//! # Artifact format
//!
//! Version 2 (written by this build):
//!
//! | bytes | contents |
//! |---|---|
//! | 0..4 | magic `SSTM` |
//! | 4..6 | format version, u16 little-endian (2) |
//! | 6..7 | payload codec: 0 = JSON, 1 = binary ([`ssta_core::codec`]) |
//! | 7..15 | payload length in bytes, u64 little-endian |
//! | 15..23 | integrity stamp: first 8 bytes of SHA-256(payload), big-endian |
//! | 23.. | payload: the serialized [`TimingModel`] |
//!
//! Version 1 (legacy; still read, never written): identical except the
//! codec byte does not exist — bytes 6..14 are the length, 14..22 the
//! stamp, 22.. the payload, and the payload is always JSON.
//!
//! # Compatibility matrix
//!
//! | artifact | v1 reader (old builds) | v2 reader (this build) |
//! |---|---|---|
//! | v1 / JSON | loads | loads; rewritten as v2 in place on hit |
//! | v2 / JSON | rejected (version) | loads |
//! | v2 / binary | rejected (version) | loads |
//!
//! Readers reject — with a precise [`EngineError::Store`] reason —
//! artifacts that are truncated, carry the wrong magic, an unsupported
//! version or an unknown codec byte, fail the integrity check, or do
//! not decode. A v1 hit is re-encoded under the store's write codec
//! and written back (best-effort), so a warm library migrates itself
//! to the compact format one artifact at a time.

mod backend;
pub mod envelope;
mod fault;
mod fs;
mod health;
mod memory;
mod remote;
mod retry;
mod tiered;

pub use backend::StorageBackend;
pub use envelope::{decode_envelope, encode_envelope, Codec, Envelope, FORMAT_VERSION, MAGIC};
pub use fault::{FaultCounters, FaultInjectingBackend, FaultPlan};
pub use fs::FsBackend;
pub use health::{BreakerState, StoreHealth};
pub use memory::MemoryBackend;
pub use remote::{NetworkModel, RemoteBackend};
pub use retry::{RetryOutcome, RetryPolicy};
pub use tiered::{TieredBackend, TieredOptions};

use crate::error::EngineError;
use ssta_core::{SstaConfig, TimingModel};
use std::path::{Path, PathBuf};

/// Domain separator keying SDF-imported artifacts; content-addressed
/// over the imported model's binary encoding, so re-importing the same
/// file is idempotent and two different cells can never collide.
const SDF_IMPORT_DOMAIN: &[u8] = b"hier-ssta sdf import v1\n";

/// Receipt for one cell imported from an SDF file by
/// [`ModelStore::import_sdf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfImport {
    /// The cell's `CELLTYPE` — the imported model's name.
    pub name: String,
    /// Store key the model was saved under.
    pub key: String,
    /// Whether the cell carried an `SSTM` payload, making the imported
    /// model bit-identical to the exported one (as opposed to an
    /// interface-only corner approximation).
    pub bit_exact: bool,
}

/// Facts about one stored artifact, reported by the traced accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Total artifact size in bytes (envelope header + payload).
    pub bytes: usize,
    /// Payload codec the artifact was stored under.
    pub codec: Codec,
    /// Envelope version the artifact was stored under.
    pub version: u16,
}

/// Checks that `key` is a well-formed store key: exactly 64 lowercase
/// hexadecimal characters (a [`ModuleFingerprint`](ssta_core::ModuleFingerprint)
/// in hex). Anything else — wrong length, uppercase, path separators —
/// is rejected before it can reach a backend, closing the
/// path-traversal/garbage-file hole of interpolating raw strings into
/// paths.
///
/// # Errors
///
/// Returns [`EngineError::Store`] naming the offending key.
pub fn validate_key(key: &str) -> Result<(), EngineError> {
    let well_formed = key.len() == 64
        && key
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if !well_formed {
        return Err(EngineError::Store {
            reason: format!(
                "invalid store key `{}`: expected 64 lowercase hex characters",
                key.escape_default()
            ),
        });
    }
    Ok(())
}

/// A content-addressed library of extracted timing models over a
/// [`StorageBackend`] (the sharded local filesystem by default).
#[derive(Debug)]
pub struct ModelStore<B: StorageBackend = FsBackend> {
    backend: B,
    codec: Codec,
}

impl ModelStore {
    /// Opens (creating if necessary) a filesystem-backed store rooted
    /// at `root`, writing the default codec ([`Codec::Binary`]).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, EngineError> {
        Ok(ModelStore::with_backend(FsBackend::open(root)?))
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        self.backend.root()
    }
}

impl<B: StorageBackend> ModelStore<B> {
    /// Wraps an arbitrary backend, writing the default codec
    /// ([`Codec::Binary`]).
    pub fn with_backend(backend: B) -> Self {
        ModelStore {
            backend,
            codec: Codec::default(),
        }
    }

    /// Sets the codec used for writes (reads auto-detect from the
    /// envelope, so a library can hold a mix).
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// The codec this store writes.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Operational health of the backend stack: retries, quarantines,
    /// tier traffic, circuit-breaker state. All-quiet for plain
    /// backends.
    pub fn health(&self) -> StoreHealth {
        self.backend.health()
    }

    /// Type-erases the backend, for holders that must name a single
    /// store type over interchangeable backends (e.g. the engine).
    pub fn boxed(self) -> ModelStore<Box<dyn StorageBackend>>
    where
        B: 'static,
    {
        ModelStore {
            backend: Box::new(self.backend),
            codec: self.codec,
        }
    }

    /// Whether an artifact exists under `key` (without validating it).
    /// Malformed keys hold nothing by definition.
    pub fn contains(&self, key: &str) -> bool {
        validate_key(key).is_ok() && self.backend.contains(key).unwrap_or(false)
    }

    /// Loads and validates the model stored under `key`; `Ok(None)` if
    /// absent.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] for malformed keys and corrupt,
    /// truncated or wrong-version artifacts, and [`EngineError::Io`]
    /// for read failures.
    pub fn load(&self, key: &str) -> Result<Option<TimingModel>, EngineError> {
        Ok(self.load_traced(key)?.map(|(model, _)| model))
    }

    /// [`load`](Self::load), also reporting the artifact's size, codec
    /// and envelope version.
    ///
    /// A hit on a legacy v1 artifact re-encodes it under this store's
    /// write codec and writes it back (best-effort — a read-only
    /// library still serves v1 hits), so warm libraries migrate
    /// themselves incrementally. The reported [`ArtifactInfo`]
    /// describes the artifact as found, pre-migration.
    ///
    /// # Errors
    ///
    /// See [`load`](Self::load).
    pub fn load_traced(
        &self,
        key: &str,
    ) -> Result<Option<(TimingModel, ArtifactInfo)>, EngineError> {
        validate_key(key)?;
        let Some(bytes) = self.backend.get(key)? else {
            return Ok(None);
        };
        let env = decode_envelope(&bytes)?;
        let model = decode_payload(env.codec, env.payload, key)?;
        let info = ArtifactInfo {
            bytes: bytes.len(),
            codec: env.codec,
            version: env.version,
        };
        if env.version != FORMAT_VERSION {
            if let Ok(payload) = encode_payload(self.codec, &model) {
                let _ = self
                    .backend
                    .put(key, &encode_envelope(self.codec, &payload));
            }
        }
        Ok(Some((model, info)))
    }

    /// Stores `model` under `key`, atomically replacing any previous
    /// artifact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] for malformed keys or
    /// unserializable models and [`EngineError::Io`] for write
    /// failures.
    pub fn save(&self, key: &str, model: &TimingModel) -> Result<(), EngineError> {
        self.save_traced(key, model).map(|_| ())
    }

    /// [`save`](Self::save), also reporting the bytes written.
    ///
    /// # Errors
    ///
    /// See [`save`](Self::save).
    pub fn save_traced(&self, key: &str, model: &TimingModel) -> Result<usize, EngineError> {
        validate_key(key)?;
        let payload = encode_payload(self.codec, model)?;
        let bytes = encode_envelope(self.codec, &payload);
        self.backend.put(key, &bytes)?;
        Ok(bytes.len())
    }

    /// Removes the artifact under `key`; returns whether one existed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] for malformed keys and
    /// [`EngineError::Io`] for removal failures other than absence.
    pub fn remove(&self, key: &str) -> Result<bool, EngineError> {
        validate_key(key)?;
        self.backend.remove(key)
    }

    /// All stored keys, in ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the backend cannot be enumerated.
    pub fn keys(&self) -> Result<Vec<String>, EngineError> {
        self.backend.list_keys()
    }

    /// Number of artifacts currently stored.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the backend cannot be enumerated.
    pub fn len(&self) -> Result<usize, EngineError> {
        self.backend.len()
    }

    /// Whether the store holds no artifacts (short-circuits on the
    /// first artifact found — no full scan).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the backend cannot be enumerated.
    pub fn is_empty(&self) -> Result<bool, EngineError> {
        self.backend.is_empty()
    }

    /// Removes every artifact in the store, including ones written by
    /// other engines or processes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if artifacts cannot be removed.
    pub fn clear(&self) -> Result<(), EngineError> {
        self.backend.clear()
    }

    /// Imports every cell of an SDF file into the library.
    ///
    /// Cells carrying an `(SSTM "…")` payload decode to the exported
    /// model bit-identically; foreign cells become interface-only
    /// approximate models under `config`, with corner spread read back
    /// as `sigmas` standard deviations (see
    /// [`ssta_sdf::import_cell`]). Keys are content-addressed over the
    /// imported model's binary encoding, so the import is idempotent
    /// and distinct models never collide; the returned receipts map
    /// each cell name to its key.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Store`] for SDF text that does not parse
    /// (with the parser's line/column in the reason) or cells that do
    /// not form a well-shaped model, and save errors as usual.
    pub fn import_sdf(
        &self,
        text: &str,
        config: &SstaConfig,
        sigmas: f64,
    ) -> Result<Vec<SdfImport>, EngineError> {
        let sdf = ssta_sdf::parse_sdf(text).map_err(|e| EngineError::Store {
            reason: e.to_string(),
        })?;
        let mut receipts = Vec::with_capacity(sdf.cells.len());
        for cell in &sdf.cells {
            let model =
                ssta_sdf::import_cell(cell, config, sigmas).map_err(|e| EngineError::Store {
                    reason: format!("SDF cell `{}` does not import: {e}", cell.celltype),
                })?;
            let payload = ssta_core::codec::encode_model(&model);
            let mut keyed = SDF_IMPORT_DOMAIN.to_vec();
            keyed.extend_from_slice(&payload);
            let key = ssta_math::digest::sha256(&keyed).to_hex();
            self.save(&key, &model)?;
            receipts.push(SdfImport {
                name: cell.celltype.clone(),
                key,
                bit_exact: cell.sstm.is_some(),
            });
        }
        Ok(receipts)
    }
}

/// Serializes a model under the given codec.
fn encode_payload(codec: Codec, model: &TimingModel) -> Result<Vec<u8>, EngineError> {
    match codec {
        Codec::Json => serde_json::to_vec(model).map_err(|e| EngineError::Store {
            reason: format!("model does not serialize: {e}"),
        }),
        Codec::Binary => Ok(ssta_core::codec::encode_model(model)),
    }
}

/// Deserializes a payload under the given codec.
fn decode_payload(codec: Codec, payload: &[u8], key: &str) -> Result<TimingModel, EngineError> {
    match codec {
        Codec::Json => serde_json::from_slice(payload).map_err(|e| EngineError::Store {
            reason: format!("JSON payload of `{key}` does not decode: {e}"),
        }),
        Codec::Binary => ssta_core::codec::decode_model(payload).map_err(|e| EngineError::Store {
            reason: format!("binary payload of `{key}` does not decode: {e}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_validation_accepts_fingerprints_and_rejects_garbage() {
        validate_key(&"0123456789abcdef".repeat(4)).unwrap();
        validate_key(&"a".repeat(64)).unwrap();

        let reject = |key: &str| {
            assert!(
                matches!(
                    validate_key(key),
                    Err(EngineError::Store { reason }) if reason.contains("invalid store key")
                ),
                "key `{key}` should be rejected"
            );
        };
        reject(""); // empty
        reject(&"a".repeat(63)); // too short
        reject(&"a".repeat(65)); // too long
        reject(&"A".repeat(64)); // uppercase hex
        reject(&"g".repeat(64)); // not hex
        reject(&format!("../{}", "a".repeat(61))); // path traversal
        reject(&format!("{}/..", "a".repeat(61))); // path traversal
        reject(&format!("{}\u{2044}x", "a".repeat(62))); // unicode slash-alike
    }

    #[test]
    fn memory_store_rejects_malformed_keys_everywhere() {
        let store = ModelStore::with_backend(MemoryBackend::new());
        assert!(!store.contains("../etc/passwd"));
        assert!(matches!(
            store.load("not-a-key"),
            Err(EngineError::Store { .. })
        ));
        assert!(matches!(
            store.remove(&"A".repeat(64)),
            Err(EngineError::Store { .. })
        ));
    }
}
