//! Bounded, deterministic retry with exponential backoff.
//!
//! [`RetryPolicy`] drives the [`RemoteBackend`](super::RemoteBackend)'s
//! transport calls: a bounded number of attempts, exponential backoff
//! between them, and *deterministic* jitter — the jitter fraction for
//! attempt `n` of operation `salt` is a pure function of
//! `(seed, salt, n)`, so a replayed fault schedule produces the exact
//! same timing decisions regardless of thread interleaving. Which
//! errors are worth retrying is the caller's call (a closure), because
//! only the backend knows whether an integrity failure means "wire
//! corruption, re-read" or "stored bytes are rotten, quarantine".

use crate::error::EngineError;
use std::time::Duration;

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used for all
/// deterministic fault/jitter draws in the store subsystem — the output
/// depends only on the input word, never on call order.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a hash of a key string: the per-operation salt fed into
/// [`splitmix64`] so different keys draw independent fault/jitter
/// streams.
pub(crate) fn key_salt(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps a hash word onto the unit interval `[0, 1)` with 53 bits of
/// precision.
pub(crate) fn unit_fraction(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// How many attempts an operation gets and how long to wait between
/// them.
///
/// The delay before retry `n` (1-based) is
/// `min(base_delay · multiplier^(n-1), max_delay)`, scaled by a
/// deterministic jitter factor drawn from `[1 − jitter, 1 + jitter]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Growth factor applied per retry.
    pub multiplier: f64,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Jitter half-width as a fraction of the delay, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 ms → 4 ms backoff with ±25 % jitter — tuned
    /// for an in-process simulated transport, not a real WAN.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            multiplier: 2.0,
            max_delay: Duration::from_millis(50),
            jitter: 0.25,
            seed: 0,
        }
    }
}

/// What a [`RetryPolicy`] run did, alongside its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOutcome {
    /// Attempts actually made (≥ 1).
    pub attempts: u32,
    /// Retries performed (`attempts − 1`).
    pub retries: u32,
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Sets the jitter seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff delay before retry `retry_index` (1-based) of the
    /// operation salted with `salt`, jitter included. Pure: same
    /// inputs, same delay.
    pub fn delay_for(&self, salt: u64, retry_index: u32) -> Duration {
        let exp = self.multiplier.powi(retry_index.saturating_sub(1) as i32);
        let raw = self.base_delay.as_secs_f64() * exp;
        let capped = raw.min(self.max_delay.as_secs_f64());
        let draw = unit_fraction(splitmix64(
            self.seed ^ salt.rotate_left(17) ^ u64::from(retry_index),
        ));
        let factor = 1.0 + self.jitter.clamp(0.0, 1.0) * (2.0 * draw - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// Runs `op` under this policy: up to [`max_attempts`](Self::max_attempts)
    /// tries, sleeping the jittered backoff between them, retrying only
    /// errors `is_retryable` accepts. Returns the final result plus the
    /// attempt count; the error returned after exhaustion is the last
    /// attempt's.
    ///
    /// # Errors
    ///
    /// Propagates the first non-retryable error immediately, or the
    /// last retryable error once attempts are exhausted.
    pub fn run<T>(
        &self,
        salt: u64,
        is_retryable: impl Fn(&EngineError) -> bool,
        mut op: impl FnMut(u32) -> Result<T, EngineError>,
    ) -> (Result<T, EngineError>, RetryOutcome) {
        let attempts_allowed = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(v) => {
                    return (
                        Ok(v),
                        RetryOutcome {
                            attempts: attempt,
                            retries: attempt - 1,
                        },
                    )
                }
                Err(e) if attempt < attempts_allowed && is_retryable(&e) => {
                    std::thread::sleep(self.delay_for(salt, attempt));
                }
                Err(e) => {
                    return (
                        Err(e),
                        RetryOutcome {
                            attempts: attempt,
                            retries: attempt - 1,
                        },
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default().with_seed(42);
        for retry in 1..=4 {
            let a = policy.delay_for(7, retry);
            let b = policy.delay_for(7, retry);
            assert_eq!(a, b, "same inputs must draw the same delay");
            let nominal = policy.base_delay.as_secs_f64()
                * policy
                    .multiplier
                    .powi(retry as i32 - 1)
                    .min(policy.max_delay.as_secs_f64() / policy.base_delay.as_secs_f64());
            let secs = a.as_secs_f64();
            assert!(
                secs >= nominal * (1.0 - policy.jitter) - 1e-12
                    && secs <= nominal * (1.0 + policy.jitter) + 1e-12,
                "retry {retry}: {secs} outside jitter band around {nominal}"
            );
        }
        // Different salts draw different jitter.
        assert_ne!(policy.delay_for(1, 1), policy.delay_for(2, 1));
    }

    #[test]
    fn run_retries_transients_and_stops_on_fatal() {
        let policy = RetryPolicy {
            base_delay: Duration::ZERO,
            max_attempts: 4,
            ..RetryPolicy::default()
        };
        let retryable = |e: &EngineError| matches!(e, EngineError::Unavailable { .. });

        // Succeeds on the third attempt.
        let (res, out) = policy.run(0, retryable, |attempt| {
            if attempt < 3 {
                Err(EngineError::Unavailable {
                    reason: "transient".into(),
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(res.unwrap(), 3);
        assert_eq!(
            out,
            RetryOutcome {
                attempts: 3,
                retries: 2
            }
        );

        // Fatal errors are not retried.
        let (res, out) = policy.run(0, retryable, |_| -> Result<(), _> {
            Err(EngineError::Store {
                reason: "rotten".into(),
            })
        });
        assert!(matches!(res, Err(EngineError::Store { .. })));
        assert_eq!(out.attempts, 1);

        // Exhaustion returns the last transient error.
        let (res, out) = policy.run(0, retryable, |_| -> Result<(), _> {
            Err(EngineError::Unavailable {
                reason: "still down".into(),
            })
        });
        assert!(matches!(res, Err(EngineError::Unavailable { .. })));
        assert_eq!(
            out,
            RetryOutcome {
                attempts: 4,
                retries: 3
            }
        );
    }

    #[test]
    fn none_policy_makes_exactly_one_attempt() {
        let policy = RetryPolicy::none();
        let mut calls = 0;
        let (res, out) = policy.run(
            0,
            |_| true,
            |_| -> Result<(), _> {
                calls += 1;
                Err(EngineError::Unavailable { reason: "x".into() })
            },
        );
        assert!(res.is_err());
        assert_eq!(calls, 1);
        assert_eq!(out.retries, 0);
    }
}
