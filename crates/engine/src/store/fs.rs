//! The sharded local-filesystem backend.
//!
//! Artifacts live at `<root>/<k0k1>/<key>.stm`, where `k0k1` is the
//! first two characters of the key — 256 shard directories keep any
//! one directory small even for libraries with tens of thousands of
//! models. Writes are crash-safe: bytes go to a uniquely named
//! temporary file in the shard and are renamed into place, so a
//! crashed or concurrent writer can never leave a half-written
//! artifact under a valid key.

use super::backend::StorageBackend;
use super::health::StoreHealth;
use crate::error::EngineError;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// File extension of stored artifacts.
const EXT: &str = "stm";

/// Monotonic nonce distinguishing concurrent writers within a process.
static NEXT_TMP: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A content-addressed artifact store on the local filesystem.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
    /// Artifacts deleted by [`gc`](Self::gc) over this backend's
    /// lifetime, surfaced through [`StoreHealth::gc_evictions`].
    gc_evictions: AtomicU64,
}

impl FsBackend {
    /// Opens (creating if necessary) a backend rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FsBackend {
            root,
            gc_evictions: AtomicU64::new(0),
        })
    }

    /// The backend's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Evicts least-recently-modified artifacts until the artifacts'
    /// total size is at most `max_bytes`; returns how many were
    /// deleted. File mtime approximates recency — `put` rewrites the
    /// file, so untouched artifacts age out first; ties break on key
    /// order so concurrent collectors converge on the same victims. A
    /// victim that vanishes mid-collection (another process removed or
    /// collected it) counts as freed, not as an error.
    ///
    /// Runs on demand, not automatically: shared stores stay unbounded
    /// by default, and an operator (or the serving layer) decides when
    /// to reclaim space. Deletions are surfaced as
    /// [`StoreHealth::gc_evictions`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Io`] if the tree cannot be enumerated or
    /// a live victim cannot be removed.
    pub fn gc(&self, max_bytes: u64) -> Result<usize, EngineError> {
        let mut artifacts: Vec<(SystemTime, PathBuf, u64)> = Vec::new();
        let mut total: u64 = 0;
        for shard in self.shards()? {
            for entry in fs::read_dir(shard)? {
                let entry = entry?;
                let path = entry.path();
                if path.extension().is_none_or(|e| e != EXT) {
                    continue;
                }
                let meta = entry.metadata()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                total += meta.len();
                artifacts.push((mtime, path, meta.len()));
            }
        }
        artifacts.sort();
        let mut evicted = 0;
        let mut victims = artifacts.into_iter();
        while total > max_bytes {
            let Some((_, path, len)) = victims.next() else {
                break;
            };
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::NotFound | std::io::ErrorKind::NotADirectory
                    ) => {}
                Err(e) => return Err(e.into()),
            }
            total -= len;
            evicted += 1;
        }
        self.gc_evictions
            .fetch_add(evicted as u64, Ordering::Relaxed);
        Ok(evicted)
    }

    fn path_of(&self, key: &str) -> PathBuf {
        let shard = key.get(..2).unwrap_or("xx");
        self.root.join(shard).join(format!("{key}.{EXT}"))
    }

    /// Shard directories under the root, ignoring stray files.
    fn shards(&self) -> Result<Vec<PathBuf>, EngineError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
}

impl StorageBackend for FsBackend {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
        match fs::read(self.path_of(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            // NotADirectory: a path component is missing or not a
            // directory — either way, no artifact exists under this key.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::NotFound | std::io::ErrorKind::NotADirectory
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
        let path = self.path_of(key);
        fs::create_dir_all(path.parent().expect("sharded path has a parent"))?;
        // Unique temp name per writer: stores are shared across
        // processes, and two engines cold-starting on the same key must
        // not truncate each other's half-written temp file before the
        // rename.
        let nonce = NEXT_TMP.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("{EXT}.tmp.{}.{nonce}", std::process::id()));
        fs::write(&tmp, bytes)?;
        if let Err(e) = fs::rename(&tmp, &path) {
            // Some platforms refuse to rename over an existing (possibly
            // open) destination; retry once after unlinking it, and clean
            // up the temp file if the rename still fails.
            let _ = fs::remove_file(&path);
            if let Err(retry) = fs::rename(&tmp, &path) {
                let _ = fs::remove_file(&tmp);
                return Err(if retry.kind() == e.kind() { e } else { retry }.into());
            }
        }
        Ok(())
    }

    fn remove(&self, key: &str) -> Result<bool, EngineError> {
        match fs::remove_file(self.path_of(key)) {
            Ok(()) => Ok(true),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::NotFound | std::io::ErrorKind::NotADirectory
                ) =>
            {
                Ok(false)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn list_keys(&self) -> Result<Vec<String>, EngineError> {
        let mut keys = Vec::new();
        for shard in self.shards()? {
            for entry in fs::read_dir(shard)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == EXT) {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        keys.push(stem.to_owned());
                    }
                }
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    fn clear(&self) -> Result<(), EngineError> {
        for shard in self.shards()? {
            for entry in fs::read_dir(shard)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == EXT) {
                    fs::remove_file(path)?;
                }
            }
        }
        Ok(())
    }

    fn contains(&self, key: &str) -> Result<bool, EngineError> {
        Ok(self.path_of(key).is_file())
    }

    fn len(&self) -> Result<usize, EngineError> {
        let mut n = 0;
        for shard in self.shards()? {
            for entry in fs::read_dir(shard)? {
                if entry?.path().extension().is_some_and(|e| e == EXT) {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    fn is_empty(&self) -> Result<bool, EngineError> {
        // Short-circuit on the first artifact instead of scanning the
        // full two-level tree like `len` does.
        for shard in self.shards()? {
            for entry in fs::read_dir(shard)? {
                if entry?.path().extension().is_some_and(|e| e == EXT) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    fn health(&self) -> StoreHealth {
        StoreHealth {
            gc_evictions: self.gc_evictions.load(Ordering::Relaxed),
            ..StoreHealth::default()
        }
    }
}
