//! Deterministic fault injection for storage backends.
//!
//! A [`FaultInjectingBackend`] wraps any [`StorageBackend`] and makes
//! it misbehave on a schedule: transient errors, injected latency,
//! torn (short) writes, and bit-flip read corruption, all driven by a
//! [`FaultPlan`]. The schedule is *deterministic and
//! interleaving-independent*: whether the `j`-th get of key `K` fails
//! is a pure function of `(plan.seed, K, op-kind, j)`, so the same
//! plan replayed against the same access pattern injects the same
//! faults no matter how threads race. That property is what lets the
//! chaos suite assert bit-identical analysis results under faults —
//! and lets CI pin one seed and reproduce any failure locally.
//!
//! Corruption and torn writes are injected on the *wire* (the bytes
//! returned or stored), never in the wrapped backend's own state for
//! reads — so a transiently corrupt read heals on retry, while a torn
//! write persists rotten bytes exactly like a real partial upload.

use super::backend::StorageBackend;
use super::health::StoreHealth;
use super::retry::{key_salt, splitmix64, unit_fraction};
use crate::error::EngineError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A seed-keyed schedule of storage faults. All rates are probabilities
/// in `[0, 1]` evaluated independently per operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every fault draw; two backends with the same plan and
    /// access pattern inject identical faults.
    pub seed: u64,
    /// Probability a `get` fails with a transient
    /// [`EngineError::Unavailable`].
    pub get_error_rate: f64,
    /// Probability a `put` fails with a transient
    /// [`EngineError::Unavailable`] (before any bytes are stored).
    pub put_error_rate: f64,
    /// Probability a successful `get` returns bytes with one bit
    /// flipped (the stored artifact is untouched — a retry heals it).
    pub corrupt_read_rate: f64,
    /// Probability a `put` tears: a strict prefix of the bytes is
    /// stored and the call still reports success, like a real partial
    /// upload acknowledged by a buggy gateway.
    pub torn_write_rate: f64,
    /// Fraction of keys that are *stuck*: every get and put on them
    /// fails, forever. Models a persistently bad shard; drives retry
    /// exhaustion and graceful degradation in tests.
    pub stuck_key_rate: f64,
    /// Extra latency added to every operation (both directions).
    pub latency: Duration,
}

impl Default for FaultPlan {
    /// The empty plan: no faults, no latency. A backend wrapped with it
    /// behaves identically to the bare backend (the conformance suite
    /// checks this).
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            get_error_rate: 0.0,
            put_error_rate: 0.0,
            corrupt_read_rate: 0.0,
            torn_write_rate: 0.0,
            stuck_key_rate: 0.0,
            latency: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// The empty plan (alias for [`Default::default`]).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing (all rates zero, no latency).
    pub fn is_empty(&self) -> bool {
        *self
            == FaultPlan {
                seed: self.seed,
                ..FaultPlan::default()
            }
    }

    /// Whether `key` is stuck under this plan.
    pub fn is_stuck(&self, key: &str) -> bool {
        self.stuck_key_rate > 0.0
            && unit_fraction(splitmix64(self.seed ^ key_salt(key).rotate_left(29)))
                < self.stuck_key_rate
    }

    /// Draws a fault decision for the `index`-th operation of `kind` on
    /// `key`: a uniform value in `[0, 1)` compared against a rate by
    /// the caller. Pure function of `(seed, key, kind, index)`.
    fn draw(&self, key: &str, kind: OpKind, index: u64) -> f64 {
        unit_fraction(splitmix64(
            self.seed
                ^ key_salt(key).rotate_left(7)
                ^ (kind as u64).rotate_left(47)
                ^ index.rotate_left(23),
        ))
    }
}

/// Operation kinds with independent fault streams.
#[derive(Debug, Clone, Copy)]
enum OpKind {
    GetError = 1,
    GetCorrupt = 2,
    PutError = 3,
    PutTorn = 4,
}

/// Per-operation counters for what a [`FaultInjectingBackend`] actually
/// did, readable any time via
/// [`counters`](FaultInjectingBackend::counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// `get` calls observed.
    pub gets: u64,
    /// `put` calls observed.
    pub puts: u64,
    /// Transient errors injected into `get`s (stuck keys included).
    pub get_errors: u64,
    /// Transient errors injected into `put`s (stuck keys included).
    pub put_errors: u64,
    /// Reads returned with a flipped bit.
    pub corrupt_reads: u64,
    /// Writes that stored only a prefix.
    pub torn_writes: u64,
}

impl FaultCounters {
    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.get_errors + self.put_errors + self.corrupt_reads + self.torn_writes
    }
}

/// A [`StorageBackend`] wrapper that injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjectingBackend<B> {
    inner: B,
    plan: FaultPlan,
    /// Per-key, per-kind operation indices, so draw `j` on key `K` is
    /// the same logical draw regardless of thread interleaving.
    seq: Mutex<HashMap<(String, u8), u64>>,
    gets: AtomicU64,
    puts: AtomicU64,
    get_errors: AtomicU64,
    put_errors: AtomicU64,
    corrupt_reads: AtomicU64,
    torn_writes: AtomicU64,
}

impl<B: StorageBackend> FaultInjectingBackend<B> {
    /// Wraps `inner`, injecting faults per `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultInjectingBackend {
            inner,
            plan,
            seq: Mutex::new(HashMap::new()),
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            get_errors: AtomicU64::new(0),
            put_errors: AtomicU64::new(0),
            corrupt_reads: AtomicU64::new(0),
            torn_writes: AtomicU64::new(0),
        }
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Snapshot of the per-operation fault counters.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            get_errors: self.get_errors.load(Ordering::Relaxed),
            put_errors: self.put_errors.load(Ordering::Relaxed),
            corrupt_reads: self.corrupt_reads.load(Ordering::Relaxed),
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
        }
    }

    /// Flips one payload bit of the artifact stored under `key`,
    /// *persistently* (in the wrapped backend). Test helper for
    /// quarantine coverage: unlike `corrupt_read_rate`'s wire flips,
    /// this corruption survives retries. Returns whether an artifact
    /// existed to corrupt.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped backend's get/put errors.
    pub fn corrupt_stored(&self, key: &str) -> Result<bool, EngineError> {
        let Some(mut bytes) = self.inner.get(key)? else {
            return Ok(false);
        };
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x01;
        }
        self.inner.put(key, &bytes)?;
        Ok(true)
    }

    /// Claims the next operation index for `(key, kind)`.
    fn next_index(&self, key: &str, kind: OpKind) -> u64 {
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        let slot = seq.entry((key.to_owned(), kind as u8)).or_insert(0);
        let index = *slot;
        *slot += 1;
        index
    }

    fn pause(&self) {
        if !self.plan.latency.is_zero() {
            std::thread::sleep(self.plan.latency);
        }
    }
}

impl<B: StorageBackend> StorageBackend for FaultInjectingBackend<B> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, EngineError> {
        self.pause();
        self.gets.fetch_add(1, Ordering::Relaxed);
        let stuck = self.plan.is_stuck(key);
        if stuck
            || self.plan.draw(
                key,
                OpKind::GetError,
                self.next_index(key, OpKind::GetError),
            ) < self.plan.get_error_rate
        {
            self.get_errors.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Unavailable {
                reason: if stuck {
                    format!("injected fault: key `{key}` is stuck")
                } else {
                    format!("injected transient get failure on `{key}`")
                },
            });
        }
        let mut bytes = self.inner.get(key)?;
        if let Some(b) = bytes.as_mut() {
            if !b.is_empty()
                && self.plan.draw(
                    key,
                    OpKind::GetCorrupt,
                    self.next_index(key, OpKind::GetCorrupt),
                ) < self.plan.corrupt_read_rate
            {
                self.corrupt_reads.fetch_add(1, Ordering::Relaxed);
                // Flip a bit in the tail so the envelope header still
                // parses and the *integrity stamp* is what catches it.
                let at = b.len() - 1;
                b[at] ^= 0x80;
            }
        }
        Ok(bytes)
    }

    fn put(&self, key: &str, bytes: &[u8]) -> Result<(), EngineError> {
        self.pause();
        self.puts.fetch_add(1, Ordering::Relaxed);
        let stuck = self.plan.is_stuck(key);
        if stuck
            || self.plan.draw(
                key,
                OpKind::PutError,
                self.next_index(key, OpKind::PutError),
            ) < self.plan.put_error_rate
        {
            self.put_errors.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Unavailable {
                reason: if stuck {
                    format!("injected fault: key `{key}` is stuck")
                } else {
                    format!("injected transient put failure on `{key}`")
                },
            });
        }
        if bytes.len() > 1
            && self
                .plan
                .draw(key, OpKind::PutTorn, self.next_index(key, OpKind::PutTorn))
                < self.plan.torn_write_rate
        {
            self.torn_writes.fetch_add(1, Ordering::Relaxed);
            // Store a strict prefix and report success, like a partial
            // upload a buggy gateway acknowledged anyway.
            return self.inner.put(key, &bytes[..bytes.len() / 2]);
        }
        self.inner.put(key, bytes)
    }

    fn remove(&self, key: &str) -> Result<bool, EngineError> {
        self.pause();
        self.inner.remove(key)
    }

    fn list_keys(&self) -> Result<Vec<String>, EngineError> {
        self.pause();
        self.inner.list_keys()
    }

    fn clear(&self) -> Result<(), EngineError> {
        self.pause();
        self.inner.clear()
    }

    fn contains(&self, key: &str) -> Result<bool, EngineError> {
        self.inner.contains(key)
    }

    fn len(&self) -> Result<usize, EngineError> {
        self.inner.len()
    }

    fn is_empty(&self) -> Result<bool, EngineError> {
        self.inner.is_empty()
    }

    fn health(&self) -> StoreHealth {
        let mine = StoreHealth {
            faults_injected: self.counters().total(),
            ..StoreHealth::default()
        };
        mine.merged(&self.inner.health())
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemoryBackend;
    use super::*;

    fn key(fill: u8) -> String {
        (0..64).map(|_| (b'a' + fill % 6) as char).collect()
    }

    #[test]
    fn empty_plan_is_transparent() {
        let backend = FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::none());
        assert!(FaultPlan::none().is_empty());
        backend.put(&key(0), b"payload").unwrap();
        assert_eq!(backend.get(&key(0)).unwrap().unwrap(), b"payload");
        assert_eq!(backend.counters().total(), 0);
        assert_eq!(backend.health(), StoreHealth::default());
    }

    #[test]
    fn fault_schedule_is_deterministic_across_instances() {
        let plan = FaultPlan {
            seed: 7,
            get_error_rate: 0.5,
            put_error_rate: 0.5,
            corrupt_read_rate: 0.5,
            torn_write_rate: 0.5,
            ..FaultPlan::default()
        };
        let run = || {
            let backend = FaultInjectingBackend::new(MemoryBackend::new(), plan);
            let mut trace = Vec::new();
            for i in 0..4u8 {
                let k = key(i);
                for _ in 0..6 {
                    trace.push(backend.put(&k, b"some payload bytes").is_ok());
                    trace.push(matches!(backend.get(&k), Ok(Some(_))));
                }
            }
            (trace, backend.counters())
        };
        let (trace_a, counters_a) = run();
        let (trace_b, counters_b) = run();
        assert_eq!(trace_a, trace_b);
        assert_eq!(counters_a, counters_b);
        assert!(counters_a.total() > 0, "rates of 0.5 must inject something");
    }

    #[test]
    fn stuck_keys_always_fail_both_ways() {
        let plan = FaultPlan {
            seed: 3,
            stuck_key_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(MemoryBackend::new(), plan);
        let k = key(0);
        assert!(plan.is_stuck(&k));
        for _ in 0..3 {
            assert!(matches!(
                backend.put(&k, b"x"),
                Err(EngineError::Unavailable { .. })
            ));
            assert!(matches!(
                backend.get(&k),
                Err(EngineError::Unavailable { .. })
            ));
        }
        assert_eq!(backend.counters().get_errors, 3);
        assert_eq!(backend.counters().put_errors, 3);
        assert_eq!(backend.health().faults_injected, 6);
    }

    #[test]
    fn wire_corruption_heals_but_torn_writes_persist() {
        // Corrupt every read on the wire: stored bytes stay pristine.
        let plan = FaultPlan {
            seed: 1,
            corrupt_read_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(MemoryBackend::new(), plan);
        let k = key(1);
        backend.put(&k, b"pristine").unwrap();
        assert_ne!(backend.get(&k).unwrap().unwrap(), b"pristine");
        assert_eq!(backend.inner().get(&k).unwrap().unwrap(), b"pristine");

        // Tear every write: stored bytes are a strict prefix.
        let plan = FaultPlan {
            seed: 1,
            torn_write_rate: 1.0,
            ..FaultPlan::default()
        };
        let backend = FaultInjectingBackend::new(MemoryBackend::new(), plan);
        backend.put(&k, b"full payload").unwrap();
        let stored = backend.inner().get(&k).unwrap().unwrap();
        assert!(stored.len() < b"full payload".len());
        assert_eq!(&b"full payload"[..stored.len()], &stored[..]);
        assert_eq!(backend.counters().torn_writes, 1);
    }

    #[test]
    fn corrupt_stored_flips_a_bit_in_place() {
        let backend = FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::none());
        let k = key(2);
        assert!(
            !backend.corrupt_stored(&k).unwrap(),
            "nothing to corrupt yet"
        );
        backend.put(&k, b"artifact").unwrap();
        assert!(backend.corrupt_stored(&k).unwrap());
        let stored = backend.get(&k).unwrap().unwrap();
        assert_ne!(stored, b"artifact");
        assert_eq!(stored.len(), b"artifact".len());
    }
}
