use std::fmt::Debug;

/// The algebra a delay type must provide for longest-path propagation.
///
/// Static timing analysis instantiates this with `f64`; statistical timing
/// analysis instantiates it with the canonical first-order Gaussian form
/// (`ssta_core::CanonicalForm`), where `sum` adds coefficient vectors and
/// `maximum` is Clark's moment-matched approximation. Keeping the graph
/// and propagation code generic guarantees STA and SSTA run *identical*
/// traversals — any accuracy difference is attributable to the delay
/// algebra alone.
pub trait DelayAlgebra: Clone + Debug {
    /// The delay of two arcs in series (path concatenation).
    fn sum(&self, other: &Self) -> Self;

    /// The dominant of two parallel path delays.
    fn maximum(&self, other: &Self) -> Self;

    /// A scalar representative (the nominal/mean value) used for reporting
    /// and tie-breaking; must be finite.
    fn nominal(&self) -> f64;
}

impl DelayAlgebra for f64 {
    fn sum(&self, other: &Self) -> Self {
        self + other
    }

    fn maximum(&self, other: &Self) -> Self {
        f64::max(*self, *other)
    }

    fn nominal(&self) -> f64 {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_algebra() {
        assert_eq!(2.0.sum(&3.0), 5.0);
        assert_eq!(2.0.maximum(&3.0), 3.0);
        assert_eq!(7.5.nominal(), 7.5);
    }

    #[test]
    fn algebra_is_object_safe_enough_for_generics() {
        fn propagate<D: DelayAlgebra>(a: D, b: D, c: D) -> D {
            a.sum(&b).maximum(&c)
        }
        assert_eq!(propagate(1.0, 2.0, 10.0), 10.0);
        assert_eq!(propagate(5.0, 6.0, 10.0), 11.0);
    }
}
