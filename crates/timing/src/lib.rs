//! Generic timing-graph substrate.
//!
//! A *timing graph* (Section II of the paper) is a weighted DAG: vertices
//! are pins/gates, edges carry delays, and the delay of a path is the sum
//! of its edge weights. Static and statistical timing analysis differ only
//! in the *algebra* of those weights — scalar `f64` for STA, canonical
//! first-order Gaussian forms for SSTA — so this crate is generic over a
//! [`DelayAlgebra`] and provides:
//!
//! * [`TimingGraph`] — a multi-edge DAG with designated input/output
//!   vertices, tombstone-based edge removal (model extraction rewrites the
//!   graph heavily) and netlist import;
//! * [`propagate`] — push-based forward (arrival-time) and backward
//!   (required-time) longest-path propagation in topological order (the
//!   reference engine);
//! * [`levels`] — the levelized wavefront engine: a [`LevelSchedule`]
//!   (Kahn levels + CSR adjacency) computed once per graph and reused
//!   across every pull-based forward/backward pass, with within-level
//!   threading that is bit-identical to serial for any worker count;
//! * [`allpairs`] — the per-input/per-output traversals of Sapatnekar
//!   (ISCAS'96) producing the input/output [`DelayMatrix`] that timing
//!   models must preserve;
//! * [`sta`] — the scalar STA baseline (nominal and corner analysis),
//!   including critical-path extraction.
//!
//! # Example
//!
//! ```
//! use ssta_netlist::generators;
//! use ssta_timing::{sta, TimingGraph};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = generators::ripple_carry_adder(4)?;
//! // Scalar STA: edge delay = nominal arc delay of the receiving gate.
//! let graph = TimingGraph::from_netlist(&netlist, |ctx| ctx.nominal_ps());
//! let delay = sta::graph_delay(&graph)?;
//! assert!(delay > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delay;
mod error;
mod graph;

pub mod allpairs;
pub mod levels;
pub mod propagate;
pub mod sta;

pub use allpairs::DelayMatrix;
pub use delay::DelayAlgebra;
pub use error::TimingError;
pub use graph::{ArcContext, Edge, EdgeId, RawGraphParts, TimingGraph, VertexId, VertexKind};
pub use levels::LevelSchedule;
