//! Push-based longest-path propagation in topological order — the
//! reference engine.
//!
//! `forward` computes arrival times (max delay from a set of sources);
//! `backward` computes the max delay *to* a set of sinks (the negated
//! required time of Section IV-B of the paper, where `re` is "the maximum
//! delay from output vj to the sink vertex of e ... when the required time
//! at vj is set to 0").
//!
//! Both are generic over [`DelayAlgebra`], so the same code path serves
//! scalar STA and canonical-form SSTA.
//!
//! Each call re-runs Kahn's algorithm, so hot paths that run many passes
//! over one graph (all-pairs extraction, criticality) use the levelized
//! engine in [`levels`](crate::levels) instead: it computes one
//! [`LevelSchedule`](crate::levels::LevelSchedule) per graph and
//! propagates pull-based, level by level, optionally threaded. These
//! functions remain the order-sensitive oracle the levelized engine is
//! cross-checked against.

use crate::{DelayAlgebra, TimingError, TimingGraph, VertexId};

/// Arrival times from the given `(vertex, initial)` sources.
///
/// Returns one `Option<D>` per vertex slot; `None` means the vertex is not
/// reachable from any source. A vertex listed twice keeps the max of its
/// initial values.
///
/// # Errors
///
/// Returns [`TimingError::CyclicGraph`] for cyclic graphs.
pub fn forward<D: DelayAlgebra>(
    graph: &TimingGraph<D>,
    sources: &[(VertexId, D)],
) -> Result<Vec<Option<D>>, TimingError> {
    let order = graph.topo_order()?;
    let mut arrival: Vec<Option<D>> = vec![None; graph.vertex_bound()];
    for (v, init) in sources {
        let slot = &mut arrival[v.0 as usize];
        *slot = Some(match slot.take() {
            Some(prev) => prev.maximum(init),
            None => init.clone(),
        });
    }
    for &v in &order {
        // Take the value out instead of cloning it (a canonical form
        // clones a full coefficient vector); a DAG has no self-edges, so
        // the slot is never read while it is vacated.
        let Some(at_v) = arrival[v.0 as usize].take() else {
            continue;
        };
        for e in graph.out_edges(v) {
            let edge = graph.edge(e);
            let cand = at_v.sum(&edge.delay);
            let slot = &mut arrival[edge.to.0 as usize];
            *slot = Some(match slot.take() {
                Some(prev) => prev.maximum(&cand),
                None => cand,
            });
        }
        arrival[v.0 as usize] = Some(at_v);
    }
    Ok(arrival)
}

/// Max delay from each vertex to the given `(vertex, initial)` sinks
/// (reverse propagation).
///
/// # Errors
///
/// Returns [`TimingError::CyclicGraph`] for cyclic graphs.
pub fn backward<D: DelayAlgebra>(
    graph: &TimingGraph<D>,
    sinks: &[(VertexId, D)],
) -> Result<Vec<Option<D>>, TimingError> {
    let order = graph.topo_order()?;
    let mut required: Vec<Option<D>> = vec![None; graph.vertex_bound()];
    for (v, init) in sinks {
        let slot = &mut required[v.0 as usize];
        *slot = Some(match slot.take() {
            Some(prev) => prev.maximum(init),
            None => init.clone(),
        });
    }
    for &v in order.iter().rev() {
        // max over out-edges of (required[to] + delay). Taking the seed
        // out avoids a per-vertex clone; no self-edges in a DAG.
        let mut best: Option<D> = required[v.0 as usize].take();
        for e in graph.out_edges(v) {
            let edge = graph.edge(e);
            if let Some(r) = &required[edge.to.0 as usize] {
                let cand = edge.delay.sum(r);
                best = Some(match best {
                    Some(prev) => prev.maximum(&cand),
                    None => cand,
                });
            }
        }
        required[v.0 as usize] = best;
    }
    Ok(required)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in --1--> a --3--> out
    ///   \--2--> b --1--> out
    fn diamond() -> (TimingGraph<f64>, [VertexId; 4]) {
        let mut g = TimingGraph::new();
        let i = g.add_input();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, a, 1.0);
        g.add_edge(i, b, 2.0);
        g.add_edge(a, o, 3.0);
        g.add_edge(b, o, 1.0);
        (g, [i, a, b, o])
    }

    #[test]
    fn forward_takes_longest_path() {
        let (g, [i, a, b, o]) = diamond();
        let arr = forward(&g, &[(i, 0.0)]).unwrap();
        assert_eq!(arr[i.0 as usize], Some(0.0));
        assert_eq!(arr[a.0 as usize], Some(1.0));
        assert_eq!(arr[b.0 as usize], Some(2.0));
        assert_eq!(arr[o.0 as usize], Some(4.0)); // max(1+3, 2+1)
    }

    #[test]
    fn forward_respects_initial_offsets() {
        let (g, [i, _, _, o]) = diamond();
        let arr = forward(&g, &[(i, 10.0)]).unwrap();
        assert_eq!(arr[o.0 as usize], Some(14.0));
    }

    #[test]
    fn forward_unreachable_is_none() {
        let (g, [_, a, b, o]) = diamond();
        // Start from a only: b is unreachable.
        let arr = forward(&g, &[(a, 0.0)]).unwrap();
        assert_eq!(arr[b.0 as usize], None);
        assert_eq!(arr[o.0 as usize], Some(3.0));
    }

    #[test]
    fn backward_mirrors_forward() {
        let (g, [i, a, b, o]) = diamond();
        let req = backward(&g, &[(o, 0.0)]).unwrap();
        assert_eq!(req[o.0 as usize], Some(0.0));
        assert_eq!(req[a.0 as usize], Some(3.0));
        assert_eq!(req[b.0 as usize], Some(1.0));
        assert_eq!(req[i.0 as usize], Some(4.0));
    }

    #[test]
    fn duplicate_sources_keep_max() {
        let (g, [i, _, _, o]) = diamond();
        let arr = forward(&g, &[(i, 0.0), (i, 5.0)]).unwrap();
        assert_eq!(arr[o.0 as usize], Some(9.0));
    }

    #[test]
    fn edge_criticality_identity_holds() {
        // For every edge e: ae + d + re <= graph delay, with equality on
        // the critical path (the de = ae + d + re identity of eq. (15)).
        let (g, [i, _, _, o]) = diamond();
        let arr = forward(&g, &[(i, 0.0)]).unwrap();
        let req = backward(&g, &[(o, 0.0)]).unwrap();
        let total = arr[o.0 as usize].unwrap();
        let mut on_critical = 0;
        for (_, e) in g.edges_iter() {
            let de = arr[e.from.0 as usize].unwrap() + e.delay + req[e.to.0 as usize].unwrap();
            assert!(de <= total + 1e-12);
            if (de - total).abs() < 1e-12 {
                on_critical += 1;
            }
        }
        assert_eq!(on_critical, 2); // i->a->o is the critical path
    }
}
