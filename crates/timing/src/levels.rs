//! Levelized (wavefront) propagation.
//!
//! [`propagate`](crate::propagate) re-runs Kahn's algorithm on every
//! invocation and pushes values along out-edges in topological order —
//! fine for one pass, wasteful for the many passes model extraction and
//! criticality run over one graph (one forward per input, one backward
//! per output), and inherently serial because successive vertices race
//! on their common fan-out slots.
//!
//! This module computes a [`LevelSchedule`] **once** per graph — Kahn
//! level assignment, CSR-flattened in/out adjacency and per-level vertex
//! ranges — and reuses it across every pass. [`forward`]/[`backward`]
//! are *pull*-based: each vertex reduces over its own in-edges (out-edges
//! for backward) in fixed edge-index order, so vertices within one level
//! are independent and a level can be fanned out across threads with the
//! result **bit-identical to the serial pass for every worker count** —
//! the reduction order per vertex never depends on scheduling.
//!
//! Two propagation orders, one caveat: for scalar (`f64`) delays pull
//! and push produce bit-identical results (`max`/`+` over the same path
//! sets). For canonical forms, Clark's `maximum` is order-sensitive, so
//! pull-based results differ from push-based ones *within working
//! precision* — equivalent as distributions, not as bits. Model
//! extraction therefore re-keys its store artifacts when switching
//! engines (see the module fingerprint header).

use crate::{DelayAlgebra, TimingError, TimingGraph, VertexId};
use ssta_math::parallel::parallel_indexed;
use std::cell::Cell;

thread_local! {
    static BUILDS: Cell<u64> = const { Cell::new(0) };
}

/// Number of [`LevelSchedule`]s built **on the calling thread** since it
/// started — a diagnostic counter for regression tests that pin how many
/// times a hot path re-levelizes (the answer should be once per graph,
/// not once per propagation).
pub fn schedule_builds() -> u64 {
    BUILDS.with(Cell::get)
}

/// Fan a level out across workers only when it is wide enough to pay for
/// the scoped-thread setup; correctness never depends on this (each
/// vertex's reduction is self-contained), only wall-clock does.
const MIN_PARALLEL_WIDTH: usize = 8;

/// A reusable propagation schedule: Kahn level assignment plus
/// CSR-flattened adjacency, computed once per graph.
///
/// The schedule borrows nothing — it snapshots the graph's structure by
/// id — but it is only valid for the exact graph state it was built
/// from. Mutating the graph (adding/removing vertices or edges)
/// invalidates it; [`forward`]/[`backward`] reject schedules whose
/// shape counters disagree with the graph.
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    vertex_bound: usize,
    n_live_vertices: usize,
    n_live_edges: usize,
    /// Live vertices in level-major order, ascending id within a level.
    order: Vec<u32>,
    /// `order[level_offsets[l]..level_offsets[l + 1]]` is level `l`.
    level_offsets: Vec<u32>,
    /// CSR in-adjacency: `(edge id, source vertex)` per live vertex slot,
    /// in the graph's fixed edge-index order.
    in_offsets: Vec<u32>,
    in_arcs: Vec<(u32, u32)>,
    /// CSR out-adjacency: `(edge id, sink vertex)` per live vertex slot.
    out_offsets: Vec<u32>,
    out_arcs: Vec<(u32, u32)>,
}

impl LevelSchedule {
    /// Levelizes a graph: Kahn's algorithm assigns each live vertex the
    /// length of its longest incoming edge chain, and the adjacency is
    /// flattened into CSR form for the propagation inner loops.
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::CyclicGraph`] for cyclic graphs.
    pub fn build<D: DelayAlgebra>(graph: &TimingGraph<D>) -> Result<Self, TimingError> {
        BUILDS.with(|b| b.set(b.get() + 1));
        let bound = graph.vertex_bound();
        let n_live = graph.n_vertices();

        // CSR adjacency in the graph's edge-index order (the same order
        // the push-based reference traverses fan-outs in).
        let mut in_offsets = Vec::with_capacity(bound + 1);
        let mut out_offsets = Vec::with_capacity(bound + 1);
        let mut in_arcs = Vec::with_capacity(graph.n_edges());
        let mut out_arcs = Vec::with_capacity(graph.n_edges());
        in_offsets.push(0);
        out_offsets.push(0);
        for slot in 0..bound {
            let v = VertexId(slot as u32);
            if graph.is_alive(v) {
                for e in graph.in_edges(v) {
                    in_arcs.push((e.0, graph.edge(e).from.0));
                }
                for e in graph.out_edges(v) {
                    out_arcs.push((e.0, graph.edge(e).to.0));
                }
            }
            in_offsets.push(in_arcs.len() as u32);
            out_offsets.push(out_arcs.len() as u32);
        }

        // Kahn level assignment: level(v) = longest in-chain length.
        let mut indeg: Vec<u32> = (0..bound)
            .map(|i| in_offsets[i + 1] - in_offsets[i])
            .collect();
        let mut level = vec![0u32; bound];
        let mut queue: Vec<u32> = (0..bound as u32)
            .filter(|&i| graph.is_alive(VertexId(i)) && indeg[i as usize] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(v) = queue.pop() {
            processed += 1;
            let lv = level[v as usize];
            for &(_, w) in
                &out_arcs[out_offsets[v as usize] as usize..out_offsets[v as usize + 1] as usize]
            {
                let w = w as usize;
                if level[w] < lv + 1 {
                    level[w] = lv + 1;
                }
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push(w as u32);
                }
            }
        }
        if processed != n_live {
            return Err(TimingError::CyclicGraph);
        }

        // Bucket live vertices by level, ascending id within a level.
        let n_levels = (0..bound)
            .filter(|&i| graph.is_alive(VertexId(i as u32)))
            .map(|i| level[i] as usize + 1)
            .max()
            .unwrap_or(0);
        let mut widths = vec![0u32; n_levels];
        for i in 0..bound {
            if graph.is_alive(VertexId(i as u32)) {
                widths[level[i] as usize] += 1;
            }
        }
        let mut level_offsets = Vec::with_capacity(n_levels + 1);
        level_offsets.push(0u32);
        for w in &widths {
            level_offsets.push(level_offsets.last().unwrap() + w);
        }
        let mut cursor: Vec<u32> = level_offsets[..n_levels].to_vec();
        let mut order = vec![0u32; n_live];
        for (i, &l) in level.iter().enumerate() {
            if graph.is_alive(VertexId(i as u32)) {
                let l = l as usize;
                order[cursor[l] as usize] = i as u32;
                cursor[l] += 1;
            }
        }

        Ok(LevelSchedule {
            vertex_bound: bound,
            n_live_vertices: n_live,
            n_live_edges: graph.n_edges(),
            order,
            level_offsets,
            in_offsets,
            in_arcs,
            out_offsets,
            out_arcs,
        })
    }

    /// Number of levels (0 for an empty graph).
    pub fn n_levels(&self) -> usize {
        self.level_offsets.len().saturating_sub(1)
    }

    /// Number of live vertices scheduled.
    pub fn n_scheduled(&self) -> usize {
        self.n_live_vertices
    }

    /// The widest level's vertex count (the available wavefront
    /// parallelism).
    pub fn max_width(&self) -> usize {
        (0..self.n_levels())
            .map(|l| self.level_range(l).len())
            .max()
            .unwrap_or(0)
    }

    /// The vertex ids of level `l` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `l >= n_levels()`.
    pub fn level_range(&self, l: usize) -> &[u32] {
        &self.order[self.level_offsets[l] as usize..self.level_offsets[l + 1] as usize]
    }

    /// In-arcs `(edge id, source vertex)` of `v` in fixed edge-index
    /// order.
    fn in_arcs_of(&self, v: usize) -> &[(u32, u32)] {
        &self.in_arcs[self.in_offsets[v] as usize..self.in_offsets[v + 1] as usize]
    }

    /// Out-arcs `(edge id, sink vertex)` of `v` in fixed edge-index
    /// order.
    fn out_arcs_of(&self, v: usize) -> &[(u32, u32)] {
        &self.out_arcs[self.out_offsets[v] as usize..self.out_offsets[v + 1] as usize]
    }

    /// Rejects use against a graph whose shape no longer matches the one
    /// this schedule was built from.
    fn ensure_matches<D: DelayAlgebra>(&self, graph: &TimingGraph<D>) -> Result<(), TimingError> {
        if graph.vertex_bound() != self.vertex_bound
            || graph.n_vertices() != self.n_live_vertices
            || graph.n_edges() != self.n_live_edges
        {
            return Err(TimingError::StaleSchedule);
        }
        Ok(())
    }
}

/// Folds the `(vertex, initial)` pairs into a per-slot seed array; a
/// vertex listed twice keeps the max of its initial values (matching the
/// push-based reference).
fn seed<D: DelayAlgebra>(bound: usize, pairs: &[(VertexId, D)]) -> Vec<Option<D>> {
    let mut seeds: Vec<Option<D>> = vec![None; bound];
    for (v, init) in pairs {
        let slot = &mut seeds[v.0 as usize];
        *slot = Some(match slot.take() {
            Some(prev) => prev.maximum(init),
            None => init.clone(),
        });
    }
    seeds
}

/// Pull-reduction for one vertex of a forward pass: seed value first,
/// then each in-edge's `arrival[from] + delay` in fixed edge-index
/// order. No per-vertex clone of propagated values — the accumulator is
/// built from the first contribution and updated in place.
fn reduce_forward<D: DelayAlgebra>(
    graph: &TimingGraph<D>,
    schedule: &LevelSchedule,
    arrival: &[Option<D>],
    v: usize,
) -> Option<D> {
    let mut acc: Option<D> = arrival[v].clone();
    for &(e, from) in schedule.in_arcs_of(v) {
        if let Some(a) = &arrival[from as usize] {
            let cand = a.sum(&graph.edge(crate::EdgeId(e)).delay);
            acc = Some(match acc {
                Some(prev) => prev.maximum(&cand),
                None => cand,
            });
        }
    }
    acc
}

/// Pull-reduction for one vertex of a backward pass: seed (sink) value
/// first, then each out-edge's `delay + required[to]` in fixed
/// edge-index order.
fn reduce_backward<D: DelayAlgebra>(
    graph: &TimingGraph<D>,
    schedule: &LevelSchedule,
    required: &[Option<D>],
    v: usize,
) -> Option<D> {
    let mut acc: Option<D> = required[v].clone();
    for &(e, to) in schedule.out_arcs_of(v) {
        if let Some(r) = &required[to as usize] {
            let cand = graph.edge(crate::EdgeId(e)).delay.sum(r);
            acc = Some(match acc {
                Some(prev) => prev.maximum(&cand),
                None => cand,
            });
        }
    }
    acc
}

/// Runs one wavefront: computes `reduce(v)` for every vertex of the
/// level and scatters the results. All reads go to earlier-processed
/// levels (plus the vertex's own seed), so the level can fan out across
/// `workers` threads with bit-identical results.
fn run_level<D, F>(level: &[u32], values: &mut [Option<D>], workers: usize, reduce: F)
where
    D: DelayAlgebra + Send + Sync,
    F: Fn(&[Option<D>], usize) -> Option<D> + Sync,
{
    if workers > 1 && level.len() >= MIN_PARALLEL_WIDTH {
        let shared: &[Option<D>] = values;
        let results = parallel_indexed(level.len(), workers, |i| reduce(shared, level[i] as usize));
        for (&v, r) in level.iter().zip(results) {
            if r.is_some() {
                values[v as usize] = r;
            }
        }
    } else {
        for &v in level {
            if let Some(r) = reduce(values, v as usize) {
                values[v as usize] = Some(r);
            }
        }
    }
}

/// Arrival times from the given `(vertex, initial)` sources, level by
/// level. Semantics match [`propagate::forward`](crate::propagate::forward)
/// (`None` = unreachable, duplicate sources keep the max); the reduction
/// is pull-ordered, so canonical-form results agree with the push-based
/// reference within working precision, not bit-for-bit. Results are
/// bit-identical across all `workers` counts, including 1.
///
/// # Errors
///
/// Returns [`TimingError::StaleSchedule`] when `schedule` was built from
/// a different graph state.
///
/// # Panics
///
/// Panics if a source vertex id is out of range.
pub fn forward<D: DelayAlgebra + Send + Sync>(
    graph: &TimingGraph<D>,
    schedule: &LevelSchedule,
    sources: &[(VertexId, D)],
    workers: usize,
) -> Result<Vec<Option<D>>, TimingError> {
    schedule.ensure_matches(graph)?;
    let mut arrival = seed(schedule.vertex_bound, sources);
    for l in 0..schedule.n_levels() {
        run_level(
            schedule.level_range(l),
            &mut arrival,
            workers,
            |values, v| reduce_forward(graph, schedule, values, v),
        );
    }
    Ok(arrival)
}

/// Max delay from each vertex to the given `(vertex, initial)` sinks,
/// level by level in reverse. The per-vertex reduction order (seed
/// first, then out-edges in edge-index order) matches the push-based
/// [`propagate::backward`](crate::propagate::backward) exactly, so
/// serial results are bit-identical to it for every delay algebra; the
/// threaded results are bit-identical to serial for all `workers`
/// counts.
///
/// # Errors
///
/// Returns [`TimingError::StaleSchedule`] when `schedule` was built from
/// a different graph state.
///
/// # Panics
///
/// Panics if a sink vertex id is out of range.
pub fn backward<D: DelayAlgebra + Send + Sync>(
    graph: &TimingGraph<D>,
    schedule: &LevelSchedule,
    sinks: &[(VertexId, D)],
    workers: usize,
) -> Result<Vec<Option<D>>, TimingError> {
    schedule.ensure_matches(graph)?;
    let mut required = seed(schedule.vertex_bound, sinks);
    for l in (0..schedule.n_levels()).rev() {
        run_level(
            schedule.level_range(l),
            &mut required,
            workers,
            |values, v| reduce_backward(graph, schedule, values, v),
        );
    }
    Ok(required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate;

    /// in --1--> a --3--> out
    ///   \--2--> b --1--> out
    fn diamond() -> (TimingGraph<f64>, [VertexId; 4]) {
        let mut g = TimingGraph::new();
        let i = g.add_input();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, a, 1.0);
        g.add_edge(i, b, 2.0);
        g.add_edge(a, o, 3.0);
        g.add_edge(b, o, 1.0);
        (g, [i, a, b, o])
    }

    #[test]
    fn schedule_shape_on_diamond() {
        let (g, _) = diamond();
        let s = LevelSchedule::build(&g).unwrap();
        assert_eq!(s.n_levels(), 3);
        assert_eq!(s.n_scheduled(), 4);
        assert_eq!(s.max_width(), 2);
        assert_eq!(s.level_range(0), &[0]);
        assert_eq!(s.level_range(1), &[1, 2]);
        assert_eq!(s.level_range(2), &[3]);
    }

    #[test]
    fn forward_matches_push_reference_exactly_for_scalars() {
        let (g, [i, ..]) = diamond();
        let s = LevelSchedule::build(&g).unwrap();
        let push = propagate::forward(&g, &[(i, 0.0)]).unwrap();
        for workers in [1, 2, 4, 8] {
            let pull = forward(&g, &s, &[(i, 0.0)], workers).unwrap();
            assert_eq!(pull, push, "workers = {workers}");
        }
    }

    #[test]
    fn backward_matches_push_reference_exactly_for_scalars() {
        let (g, [.., o]) = diamond();
        let s = LevelSchedule::build(&g).unwrap();
        let push = propagate::backward(&g, &[(o, 0.0)]).unwrap();
        for workers in [1, 2, 4, 8] {
            let pull = backward(&g, &s, &[(o, 0.0)], workers).unwrap();
            assert_eq!(pull, push, "workers = {workers}");
        }
    }

    #[test]
    fn duplicate_sources_and_offsets_match_reference() {
        let (g, [i, _, _, o]) = diamond();
        let s = LevelSchedule::build(&g).unwrap();
        let pull = forward(&g, &s, &[(i, 0.0), (i, 5.0)], 1).unwrap();
        assert_eq!(pull[o.0 as usize], Some(9.0));
        let pull = forward(&g, &s, &[(i, 10.0)], 1).unwrap();
        assert_eq!(pull[o.0 as usize], Some(14.0));
    }

    #[test]
    fn unreachable_vertices_stay_none() {
        let (g, [_, a, b, o]) = diamond();
        let s = LevelSchedule::build(&g).unwrap();
        let arr = forward(&g, &s, &[(a, 0.0)], 1).unwrap();
        assert_eq!(arr[b.0 as usize], None);
        assert_eq!(arr[o.0 as usize], Some(3.0));
    }

    #[test]
    fn cycle_is_detected_at_build() {
        let mut g: TimingGraph<f64> = TimingGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, 1.0);
        assert!(matches!(
            LevelSchedule::build(&g),
            Err(TimingError::CyclicGraph)
        ));
    }

    #[test]
    fn stale_schedule_is_rejected() {
        let (mut g, [i, a, ..]) = diamond();
        let s = LevelSchedule::build(&g).unwrap();
        let e = g.out_edges(i).next().unwrap();
        g.remove_edge(e);
        assert_eq!(
            forward(&g, &s, &[(i, 0.0)], 1),
            Err(TimingError::StaleSchedule)
        );
        assert_eq!(
            backward(&g, &s, &[(a, 0.0)], 1),
            Err(TimingError::StaleSchedule)
        );
    }

    #[test]
    fn schedule_handles_tombstoned_graphs() {
        let (mut g, [i, a, b, o]) = diamond();
        // Remove the i -> b edge and then b itself once isolated.
        let to_b: Vec<_> = g
            .edges_iter()
            .filter(|(_, e)| e.from == b || e.to == b)
            .map(|(id, _)| id)
            .collect();
        for e in to_b {
            g.remove_edge(e);
        }
        g.remove_vertex(b);
        let s = LevelSchedule::build(&g).unwrap();
        assert_eq!(s.n_scheduled(), 3);
        let arr = forward(&g, &s, &[(i, 0.0)], 1).unwrap();
        assert_eq!(arr[b.0 as usize], None);
        assert_eq!(arr[a.0 as usize], Some(1.0));
        assert_eq!(arr[o.0 as usize], Some(4.0));
    }

    #[test]
    fn build_counter_increments_on_this_thread() {
        let before = schedule_builds();
        let (g, _) = diamond();
        let _ = LevelSchedule::build(&g).unwrap();
        let _ = LevelSchedule::build(&g).unwrap();
        assert_eq!(schedule_builds(), before + 2);
    }

    #[test]
    fn wide_levels_run_identically_across_worker_counts() {
        // One input fanning out to 64 parallel vertices, all joining on
        // one output — a single wide level exercising the parallel path.
        let mut g: TimingGraph<f64> = TimingGraph::new();
        let i = g.add_input();
        let o_mid: Vec<VertexId> = (0..64).map(|_| g.add_vertex()).collect();
        let o = g.add_vertex();
        g.mark_output(o);
        for (k, &m) in o_mid.iter().enumerate() {
            g.add_edge(i, m, 1.0 + k as f64);
            g.add_edge(m, o, 0.5);
        }
        let s = LevelSchedule::build(&g).unwrap();
        assert_eq!(s.max_width(), 64);
        let serial = forward(&g, &s, &[(i, 0.0)], 1).unwrap();
        for workers in [2, 4, 8] {
            assert_eq!(forward(&g, &s, &[(i, 0.0)], workers).unwrap(), serial);
        }
        assert_eq!(serial[o.0 as usize], Some(64.5));
    }
}
