//! All-pairs input/output delay computation (Sapatnekar, ISCAS'96).
//!
//! Section III of the paper: a timing model must preserve the matrix
//! `M_ij` of maximum delays from every input `i` to every output `j`. This
//! module computes that matrix with one forward propagation per input —
//! the same "PERT-like" traversal the paper uses — generically over the
//! delay algebra.
//!
//! All passes share one [`LevelSchedule`]: the graph is levelized once,
//! not once per input (the extraction cold path used to pay
//! `O(inputs × (V + E))` in redundant topological sorting). The
//! per-input passes are independent, so [`delay_matrix_with`] fans them
//! out across workers with bit-identical, index-ordered rows.

use crate::levels::{self, LevelSchedule};
use crate::{DelayAlgebra, TimingError, TimingGraph};
use ssta_math::parallel::try_parallel_indexed;

/// The `m × n` matrix of maximum input-to-output delays.
///
/// `None` entries mean no path exists from that input to that output.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayMatrix<D> {
    n_inputs: usize,
    n_outputs: usize,
    entries: Vec<Option<D>>,
}

impl<D: DelayAlgebra> DelayMatrix<D> {
    /// Number of input rows.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of output columns.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The maximum delay from input `i` to output `j`, if connected.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> Option<&D> {
        assert!(
            i < self.n_inputs && j < self.n_outputs,
            "index out of range"
        );
        self.entries[i * self.n_outputs + j].as_ref()
    }

    /// Iterates over all connected `(input, output, delay)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &D)> + '_ {
        self.entries.iter().enumerate().filter_map(move |(k, d)| {
            d.as_ref()
                .map(|d| (k / self.n_outputs, k % self.n_outputs, d))
        })
    }

    /// Number of connected pairs.
    pub fn n_connected(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Largest absolute difference of `f(delay)` against another matrix,
    /// over pairs connected in **both** matrices; also returns how many
    /// pairs are connected in one matrix but not the other.
    pub fn compare_with(&self, other: &DelayMatrix<D>, f: impl Fn(&D) -> f64) -> (f64, usize) {
        assert_eq!(self.n_inputs, other.n_inputs, "matrix shape mismatch");
        assert_eq!(self.n_outputs, other.n_outputs, "matrix shape mismatch");
        let mut worst = 0.0f64;
        let mut mismatched = 0usize;
        for (a, b) in self.entries.iter().zip(&other.entries) {
            match (a, b) {
                (Some(a), Some(b)) => worst = worst.max((f(a) - f(b)).abs()),
                (None, None) => {}
                _ => mismatched += 1,
            }
        }
        (worst, mismatched)
    }
}

/// Computes the full input/output delay matrix: one forward propagation
/// per input, starting from the value produced by `zero` (the additive
/// identity of the delay algebra, e.g. `0.0` or a constant-zero canonical
/// form). The graph is levelized once and the schedule shared across all
/// inputs; passes run serially — use [`delay_matrix_with`] to reuse an
/// existing schedule and fan the inputs out across workers.
///
/// # Errors
///
/// Returns [`TimingError::CyclicGraph`] for cyclic graphs.
pub fn delay_matrix<D: DelayAlgebra + Send + Sync>(
    graph: &TimingGraph<D>,
    zero: impl Fn() -> D + Sync,
) -> Result<DelayMatrix<D>, TimingError> {
    let schedule = LevelSchedule::build(graph)?;
    delay_matrix_with(graph, &schedule, zero, 1)
}

/// [`delay_matrix`] over a prebuilt [`LevelSchedule`], with the
/// independent per-input passes distributed across `workers` threads
/// (each pass itself runs serially — the parallelism is one level up,
/// where it is embarrassingly parallel). Rows come back in input order,
/// so results are bit-identical for every worker count.
///
/// # Errors
///
/// Returns [`TimingError::StaleSchedule`] when `schedule` does not match
/// the graph's current shape.
pub fn delay_matrix_with<D: DelayAlgebra + Send + Sync>(
    graph: &TimingGraph<D>,
    schedule: &LevelSchedule,
    zero: impl Fn() -> D + Sync,
    workers: usize,
) -> Result<DelayMatrix<D>, TimingError> {
    let inputs = graph.inputs().to_vec();
    let outputs = graph.outputs().to_vec();
    let rows: Vec<Vec<Option<D>>> = try_parallel_indexed(inputs.len(), workers, |i| {
        let arrival = levels::forward(graph, schedule, &[(inputs[i], zero())], 1)?;
        Ok::<_, TimingError>(
            outputs
                .iter()
                .map(|&vj| arrival[vj.0 as usize].clone())
                .collect(),
        )
    })?;
    let mut entries: Vec<Option<D>> = Vec::with_capacity(inputs.len() * outputs.len());
    for row in rows {
        entries.extend(row);
    }
    Ok(DelayMatrix {
        n_inputs: inputs.len(),
        n_outputs: outputs.len(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TimingGraph, VertexId};

    /// Two inputs, two outputs:
    /// i0 --1--> m --2--> o0 ; m --4--> o1 ; i1 --3--> o1 (direct)
    fn two_by_two() -> TimingGraph<f64> {
        let mut g = TimingGraph::new();
        let i0 = g.add_input();
        let i1 = g.add_input();
        let m = g.add_vertex();
        let o0 = g.add_vertex();
        let o1 = g.add_vertex();
        g.mark_output(o0);
        g.mark_output(o1);
        g.add_edge(i0, m, 1.0);
        g.add_edge(m, o0, 2.0);
        g.add_edge(m, o1, 4.0);
        g.add_edge(i1, o1, 3.0);
        g
    }

    #[test]
    fn matrix_entries_match_paths() {
        let g = two_by_two();
        let m = delay_matrix(&g, || 0.0).unwrap();
        assert_eq!(m.get(0, 0), Some(&3.0));
        assert_eq!(m.get(0, 1), Some(&5.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(1, 1), Some(&3.0));
        assert_eq!(m.n_connected(), 3);
    }

    #[test]
    fn iter_yields_connected_pairs_only() {
        let g = two_by_two();
        let m = delay_matrix(&g, || 0.0).unwrap();
        let triples: Vec<(usize, usize, f64)> = m.iter().map(|(i, j, &d)| (i, j, d)).collect();
        assert_eq!(triples, vec![(0, 0, 3.0), (0, 1, 5.0), (1, 1, 3.0)]);
    }

    #[test]
    fn compare_with_detects_differences() {
        let g = two_by_two();
        let m1 = delay_matrix(&g, || 0.0).unwrap();
        let mut g2 = two_by_two();
        // Change one edge delay.
        let e = g2.edges_iter().next().unwrap().0;
        g2.set_delay(e, 1.5);
        let m2 = delay_matrix(&g2, || 0.0).unwrap();
        let (worst, mismatched) = m1.compare_with(&m2, |&d| d);
        assert!((worst - 0.5).abs() < 1e-12);
        assert_eq!(mismatched, 0);
    }

    #[test]
    fn compare_with_counts_connectivity_mismatches() {
        let g = two_by_two();
        let m1 = delay_matrix(&g, || 0.0).unwrap();
        let mut g2 = two_by_two();
        // Remove the i1 -> o1 edge: pair (1,1) loses connectivity.
        let e = g2
            .edges_iter()
            .find(|(_, e)| e.from == VertexId(1))
            .unwrap()
            .0;
        g2.remove_edge(e);
        let m2 = delay_matrix(&g2, || 0.0).unwrap();
        let (_, mismatched) = m1.compare_with(&m2, |&d| d);
        assert_eq!(mismatched, 1);
    }

    #[test]
    fn one_schedule_build_per_matrix() {
        // The historical bug: every per-input pass re-ran Kahn's
        // algorithm. The matrix must levelize exactly once.
        let g = two_by_two();
        let before = crate::levels::schedule_builds();
        let _ = delay_matrix(&g, || 0.0).unwrap();
        assert_eq!(crate::levels::schedule_builds(), before + 1);
    }

    #[test]
    fn threaded_matrix_is_bit_identical_to_serial() {
        let g = two_by_two();
        let schedule = crate::LevelSchedule::build(&g).unwrap();
        let serial = delay_matrix_with(&g, &schedule, || 0.0, 1).unwrap();
        for workers in [2, 4, 8] {
            let par = delay_matrix_with(&g, &schedule, || 0.0, workers).unwrap();
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn matrix_on_multi_edge_graph_uses_max() {
        let mut g: TimingGraph<f64> = TimingGraph::new();
        let i = g.add_input();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, o, 1.0);
        g.add_edge(i, o, 7.0);
        g.add_edge(i, o, 3.0);
        let m = delay_matrix(&g, || 0.0).unwrap();
        assert_eq!(m.get(0, 0), Some(&7.0));
    }
}
