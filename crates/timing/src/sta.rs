//! Scalar static timing analysis baseline.
//!
//! The paper's Section I motivation: corner-based STA is too pessimistic
//! under growing process variation, which is what SSTA fixes. This module
//! provides the STA side of that comparison — nominal and corner analysis
//! plus critical-path extraction — on the same [`TimingGraph`] engine the
//! statistical analysis uses.

use crate::{propagate, DelayAlgebra, EdgeId, TimingError, TimingGraph};

/// The overall graph delay: maximum arrival time over all outputs, with
/// arrival 0 at every input.
///
/// # Errors
///
/// * [`TimingError::CyclicGraph`] for cyclic graphs;
/// * [`TimingError::NoPath`] when no output is reachable from any input.
pub fn graph_delay(graph: &TimingGraph<f64>) -> Result<f64, TimingError> {
    let sources: Vec<_> = graph.inputs().iter().map(|&v| (v, 0.0)).collect();
    let arrival = propagate::forward(graph, &sources)?;
    graph
        .outputs()
        .iter()
        .filter_map(|&v| arrival[v.0 as usize])
        .fold(None, |acc: Option<f64>, d| {
            Some(acc.map_or(d, |a| a.max(d)))
        })
        .ok_or(TimingError::NoPath)
}

/// The critical path: the input-to-output path with the largest total
/// delay. Returns `(delay, edges along the path in order)`.
///
/// # Errors
///
/// * [`TimingError::CyclicGraph`] for cyclic graphs;
/// * [`TimingError::NoPath`] when no output is reachable.
pub fn critical_path(graph: &TimingGraph<f64>) -> Result<(f64, Vec<EdgeId>), TimingError> {
    let sources: Vec<_> = graph.inputs().iter().map(|&v| (v, 0.0)).collect();
    let arrival = propagate::forward(graph, &sources)?;

    // Find the worst output.
    let mut end = None;
    for &v in graph.outputs() {
        if let Some(d) = arrival[v.0 as usize] {
            if end.is_none_or(|(_, best)| d > best) {
                end = Some((v, d));
            }
        }
    }
    let (mut v, total) = end.ok_or(TimingError::NoPath)?;

    // Walk backwards along the arg-max predecessor edges.
    let mut path = Vec::new();
    const TOL: f64 = 1e-9;
    'walk: while arrival[v.0 as usize].expect("on path") > TOL {
        for e in graph.in_edges(v) {
            let edge = graph.edge(e);
            if let Some(a) = arrival[edge.from.0 as usize] {
                if (a + edge.delay - arrival[v.0 as usize].expect("on path")).abs() < TOL {
                    path.push(e);
                    v = edge.from;
                    continue 'walk;
                }
            }
        }
        // Arrival value not explained by any predecessor: v is a source
        // with a non-zero initial value, impossible here.
        break;
    }
    path.reverse();
    Ok((total, path))
}

/// Derates every edge delay by a multiplicative factor — the classic
/// corner model (e.g. `1.0 + 3.0 * sigma_rel` for a 3σ slow corner).
pub fn derated(graph: &TimingGraph<f64>, factor: f64) -> TimingGraph<f64> {
    let mut g = graph.clone();
    let ids: Vec<EdgeId> = g.edges_iter().map(|(id, _)| id).collect();
    for id in ids {
        let d = g.edge(id).delay;
        g.set_delay(id, d * factor);
    }
    g
}

/// Per-output arrival times (0 at every input), `None` for unreachable
/// outputs.
///
/// # Errors
///
/// Returns [`TimingError::CyclicGraph`] for cyclic graphs.
pub fn output_arrivals<D: DelayAlgebra>(
    graph: &TimingGraph<D>,
    mut zero: impl FnMut() -> D,
) -> Result<Vec<Option<D>>, TimingError> {
    let sources: Vec<_> = graph.inputs().iter().map(|&v| (v, zero())).collect();
    let arrival = propagate::forward(graph, &sources)?;
    Ok(graph
        .outputs()
        .iter()
        .map(|&v| arrival[v.0 as usize].clone())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_netlist::generators;

    fn adder_graph() -> TimingGraph<f64> {
        let n = generators::ripple_carry_adder(8).unwrap();
        TimingGraph::from_netlist(&n, |ctx| ctx.nominal_ps())
    }

    #[test]
    fn graph_delay_positive_and_consistent_with_critical_path() {
        let g = adder_graph();
        let d = graph_delay(&g).unwrap();
        let (cp_delay, path) = critical_path(&g).unwrap();
        assert!((d - cp_delay).abs() < 1e-9);
        let sum: f64 = path.iter().map(|&e| g.edge(e).delay).sum();
        assert!((sum - d).abs() < 1e-9, "path edges sum to the delay");
    }

    #[test]
    fn critical_path_is_connected_input_to_output() {
        let g = adder_graph();
        let (_, path) = critical_path(&g).unwrap();
        assert!(!path.is_empty());
        // Starts at an input.
        let first = g.edge(path[0]);
        assert!(g.inputs().contains(&first.from));
        // Consecutive edges share vertices.
        for w in path.windows(2) {
            assert_eq!(g.edge(w[0]).to, g.edge(w[1]).from);
        }
        // Ends at an output.
        let last = g.edge(*path.last().unwrap());
        assert!(g.outputs().contains(&last.to));
    }

    #[test]
    fn derating_scales_delay_linearly() {
        let g = adder_graph();
        let d = graph_delay(&g).unwrap();
        let slow = derated(&g, 1.5);
        let ds = graph_delay(&slow).unwrap();
        assert!((ds - 1.5 * d).abs() < 1e-6);
    }

    #[test]
    fn deeper_adder_has_longer_delay() {
        let d8 = graph_delay(&adder_graph()).unwrap();
        let n16 = generators::ripple_carry_adder(16).unwrap();
        let g16 = TimingGraph::from_netlist(&n16, |ctx| ctx.nominal_ps());
        let d16 = graph_delay(&g16).unwrap();
        assert!(d16 > d8 * 1.5, "ripple chains scale with width");
    }

    #[test]
    fn no_path_is_reported() {
        let mut g: TimingGraph<f64> = TimingGraph::new();
        let _i = g.add_input();
        let o = g.add_vertex();
        g.mark_output(o);
        assert_eq!(graph_delay(&g), Err(TimingError::NoPath));
        assert!(critical_path(&g).is_err());
    }

    #[test]
    fn output_arrivals_per_port() {
        let g = adder_graph();
        let arr = output_arrivals(&g, || 0.0).unwrap();
        assert_eq!(arr.len(), g.outputs().len());
        assert!(arr.iter().all(|a| a.is_some()));
        // Later sum bits of a ripple adder arrive later.
        let first = arr[0].unwrap();
        let last = arr[7].unwrap();
        assert!(last > first);
    }
}
