use std::fmt;

/// Errors produced by timing-graph algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimingError {
    /// The graph contains a cycle (timing graphs must be DAGs).
    CyclicGraph,
    /// An input/output index was out of range.
    PortOutOfRange {
        /// What was being looked up ("input" or "output").
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// Number of available ports.
        available: usize,
    },
    /// No path exists where one was required (e.g. asking for the critical
    /// path of a graph whose outputs are unreachable).
    NoPath,
    /// Raw graph parts failed structural validation (see
    /// [`TimingGraph::from_raw_parts`](crate::TimingGraph::from_raw_parts)).
    InvalidGraph {
        /// The first inconsistency found.
        reason: String,
    },
    /// A [`LevelSchedule`](crate::levels::LevelSchedule) was used with a
    /// graph whose shape no longer matches the one it was built from
    /// (the graph was mutated after levelization).
    StaleSchedule,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::CyclicGraph => write!(f, "timing graph contains a cycle"),
            TimingError::PortOutOfRange {
                kind,
                index,
                available,
            } => write!(f, "{kind} index {index} out of range (have {available})"),
            TimingError::NoPath => write!(f, "no input-to-output path exists"),
            TimingError::InvalidGraph { reason } => {
                write!(f, "invalid raw graph parts: {reason}")
            }
            TimingError::StaleSchedule => {
                write!(
                    f,
                    "level schedule no longer matches the graph it was built from"
                )
            }
        }
    }
}

impl std::error::Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(TimingError::CyclicGraph.to_string().contains("cycle"));
        assert!(TimingError::NoPath.to_string().contains("no input"));
    }
}
