use crate::{DelayAlgebra, TimingError};
use serde::{Deserialize, Serialize};
use ssta_netlist::{CellType, Netlist, Signal};

/// Identifier of a vertex in a [`TimingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VertexId(pub u32);

/// Identifier of an edge in a [`TimingGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

/// What a vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VertexKind {
    /// Primary input `n` of the module.
    Input(u32),
    /// An internal vertex (gate output or synthetic model vertex).
    Internal,
}

/// A directed delay edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge<D> {
    /// Source vertex.
    pub from: VertexId,
    /// Sink vertex.
    pub to: VertexId,
    /// Edge delay.
    pub delay: D,
    alive: bool,
}

/// The raw storage of a [`TimingGraph`], every slot included — live
/// vertices/edges *and* tombstoned ones — in id order.
///
/// Extraction tombstones heavily before compacting, and serialized
/// models must reproduce the graph bit-exactly (tombstones, adjacency
/// order and all) so that a decoded model re-encodes to identical
/// bytes and analyzes to identical bits. [`TimingGraph::to_raw_parts`]
/// and [`TimingGraph::from_raw_parts`] convert losslessly between a
/// graph and this flat form; adjacency lists and the dead-edge count
/// are derived state and are rebuilt, not stored.
#[derive(Debug, Clone, PartialEq)]
pub struct RawGraphParts<D> {
    /// Vertex kinds, one per vertex slot.
    pub kinds: Vec<VertexKind>,
    /// Liveness of each vertex slot.
    pub vertex_alive: Vec<bool>,
    /// Edge slots `(from, to, delay, alive)` in id order.
    pub edges: Vec<(VertexId, VertexId, D, bool)>,
    /// Primary-input vertices, in port order.
    pub inputs: Vec<VertexId>,
    /// Primary-output vertices, in port order.
    pub outputs: Vec<VertexId>,
}

/// Context handed to the delay-annotation callback when importing a
/// netlist: identifies the arc (gate, input pin) an edge corresponds to.
#[derive(Debug, Clone, Copy)]
pub struct ArcContext<'a> {
    /// The netlist being imported.
    pub netlist: &'a Netlist,
    /// Gate index within the netlist.
    pub gate: usize,
    /// Input pin index of the arc.
    pub pin: usize,
}

impl ArcContext<'_> {
    /// The library cell of the gate.
    pub fn cell(&self) -> &CellType {
        let g = self.netlist.gate(self.gate);
        self.netlist.library().cell(g.cell)
    }

    /// Nominal arc delay in picoseconds.
    pub fn nominal_ps(&self) -> f64 {
        self.cell().arc_delay_ps(self.pin)
    }
}

/// A multi-edge weighted DAG with designated primary inputs and outputs.
///
/// Edge removal is tombstone-based (model extraction deletes and rewrites
/// edges heavily); [`compact`](TimingGraph::compact) rebuilds a dense
/// graph. Vertices are never re-indexed except by `compact`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingGraph<D> {
    kinds: Vec<VertexKind>,
    vertex_alive: Vec<bool>,
    edges: Vec<Edge<D>>,
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    inputs: Vec<VertexId>,
    outputs: Vec<VertexId>,
    n_dead_edges: usize,
}

impl<D: DelayAlgebra> TimingGraph<D> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TimingGraph {
            kinds: Vec::new(),
            vertex_alive: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            n_dead_edges: 0,
        }
    }

    fn push_vertex(&mut self, kind: VertexKind) -> VertexId {
        let id = VertexId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.vertex_alive.push(true);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a primary-input vertex (appended to the input list).
    pub fn add_input(&mut self) -> VertexId {
        let idx = self.inputs.len() as u32;
        let id = self.push_vertex(VertexKind::Input(idx));
        self.inputs.push(id);
        id
    }

    /// Adds an internal vertex.
    pub fn add_vertex(&mut self) -> VertexId {
        self.push_vertex(VertexKind::Internal)
    }

    /// Marks a vertex as a primary output (appended to the output list).
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn mark_output(&mut self, v: VertexId) {
        assert!((v.0 as usize) < self.kinds.len(), "vertex out of range");
        self.outputs.push(v);
    }

    /// Adds an edge and returns its id. Parallel edges are allowed.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or is dead.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, delay: D) -> EdgeId {
        assert!(self.is_alive(from), "source vertex dead or missing");
        assert!(self.is_alive(to), "sink vertex dead or missing");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            from,
            to,
            delay,
            alive: true,
        });
        self.out_adj[from.0 as usize].push(id.0);
        self.in_adj[to.0 as usize].push(id.0);
        id
    }

    /// Removes an edge (tombstone). No-op when already removed.
    ///
    /// # Panics
    ///
    /// Panics if the edge id does not exist.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let edge = &mut self.edges[e.0 as usize];
        if !edge.alive {
            return;
        }
        edge.alive = false;
        self.n_dead_edges += 1;
        let (from, to) = (edge.from, edge.to);
        self.out_adj[from.0 as usize].retain(|&x| x != e.0);
        self.in_adj[to.0 as usize].retain(|&x| x != e.0);
    }

    /// Removes an isolated internal vertex.
    ///
    /// # Panics
    ///
    /// Panics if the vertex still has live edges, or is an input/output.
    pub fn remove_vertex(&mut self, v: VertexId) {
        let vi = v.0 as usize;
        assert!(self.vertex_alive[vi], "vertex already removed");
        assert!(
            self.out_adj[vi].is_empty() && self.in_adj[vi].is_empty(),
            "vertex {v:?} still has live edges"
        );
        assert!(
            !self.inputs.contains(&v) && !self.outputs.contains(&v),
            "cannot remove an input/output vertex"
        );
        self.vertex_alive[vi] = false;
    }

    /// `true` when the vertex exists and is alive.
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.vertex_alive
            .get(v.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not exist or the edge was removed.
    pub fn edge(&self, e: EdgeId) -> &Edge<D> {
        let edge = &self.edges[e.0 as usize];
        assert!(edge.alive, "edge {e:?} was removed");
        edge
    }

    /// Replaces the delay of a live edge.
    ///
    /// # Panics
    ///
    /// Panics if the id does not exist or the edge was removed.
    pub fn set_delay(&mut self, e: EdgeId, delay: D) {
        let edge = &mut self.edges[e.0 as usize];
        assert!(edge.alive, "edge {e:?} was removed");
        edge.delay = delay;
    }

    /// Live out-edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[v.0 as usize].iter().map(|&i| EdgeId(i))
    }

    /// Live in-edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[v.0 as usize].iter().map(|&i| EdgeId(i))
    }

    /// Number of live out-edges.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v.0 as usize].len()
    }

    /// Number of live in-edges.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v.0 as usize].len()
    }

    /// Total vertex slots (including dead ones) — valid index bound.
    pub fn vertex_bound(&self) -> usize {
        self.kinds.len()
    }

    /// Iterator over live vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertex_alive
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a)
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Number of live vertices.
    pub fn n_vertices(&self) -> usize {
        self.vertex_alive.iter().filter(|&&a| a).count()
    }

    /// Number of live edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len() - self.n_dead_edges
    }

    /// Iterator over live edges.
    pub fn edges_iter(&self) -> impl Iterator<Item = (EdgeId, &Edge<D>)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, e)| (EdgeId(i as u32), e))
    }

    /// The primary-input vertices, in port order.
    pub fn inputs(&self) -> &[VertexId] {
        &self.inputs
    }

    /// The primary-output vertices, in port order (duplicates possible when
    /// one vertex drives several output ports).
    pub fn outputs(&self) -> &[VertexId] {
        &self.outputs
    }

    /// The kind of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if the vertex does not exist.
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v.0 as usize]
    }

    /// `true` when `v` is a designated output vertex.
    pub fn is_output(&self, v: VertexId) -> bool {
        self.outputs.contains(&v)
    }

    /// Topological order over live vertices (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::CyclicGraph`] if a cycle exists.
    pub fn topo_order(&self) -> Result<Vec<VertexId>, TimingError> {
        let n = self.kinds.len();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_adj[i].len()).collect();
        let mut queue: Vec<VertexId> = self
            .vertices()
            .filter(|&v| indeg[v.0 as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.n_vertices());
        while let Some(v) = queue.pop() {
            order.push(v);
            for e in self.out_edges(v) {
                let w = self.edges[e.0 as usize].to;
                indeg[w.0 as usize] -= 1;
                if indeg[w.0 as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != self.n_vertices() {
            return Err(TimingError::CyclicGraph);
        }
        Ok(order)
    }

    /// Vertices reachable from any input via live edges.
    pub fn reachable_from_inputs(&self) -> Vec<bool> {
        self.bfs(&self.inputs, |g, v| {
            g.out_adj[v.0 as usize]
                .iter()
                .map(|&e| g.edges[e as usize].to)
                .collect()
        })
    }

    /// Vertices from which some output is reachable via live edges.
    pub fn reaches_outputs(&self) -> Vec<bool> {
        self.bfs(&self.outputs, |g, v| {
            g.in_adj[v.0 as usize]
                .iter()
                .map(|&e| g.edges[e as usize].from)
                .collect()
        })
    }

    fn bfs(
        &self,
        roots: &[VertexId],
        neighbors: impl Fn(&Self, VertexId) -> Vec<VertexId>,
    ) -> Vec<bool> {
        let mut seen = vec![false; self.kinds.len()];
        let mut stack: Vec<VertexId> = Vec::new();
        for &r in roots {
            if self.is_alive(r) && !seen[r.0 as usize] {
                seen[r.0 as usize] = true;
                stack.push(r);
            }
        }
        while let Some(v) = stack.pop() {
            for w in neighbors(self, v) {
                if !seen[w.0 as usize] {
                    seen[w.0 as usize] = true;
                    stack.push(w);
                }
            }
        }
        seen
    }

    /// Rebuilds a dense graph without dead vertices/edges. Input and output
    /// port orders are preserved. Returns the new graph and the old→new
    /// vertex mapping (dead vertices map to `None`).
    pub fn compact(&self) -> (TimingGraph<D>, Vec<Option<VertexId>>) {
        let mut g = TimingGraph::new();
        let mut map: Vec<Option<VertexId>> = vec![None; self.kinds.len()];
        // Inputs first, preserving port order.
        for &v in &self.inputs {
            if self.is_alive(v) {
                map[v.0 as usize] = Some(g.add_input());
            }
        }
        for v in self.vertices() {
            if map[v.0 as usize].is_none() {
                map[v.0 as usize] = Some(g.add_vertex());
            }
        }
        for (_, e) in self.edges_iter() {
            let from = map[e.from.0 as usize].expect("live edge endpoints are live");
            let to = map[e.to.0 as usize].expect("live edge endpoints are live");
            g.add_edge(from, to, e.delay.clone());
        }
        for &v in &self.outputs {
            let nv = map[v.0 as usize].expect("outputs stay alive");
            g.mark_output(nv);
        }
        (g, map)
    }

    /// Dumps the graph into its raw slot-level parts (see
    /// [`RawGraphParts`]). Lossless: tombstoned vertices and edges are
    /// included, so [`from_raw_parts`](Self::from_raw_parts) rebuilds a
    /// graph equal to this one in every observable detail, including
    /// slot ids and adjacency order.
    pub fn to_raw_parts(&self) -> RawGraphParts<D> {
        RawGraphParts {
            kinds: self.kinds.clone(),
            vertex_alive: self.vertex_alive.clone(),
            edges: self
                .edges
                .iter()
                .map(|e| (e.from, e.to, e.delay.clone(), e.alive))
                .collect(),
            inputs: self.inputs.clone(),
            outputs: self.outputs.clone(),
        }
    }

    /// Rebuilds a graph from raw parts, validating structural
    /// invariants and re-deriving adjacency (alive edges in slot order,
    /// which is exactly what incremental construction produces).
    ///
    /// # Errors
    ///
    /// Returns [`TimingError::InvalidGraph`] when the parts are
    /// inconsistent: mismatched slot counts, out-of-range vertex ids,
    /// live edges on dead vertices, or an input list that disagrees
    /// with the vertex kinds.
    pub fn from_raw_parts(raw: RawGraphParts<D>) -> Result<Self, TimingError> {
        let invalid = |reason: String| TimingError::InvalidGraph { reason };
        let n = raw.kinds.len();
        if raw.vertex_alive.len() != n {
            return Err(invalid(format!(
                "{} vertex kinds but {} liveness flags",
                n,
                raw.vertex_alive.len()
            )));
        }
        // The input list must mirror the Input(i) kinds exactly.
        let n_inputs = raw
            .kinds
            .iter()
            .filter(|k| matches!(k, VertexKind::Input(_)))
            .count();
        if raw.inputs.len() != n_inputs {
            return Err(invalid(format!(
                "{} input vertices but {} entries in the input list",
                n_inputs,
                raw.inputs.len()
            )));
        }
        for (i, &v) in raw.inputs.iter().enumerate() {
            match raw.kinds.get(v.0 as usize) {
                Some(&VertexKind::Input(idx)) if idx as usize == i => {}
                _ => {
                    return Err(invalid(format!(
                        "input list slot {i} points at vertex {} which is not Input({i})",
                        v.0
                    )))
                }
            }
        }
        for &v in &raw.outputs {
            if (v.0 as usize) >= n {
                return Err(invalid(format!("output vertex {} out of range", v.0)));
            }
        }
        let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut edges = Vec::with_capacity(raw.edges.len());
        let mut n_dead_edges = 0;
        for (id, (from, to, delay, alive)) in raw.edges.into_iter().enumerate() {
            if (from.0 as usize) >= n || (to.0 as usize) >= n {
                return Err(invalid(format!("edge {id} endpoint out of range")));
            }
            if alive {
                if !raw.vertex_alive[from.0 as usize] || !raw.vertex_alive[to.0 as usize] {
                    return Err(invalid(format!("live edge {id} touches a dead vertex")));
                }
                out_adj[from.0 as usize].push(id as u32);
                in_adj[to.0 as usize].push(id as u32);
            } else {
                n_dead_edges += 1;
            }
            edges.push(Edge {
                from,
                to,
                delay,
                alive,
            });
        }
        Ok(TimingGraph {
            kinds: raw.kinds,
            vertex_alive: raw.vertex_alive,
            edges,
            out_adj,
            in_adj,
            inputs: raw.inputs,
            outputs: raw.outputs,
            n_dead_edges,
        })
    }

    /// Imports a netlist: one vertex per primary input and per gate, one
    /// edge per gate input pin (from the pin's driver to the gate), with
    /// delays produced by `annotate`.
    ///
    /// Vertex ids are deterministic: input `i` is `VertexId(i)`, gate `g`
    /// is `VertexId(n_inputs + g)`.
    pub fn from_netlist(
        netlist: &Netlist,
        mut annotate: impl FnMut(&ArcContext<'_>) -> D,
    ) -> TimingGraph<D> {
        let mut g = TimingGraph::new();
        for _ in 0..netlist.n_inputs() {
            g.add_input();
        }
        let gate_vertex = |gi: usize| VertexId((netlist.n_inputs() + gi) as u32);
        for _ in 0..netlist.n_gates() {
            g.add_vertex();
        }
        for (gi, gate) in netlist.gates().iter().enumerate() {
            for (pin, &src) in gate.inputs.iter().enumerate() {
                let from = match src {
                    Signal::Input(i) => VertexId(i),
                    Signal::Gate(sg) => gate_vertex(sg as usize),
                };
                let ctx = ArcContext {
                    netlist,
                    gate: gi,
                    pin,
                };
                g.add_edge(from, gate_vertex(gi), annotate(&ctx));
            }
        }
        for &po in netlist.outputs() {
            let v = match po {
                Signal::Input(i) => VertexId(i),
                Signal::Gate(sg) => gate_vertex(sg as usize),
            };
            g.mark_output(v);
        }
        g
    }
}

impl<D: DelayAlgebra> Default for TimingGraph<D> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_netlist::generators;

    fn diamond() -> (TimingGraph<f64>, VertexId, VertexId) {
        // in -> a -> out, in -> b -> out, plus a parallel edge a -> out.
        let mut g = TimingGraph::new();
        let i = g.add_input();
        let a = g.add_vertex();
        let b = g.add_vertex();
        let o = g.add_vertex();
        g.mark_output(o);
        g.add_edge(i, a, 1.0);
        g.add_edge(i, b, 2.0);
        g.add_edge(a, o, 3.0);
        g.add_edge(a, o, 5.0);
        g.add_edge(b, o, 1.0);
        (g, a, o)
    }

    #[test]
    fn counts_and_degrees() {
        let (g, a, o) = diamond();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(o), 3);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, a, o) = diamond();
        let parallel: Vec<EdgeId> = g.out_edges(a).filter(|&e| g.edge(e).to == o).collect();
        g.remove_edge(parallel[0]);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(o), 2);
        // Double removal is a no-op.
        g.remove_edge(parallel[0]);
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn remove_vertex_requires_isolation() {
        let (mut g, a, _) = diamond();
        let edges: Vec<EdgeId> = g
            .edges_iter()
            .filter(|(_, e)| e.from == a || e.to == a)
            .map(|(id, _)| id)
            .collect();
        for e in edges {
            g.remove_edge(e);
        }
        g.remove_vertex(a);
        assert_eq!(g.n_vertices(), 3);
        assert!(!g.is_alive(a));
    }

    #[test]
    #[should_panic(expected = "still has live edges")]
    fn remove_connected_vertex_panics() {
        let (mut g, a, _) = diamond();
        g.remove_vertex(a);
    }

    #[test]
    fn topo_order_is_valid() {
        let (g, _, _) = diamond();
        let order = g.topo_order().unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for (_, e) in g.edges_iter() {
            assert!(pos[&e.from] < pos[&e.to]);
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut g: TimingGraph<f64> = TimingGraph::new();
        let a = g.add_vertex();
        let b = g.add_vertex();
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, 1.0);
        assert_eq!(g.topo_order(), Err(TimingError::CyclicGraph));
    }

    #[test]
    fn reachability_both_directions() {
        let (mut g, a, o) = diamond();
        let reach = g.reachable_from_inputs();
        assert!(reach.iter().all(|&r| r));
        // Cut vertex b off: in->b edge removed.
        let to_b: Vec<EdgeId> = g
            .edges_iter()
            .filter(|(_, e)| e.to == VertexId(2))
            .map(|(id, _)| id)
            .collect();
        for e in to_b {
            g.remove_edge(e);
        }
        let reach = g.reachable_from_inputs();
        assert!(!reach[2]);
        let back = g.reaches_outputs();
        assert!(back[a.0 as usize] && back[o.0 as usize]);
    }

    #[test]
    fn compact_preserves_ports_and_edges() {
        let (mut g, a, o) = diamond();
        // Remove b entirely.
        let b = VertexId(2);
        let b_edges: Vec<EdgeId> = g
            .edges_iter()
            .filter(|(_, e)| e.from == b || e.to == b)
            .map(|(id, _)| id)
            .collect();
        for e in b_edges {
            g.remove_edge(e);
        }
        g.remove_vertex(b);
        let (c, map) = g.compact();
        assert_eq!(c.n_vertices(), 3);
        assert_eq!(c.n_edges(), 3);
        assert_eq!(c.inputs().len(), 1);
        assert_eq!(c.outputs().len(), 1);
        assert!(map[b.0 as usize].is_none());
        assert!(map[a.0 as usize].is_some());
        assert_eq!(map[o.0 as usize], Some(c.outputs()[0]));
    }

    #[test]
    fn raw_parts_round_trip_preserves_tombstones_and_adjacency() {
        let (mut g, a, o) = diamond();
        // Tombstone one parallel edge so the raw form carries dead state.
        let parallel: Vec<EdgeId> = g.out_edges(a).filter(|&e| g.edge(e).to == o).collect();
        g.remove_edge(parallel[0]);

        let back = TimingGraph::from_raw_parts(g.to_raw_parts()).unwrap();
        assert_eq!(back.n_vertices(), g.n_vertices());
        assert_eq!(back.n_edges(), g.n_edges());
        assert_eq!(back.inputs(), g.inputs());
        assert_eq!(back.outputs(), g.outputs());
        for v in g.vertices() {
            let orig: Vec<EdgeId> = g.out_edges(v).collect();
            let rt: Vec<EdgeId> = back.out_edges(v).collect();
            assert_eq!(orig, rt, "adjacency order must survive");
        }
        // And the raw forms themselves agree (the round trip is lossless).
        assert_eq!(back.to_raw_parts(), g.to_raw_parts());
    }

    #[test]
    fn from_raw_parts_rejects_inconsistencies() {
        let (g, _, _) = diamond();
        let mut raw = g.to_raw_parts();
        raw.vertex_alive.pop();
        assert!(matches!(
            TimingGraph::<f64>::from_raw_parts(raw),
            Err(TimingError::InvalidGraph { .. })
        ));

        let mut raw = g.to_raw_parts();
        raw.edges[0].1 = VertexId(99);
        assert!(matches!(
            TimingGraph::<f64>::from_raw_parts(raw),
            Err(TimingError::InvalidGraph { .. })
        ));

        let mut raw = g.to_raw_parts();
        raw.inputs[0] = VertexId(2); // an Internal vertex, not Input(0)
        assert!(matches!(
            TimingGraph::<f64>::from_raw_parts(raw),
            Err(TimingError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn from_netlist_shape_matches_stats() {
        let n = generators::ripple_carry_adder(4).unwrap();
        let g = TimingGraph::from_netlist(&n, |ctx| ctx.nominal_ps());
        let stats = n.stats();
        assert_eq!(g.n_vertices(), stats.inputs + stats.gates);
        assert_eq!(g.n_edges(), stats.pin_connections);
        assert_eq!(g.inputs().len(), stats.inputs);
        assert_eq!(g.outputs().len(), stats.outputs);
        g.topo_order().unwrap();
    }

    #[test]
    fn from_netlist_annotation_receives_correct_arcs() {
        let n = generators::ripple_carry_adder(2).unwrap();
        let mut arcs = Vec::new();
        let _ = TimingGraph::from_netlist(&n, |ctx| {
            arcs.push((ctx.gate, ctx.pin));
            ctx.nominal_ps()
        });
        assert_eq!(arcs.len(), n.pin_connection_count());
        // Every arc is unique.
        let set: std::collections::HashSet<_> = arcs.iter().collect();
        assert_eq!(set.len(), arcs.len());
    }
}
