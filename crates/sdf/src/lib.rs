//! SDF (Standard Delay Format, IEEE 1497) interchange for hier-ssta.
//!
//! SDF is the lingua franca EDA tools use to hand timing numbers across
//! tool boundaries. This crate gives the extracted statistical models a
//! foothold in that world:
//!
//! * a hand-rolled, position-tracking lexer and recursive-descent
//!   [`parse`]r for the SDF subset the flow needs — `IOPATH` delays,
//!   `SETUPHOLD`/`RECREM` timing checks, `PERIOD`/`WIDTH` pulse checks —
//!   every syntax error reported with its line and column;
//! * a deterministic writer ([`write_sdf`]): same [`Sdf`] in, same bytes
//!   out, so exported files can be diffed, content-addressed and
//!   round-tripped byte-identically;
//! * a [`model`] exchange layer mapping [`TimingModel`]s to SDF cells
//!   and back. A Gaussian quantity flattens to SDF's min/typ/max triple
//!   as `μ−kσ : μ : μ+kσ` (k = 3 by default); the exporter additionally
//!   embeds the full statistical payload in an `(SSTM "…")` vendor
//!   extension so a hier-ssta importer reconstructs the model
//!   *bit-identically*, while foreign SDF still imports as an
//!   interface-only approximate model.
//!
//! [`TimingModel`]: ssta_core::TimingModel
//!
//! The data model follows the shape real SDF tooling uses (cells with
//! `IOPATH`/`SETUPHOLD`/`RECREM` records and min:typ:max [`Delay`]
//! triples), trimmed to the subset this flow writes and reads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lex;

pub mod model;
pub mod parse;
pub mod write;

pub use model::{
    export_models, import_cell, import_sdf_models, model_to_cell, ExportOptions, SSTM_KEYWORD,
};
pub use parse::parse_sdf;
pub use write::write_sdf;

use std::fmt;

/// One parsed SDF file: header fields plus cells, in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sdf {
    /// `(SDFVERSION "…")`.
    pub sdfversion: Option<String>,
    /// `(DESIGN "…")`.
    pub design: Option<String>,
    /// `(DATE "…")`.
    pub date: Option<String>,
    /// `(VENDOR "…")`.
    pub vendor: Option<String>,
    /// `(PROGRAM "…")`.
    pub program: Option<String>,
    /// `(VERSION "…")`.
    pub version: Option<String>,
    /// `(DIVIDER …)` — hierarchy divider character.
    pub divider: Option<String>,
    /// `(TIMESCALE …)`, verbatim (e.g. `1ps`).
    pub timescale: Option<String>,
    /// The cells, in file order.
    pub cells: Vec<Cell>,
}

impl Sdf {
    /// Parses SDF text. Equivalent to [`parse_sdf`].
    ///
    /// # Errors
    ///
    /// Returns a positioned [`SdfError`] on the first syntax defect.
    pub fn parse(text: &str) -> Result<Sdf, SdfError> {
        parse_sdf(text)
    }
}

impl fmt::Display for Sdf {
    /// Writes the canonical text form (see [`write_sdf`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_sdf(self))
    }
}

/// One `(CELL …)` record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cell {
    /// `(CELLTYPE "…")` — the module/model name.
    pub celltype: String,
    /// `(INSTANCE …)` — optional instance path.
    pub instance: Option<String>,
    /// `(DELAY (ABSOLUTE (IOPATH …)*))` records.
    pub iopath: Vec<IoPath>,
    /// `(SETUPHOLD …)` timing checks.
    pub setuphold: Vec<SetupHold>,
    /// `(RECREM …)` recovery/removal checks.
    pub recrem: Vec<RecRem>,
    /// `(PERIOD …)` checks.
    pub period: Vec<Period>,
    /// `(WIDTH …)` pulse-width checks.
    pub width: Vec<Width>,
    /// `(SSTM "…")` vendor extension: the hex-encoded binary statistical
    /// model payload (see [`model`]).
    pub sstm: Option<String>,
}

/// One `IOPATH` delay arc.
#[derive(Debug, Clone, PartialEq)]
pub struct IoPath {
    /// Source port, possibly edge-qualified (`(posedge clk)` for
    /// clock-to-output arcs).
    pub from: Edge,
    /// Destination port.
    pub to: Edge,
    /// Rise delay triple.
    pub rise: Delay,
    /// Fall delay triple.
    pub fall: Delay,
}

/// One `SETUPHOLD` check: data port against clock port.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupHold {
    /// Data port edge.
    pub edge_d: Edge,
    /// Clock port edge.
    pub edge_c: Edge,
    /// Setup triple; `None` writes/parses as the empty `()` value.
    pub setup: Option<Delay>,
    /// Hold triple; `None` writes/parses as the empty `()` value.
    pub hold: Option<Delay>,
}

/// One `RECREM` recovery/removal check.
#[derive(Debug, Clone, PartialEq)]
pub struct RecRem {
    /// Asynchronous-control port edge.
    pub edge_r: Edge,
    /// Clock port edge.
    pub edge_c: Edge,
    /// Recovery triple; `None` writes/parses as `()`.
    pub recovery: Option<Delay>,
    /// Removal triple; `None` writes/parses as `()`.
    pub removal: Option<Delay>,
}

/// One `PERIOD` check.
#[derive(Debug, Clone, PartialEq)]
pub struct Period {
    /// Clock port edge.
    pub edge: Edge,
    /// Minimum period triple.
    pub val: Delay,
}

/// One `WIDTH` pulse-width check.
#[derive(Debug, Clone, PartialEq)]
pub struct Width {
    /// Port edge.
    pub edge: Edge,
    /// Minimum pulse width triple.
    pub val: Delay,
}

/// A min/typ/max delay triple, written as `(min:typ:max)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delay {
    /// Fast-corner value.
    pub min: f64,
    /// Typical value.
    pub typ: f64,
    /// Slow-corner value.
    pub max: f64,
}

impl Delay {
    /// A degenerate triple with all three corners equal.
    pub fn flat(v: f64) -> Self {
        Delay {
            min: v,
            typ: v,
            max: v,
        }
    }
}

/// A port reference, optionally qualified by a clock edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edge {
    /// Bare port name.
    Plain(String),
    /// `(posedge port)`.
    Posedge(String),
    /// `(negedge port)`.
    Negedge(String),
}

impl Edge {
    /// The referenced port name, edge qualifier stripped.
    pub fn port(&self) -> &str {
        match self {
            Edge::Plain(p) | Edge::Posedge(p) | Edge::Negedge(p) => p,
        }
    }

    /// `true` for `Posedge`/`Negedge` references.
    pub fn is_clocked(&self) -> bool {
        !matches!(self, Edge::Plain(_))
    }
}

/// A positioned SDF syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfError {
    /// 1-based line of the first defect.
    pub line: usize,
    /// 1-based column of the first defect.
    pub col: usize,
    /// What was expected or found.
    pub message: String,
}

impl SdfError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        SdfError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SDF parse error at line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for SdfError {}

/// Lowercase-hex encodes bytes (the `SSTM` payload encoding).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Decodes lowercase/uppercase hex into bytes.
///
/// # Errors
///
/// Returns the byte offset of the first non-hex digit, or `Err(len)` for
/// odd-length input.
pub fn from_hex(hex: &str) -> Result<Vec<u8>, usize> {
    if !hex.len().is_multiple_of(2) {
        return Err(hex.len());
    }
    let digits = hex.as_bytes();
    let mut out = Vec::with_capacity(hex.len() / 2);
    for (i, pair) in digits.chunks_exact(2).enumerate() {
        let nib = |d: u8, at: usize| -> Result<u8, usize> {
            (d as char).to_digit(16).map(|v| v as u8).ok_or(at)
        };
        out.push((nib(pair[0], 2 * i)? << 4) | nib(pair[1], 2 * i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(from_hex("abc"), Err(3));
        assert_eq!(from_hex("zz"), Err(0));
        assert_eq!(from_hex("aaxz"), Err(2));
    }

    #[test]
    fn edge_accessors() {
        assert_eq!(Edge::Posedge("clk".into()).port(), "clk");
        assert!(Edge::Negedge("clk".into()).is_clocked());
        assert!(!Edge::Plain("d".into()).is_clocked());
    }

    #[test]
    fn error_displays_position() {
        let e = SdfError::new(3, 14, "expected `(`");
        assert_eq!(
            e.to_string(),
            "SDF parse error at line 3, column 14: expected `(`"
        );
    }
}
