//! The canonical SDF writer.
//!
//! Deterministic: the same [`Sdf`] value always produces the same bytes,
//! so exported files diff cleanly and content-address stably. Numbers are
//! printed with Rust's shortest-round-trip `f64` formatting, which makes
//! write → parse → write a byte-level fixpoint.

use crate::{Cell, Delay, Edge, Sdf};
use std::fmt::Write as _;

/// Renders an [`Sdf`] in the canonical text form.
pub fn write_sdf(sdf: &Sdf) -> String {
    let mut out = String::new();
    out.push_str("(DELAYFILE\n");
    let quoted: [(&str, &Option<String>); 6] = [
        ("SDFVERSION", &sdf.sdfversion),
        ("DESIGN", &sdf.design),
        ("DATE", &sdf.date),
        ("VENDOR", &sdf.vendor),
        ("PROGRAM", &sdf.program),
        ("VERSION", &sdf.version),
    ];
    for (kw, val) in quoted {
        if let Some(v) = val {
            let _ = writeln!(out, "  ({kw} \"{v}\")");
        }
    }
    if let Some(v) = &sdf.divider {
        let _ = writeln!(out, "  (DIVIDER {v})");
    }
    if let Some(v) = &sdf.timescale {
        if v.is_empty() {
            out.push_str("  (TIMESCALE)\n");
        } else {
            let _ = writeln!(out, "  (TIMESCALE {v})");
        }
    }
    for cell in &sdf.cells {
        write_cell(&mut out, cell);
    }
    out.push_str(")\n");
    out
}

fn write_cell(out: &mut String, cell: &Cell) {
    out.push_str("  (CELL\n");
    let _ = writeln!(out, "    (CELLTYPE \"{}\")", cell.celltype);
    if let Some(inst) = &cell.instance {
        if inst.is_empty() {
            out.push_str("    (INSTANCE)\n");
        } else {
            let _ = writeln!(out, "    (INSTANCE {inst})");
        }
    }
    if !cell.iopath.is_empty() {
        out.push_str("    (DELAY\n      (ABSOLUTE\n");
        for p in &cell.iopath {
            let _ = writeln!(
                out,
                "        (IOPATH {} {} {} {})",
                edge(&p.from),
                edge(&p.to),
                triple(&p.rise),
                triple(&p.fall)
            );
        }
        out.push_str("      )\n    )\n");
    }
    let has_checks = !cell.setuphold.is_empty()
        || !cell.recrem.is_empty()
        || !cell.period.is_empty()
        || !cell.width.is_empty();
    if has_checks {
        out.push_str("    (TIMINGCHECK\n");
        for c in &cell.setuphold {
            let _ = writeln!(
                out,
                "      (SETUPHOLD {} {} {} {})",
                edge(&c.edge_d),
                edge(&c.edge_c),
                opt_triple(c.setup.as_ref()),
                opt_triple(c.hold.as_ref())
            );
        }
        for c in &cell.recrem {
            let _ = writeln!(
                out,
                "      (RECREM {} {} {} {})",
                edge(&c.edge_r),
                edge(&c.edge_c),
                opt_triple(c.recovery.as_ref()),
                opt_triple(c.removal.as_ref())
            );
        }
        for c in &cell.period {
            let _ = writeln!(out, "      (PERIOD {} {})", edge(&c.edge), triple(&c.val));
        }
        for c in &cell.width {
            let _ = writeln!(out, "      (WIDTH {} {})", edge(&c.edge), triple(&c.val));
        }
        out.push_str("    )\n");
    }
    if let Some(hex) = &cell.sstm {
        let _ = writeln!(out, "    (SSTM \"{hex}\")");
    }
    out.push_str("  )\n");
}

fn edge(e: &Edge) -> String {
    match e {
        Edge::Plain(p) => p.clone(),
        Edge::Posedge(p) => format!("(posedge {p})"),
        Edge::Negedge(p) => format!("(negedge {p})"),
    }
}

fn triple(d: &Delay) -> String {
    format!("({}:{}:{})", d.min, d.typ, d.max)
}

fn opt_triple(d: Option<&Delay>) -> String {
    match d {
        Some(d) => triple(d),
        None => "()".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_sdf, IoPath, Period, RecRem, SetupHold, Width};

    fn sample() -> Sdf {
        Sdf {
            sdfversion: Some("3.0".into()),
            design: Some("pipe".into()),
            date: None,
            vendor: Some("hier-ssta".into()),
            program: None,
            version: None,
            divider: Some("/".into()),
            timescale: Some("1ps".into()),
            cells: vec![Cell {
                celltype: "rca4_s0".into(),
                instance: Some("s0".into()),
                iopath: vec![
                    IoPath {
                        from: Edge::Plain("i0".into()),
                        to: Edge::Plain("o0".into()),
                        rise: Delay {
                            min: 1.5,
                            typ: 2.0,
                            max: 2.5,
                        },
                        fall: Delay {
                            min: 1.5,
                            typ: 2.0,
                            max: 2.5,
                        },
                    },
                    IoPath {
                        from: Edge::Posedge("clk".into()),
                        to: Edge::Plain("o0".into()),
                        rise: Delay::flat(64.0),
                        fall: Delay::flat(64.0),
                    },
                ],
                setuphold: vec![SetupHold {
                    edge_d: Edge::Posedge("i0".into()),
                    edge_c: Edge::Posedge("clk".into()),
                    setup: Some(Delay {
                        min: 40.0,
                        typ: 42.0,
                        max: 44.0,
                    }),
                    hold: None,
                }],
                recrem: vec![RecRem {
                    edge_r: Edge::Posedge("rst".into()),
                    edge_c: Edge::Posedge("clk".into()),
                    recovery: Some(Delay::flat(6.0)),
                    removal: None,
                }],
                period: vec![Period {
                    edge: Edge::Posedge("clk".into()),
                    val: Delay {
                        min: 900.0,
                        typ: 1000.0,
                        max: 1100.0,
                    },
                }],
                width: vec![Width {
                    edge: Edge::Negedge("clk".into()),
                    val: Delay::flat(450.0),
                }],
                sstm: Some("0a0b".into()),
            }],
        }
    }

    #[test]
    fn write_parse_round_trips_structurally() {
        let sdf = sample();
        let text = write_sdf(&sdf);
        let back = parse_sdf(&text).unwrap();
        assert_eq!(back, sdf);
    }

    #[test]
    fn write_parse_write_is_a_fixpoint() {
        let text = write_sdf(&sample());
        let again = write_sdf(&parse_sdf(&text).unwrap());
        assert_eq!(text, again);
    }

    #[test]
    fn empty_sections_are_omitted() {
        let sdf = Sdf {
            design: Some("d".into()),
            cells: vec![Cell {
                celltype: "x".into(),
                ..Cell::default()
            }],
            ..Sdf::default()
        };
        let text = write_sdf(&sdf);
        assert!(!text.contains("ABSOLUTE"), "{text}");
        assert!(!text.contains("TIMINGCHECK"), "{text}");
        assert!(!text.contains("INSTANCE"), "{text}");
        assert!(!text.contains("SSTM"), "{text}");
        assert_eq!(parse_sdf(&text).unwrap(), sdf);
    }

    #[test]
    fn shortest_float_formatting_survives_round_trip() {
        let mut sdf = sample();
        sdf.cells[0].iopath[0].rise = Delay {
            min: 0.1,
            typ: 1.0 / 3.0,
            max: 1e-12,
        };
        sdf.cells[0].iopath[0].fall = sdf.cells[0].iopath[0].rise;
        let text = write_sdf(&sdf);
        assert_eq!(parse_sdf(&text).unwrap(), sdf);
        assert_eq!(write_sdf(&parse_sdf(&text).unwrap()), text);
    }
}
