//! Recursive-descent SDF parser.
//!
//! Parses the subset written by [`write`](crate::write): a `DELAYFILE`
//! with header records, and cells carrying `IOPATH` delays,
//! `SETUPHOLD`/`RECREM`/`PERIOD`/`WIDTH` timing checks and the `SSTM`
//! vendor extension. Section order inside a cell is free; duplicate
//! scalar sections, unknown keywords, malformed numbers and structural
//! defects are all rejected with the line/column of the offending token.

use crate::lex::{tokenize, Tok, Token};
use crate::{Cell, Delay, Edge, IoPath, Period, RecRem, Sdf, SdfError, SetupHold, Width};

/// Parses SDF text into an [`Sdf`].
///
/// # Errors
///
/// Returns a positioned [`SdfError`] on the first lexical or structural
/// defect.
pub fn parse_sdf(text: &str) -> Result<Sdf, SdfError> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let sdf = p.delayfile()?;
    if let Some(t) = p.peek() {
        return Err(SdfError::new(
            t.line,
            t.col,
            format!("unexpected {} after `(DELAYFILE …)`", t.kind.describe()),
        ));
    }
    Ok(sdf)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Position for "ran out of input" errors: just past the end of the
    /// last token (single-line tokens only, which this alphabet
    /// guarantees for everything but multi-line quoted strings).
    fn eof_error(&self, expected: &str) -> SdfError {
        let (line, col) = self
            .tokens
            .last()
            .map(|t| {
                let width = match &t.kind {
                    Tok::LParen | Tok::RParen => 1,
                    Tok::Atom(a) => a.chars().count(),
                    Tok::Quoted(s) => s.chars().count() + 2,
                };
                (t.line, t.col + width)
            })
            .unwrap_or((1, 1));
        SdfError::new(
            line,
            col,
            format!("expected {expected}, found end of input"),
        )
    }

    fn expect_lparen(&mut self, context: &str) -> Result<(), SdfError> {
        match self.next() {
            Some(Token {
                kind: Tok::LParen, ..
            }) => Ok(()),
            Some(t) => Err(SdfError::new(
                t.line,
                t.col,
                format!("expected `(` {context}, found {}", t.kind.describe()),
            )),
            None => Err(self.eof_error(&format!("`(` {context}"))),
        }
    }

    fn expect_rparen(&mut self, context: &str) -> Result<(), SdfError> {
        match self.next() {
            Some(Token {
                kind: Tok::RParen, ..
            }) => Ok(()),
            Some(t) => Err(SdfError::new(
                t.line,
                t.col,
                format!("expected `)` {context}, found {}", t.kind.describe()),
            )),
            None => Err(self.eof_error(&format!("`)` {context}"))),
        }
    }

    fn expect_atom(&mut self, context: &str) -> Result<(String, usize, usize), SdfError> {
        match self.next() {
            Some(Token {
                kind: Tok::Atom(a),
                line,
                col,
            }) => Ok((a, line, col)),
            Some(t) => Err(SdfError::new(
                t.line,
                t.col,
                format!("expected {context}, found {}", t.kind.describe()),
            )),
            None => Err(self.eof_error(context)),
        }
    }

    fn expect_quoted(&mut self, context: &str) -> Result<String, SdfError> {
        match self.next() {
            Some(Token {
                kind: Tok::Quoted(s),
                ..
            }) => Ok(s),
            Some(t) => Err(SdfError::new(
                t.line,
                t.col,
                format!("expected quoted {context}, found {}", t.kind.describe()),
            )),
            None => Err(self.eof_error(&format!("quoted {context}"))),
        }
    }

    /// `true` if the next token closes the current list.
    fn at_rparen(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token {
                kind: Tok::RParen,
                ..
            })
        )
    }

    fn delayfile(&mut self) -> Result<Sdf, SdfError> {
        self.expect_lparen("to open the delay file")?;
        let (kw, line, col) = self.expect_atom("`DELAYFILE`")?;
        if kw != "DELAYFILE" {
            return Err(SdfError::new(
                line,
                col,
                format!("expected `DELAYFILE`, found `{kw}`"),
            ));
        }
        let mut sdf = Sdf::default();
        while !self.at_rparen() {
            self.expect_lparen("to open a header record or cell")?;
            let (kw, line, col) = self.expect_atom("a header keyword or `CELL`")?;
            let dup = |field: &Option<String>| -> Result<(), SdfError> {
                if field.is_some() {
                    Err(SdfError::new(line, col, format!("duplicate `{kw}` record")))
                } else {
                    Ok(())
                }
            };
            match kw.as_str() {
                "SDFVERSION" => {
                    dup(&sdf.sdfversion)?;
                    sdf.sdfversion = Some(self.expect_quoted("SDF version")?);
                }
                "DESIGN" => {
                    dup(&sdf.design)?;
                    sdf.design = Some(self.expect_quoted("design name")?);
                }
                "DATE" => {
                    dup(&sdf.date)?;
                    sdf.date = Some(self.expect_quoted("date")?);
                }
                "VENDOR" => {
                    dup(&sdf.vendor)?;
                    sdf.vendor = Some(self.expect_quoted("vendor")?);
                }
                "PROGRAM" => {
                    dup(&sdf.program)?;
                    sdf.program = Some(self.expect_quoted("program")?);
                }
                "VERSION" => {
                    dup(&sdf.version)?;
                    sdf.version = Some(self.expect_quoted("version")?);
                }
                "DIVIDER" => {
                    dup(&sdf.divider)?;
                    sdf.divider = Some(self.expect_atom("divider character")?.0);
                }
                "TIMESCALE" => {
                    dup(&sdf.timescale)?;
                    sdf.timescale = Some(self.atoms_until_rparen()?);
                    continue; // `)` already consumed
                }
                "CELL" => {
                    sdf.cells.push(self.cell()?);
                    continue; // `)` already consumed
                }
                other => {
                    return Err(SdfError::new(
                        line,
                        col,
                        format!("unknown record `{other}` (expected a header record or `CELL`)"),
                    ));
                }
            }
            self.expect_rparen("to close the header record")?;
        }
        self.expect_rparen("to close `DELAYFILE`")?;
        Ok(sdf)
    }

    /// Joins the atoms up to (and consuming) the closing `)`.
    fn atoms_until_rparen(&mut self) -> Result<String, SdfError> {
        let mut parts = Vec::new();
        while !self.at_rparen() {
            parts.push(self.expect_atom("a value")?.0);
        }
        self.expect_rparen("to close the record")?;
        Ok(parts.join(" "))
    }

    /// Parses a cell body; the opening `(CELL` is already consumed, the
    /// closing `)` is consumed here.
    fn cell(&mut self) -> Result<Cell, SdfError> {
        let mut cell = Cell::default();
        let mut has_celltype = false;
        while !self.at_rparen() {
            self.expect_lparen("to open a cell section")?;
            let (kw, line, col) = self.expect_atom("a cell section keyword")?;
            match kw.as_str() {
                "CELLTYPE" => {
                    if has_celltype {
                        return Err(SdfError::new(line, col, "duplicate `CELLTYPE`"));
                    }
                    has_celltype = true;
                    cell.celltype = self.expect_quoted("cell type")?;
                    self.expect_rparen("to close `CELLTYPE`")?;
                }
                "INSTANCE" => {
                    if cell.instance.is_some() {
                        return Err(SdfError::new(line, col, "duplicate `INSTANCE`"));
                    }
                    cell.instance = Some(self.atoms_until_rparen()?);
                }
                "DELAY" => {
                    self.expect_lparen("to open `ABSOLUTE`")?;
                    let (kw, line, col) = self.expect_atom("`ABSOLUTE`")?;
                    if kw != "ABSOLUTE" {
                        return Err(SdfError::new(
                            line,
                            col,
                            format!("expected `ABSOLUTE`, found `{kw}` (INCREMENT unsupported)"),
                        ));
                    }
                    while !self.at_rparen() {
                        cell.iopath.push(self.iopath()?);
                    }
                    self.expect_rparen("to close `ABSOLUTE`")?;
                    self.expect_rparen("to close `DELAY`")?;
                }
                "TIMINGCHECK" => {
                    while !self.at_rparen() {
                        self.timing_check(&mut cell)?;
                    }
                    self.expect_rparen("to close `TIMINGCHECK`")?;
                }
                "SSTM" => {
                    if cell.sstm.is_some() {
                        return Err(SdfError::new(line, col, "duplicate `SSTM`"));
                    }
                    cell.sstm = Some(self.expect_quoted("SSTM payload")?);
                    self.expect_rparen("to close `SSTM`")?;
                }
                other => {
                    return Err(SdfError::new(
                        line,
                        col,
                        format!("unknown cell section `{other}`"),
                    ));
                }
            }
        }
        self.expect_rparen("to close `CELL`")?;
        if !has_celltype {
            let (line, col) = self
                .tokens
                .get(self.pos - 1)
                .map(|t| (t.line, t.col))
                .unwrap_or((1, 1));
            return Err(SdfError::new(line, col, "cell is missing `CELLTYPE`"));
        }
        Ok(cell)
    }

    fn iopath(&mut self) -> Result<IoPath, SdfError> {
        self.expect_lparen("to open `IOPATH`")?;
        let (kw, line, col) = self.expect_atom("`IOPATH`")?;
        if kw != "IOPATH" {
            return Err(SdfError::new(
                line,
                col,
                format!("expected `IOPATH`, found `{kw}`"),
            ));
        }
        let from = self.edge()?;
        let to = self.edge()?;
        let rise = self.triple()?;
        let fall = self.triple()?;
        self.expect_rparen("to close `IOPATH`")?;
        Ok(IoPath {
            from,
            to,
            rise,
            fall,
        })
    }

    fn timing_check(&mut self, cell: &mut Cell) -> Result<(), SdfError> {
        self.expect_lparen("to open a timing check")?;
        let (kw, line, col) = self.expect_atom("a timing-check keyword")?;
        match kw.as_str() {
            "SETUPHOLD" => {
                let edge_d = self.edge()?;
                let edge_c = self.edge()?;
                let setup = self.optional_triple()?;
                let hold = self.optional_triple()?;
                cell.setuphold.push(SetupHold {
                    edge_d,
                    edge_c,
                    setup,
                    hold,
                });
            }
            "RECREM" => {
                let edge_r = self.edge()?;
                let edge_c = self.edge()?;
                let recovery = self.optional_triple()?;
                let removal = self.optional_triple()?;
                cell.recrem.push(RecRem {
                    edge_r,
                    edge_c,
                    recovery,
                    removal,
                });
            }
            "PERIOD" => {
                let edge = self.edge()?;
                let val = self.triple()?;
                cell.period.push(Period { edge, val });
            }
            "WIDTH" => {
                let edge = self.edge()?;
                let val = self.triple()?;
                cell.width.push(Width { edge, val });
            }
            other => {
                return Err(SdfError::new(
                    line,
                    col,
                    format!("unknown timing check `{other}`"),
                ));
            }
        }
        self.expect_rparen("to close the timing check")?;
        Ok(())
    }

    fn edge(&mut self) -> Result<Edge, SdfError> {
        match self.next() {
            Some(Token {
                kind: Tok::Atom(port),
                ..
            }) => Ok(Edge::Plain(port)),
            Some(Token {
                kind: Tok::LParen, ..
            }) => {
                let (kw, line, col) = self.expect_atom("`posedge` or `negedge`")?;
                let port = self.expect_atom("a port name")?.0;
                let edge = match kw.as_str() {
                    "posedge" => Edge::Posedge(port),
                    "negedge" => Edge::Negedge(port),
                    other => {
                        return Err(SdfError::new(
                            line,
                            col,
                            format!("expected `posedge` or `negedge`, found `{other}`"),
                        ));
                    }
                };
                self.expect_rparen("to close the edge")?;
                Ok(edge)
            }
            Some(t) => Err(SdfError::new(
                t.line,
                t.col,
                format!("expected a port reference, found {}", t.kind.describe()),
            )),
            None => Err(self.eof_error("a port reference")),
        }
    }

    fn triple(&mut self) -> Result<Delay, SdfError> {
        self.optional_triple()?.ok_or_else(|| {
            let (line, col) = self
                .tokens
                .get(self.pos.saturating_sub(1))
                .map(|t| (t.line, t.col))
                .unwrap_or((1, 1));
            SdfError::new(line, col, "this delay triple may not be empty")
        })
    }

    /// Parses `(min:typ:max)` into a triple, or `()` into `None`.
    fn optional_triple(&mut self) -> Result<Option<Delay>, SdfError> {
        self.expect_lparen("to open a delay triple")?;
        if self.at_rparen() {
            self.expect_rparen("to close the empty value")?;
            return Ok(None);
        }
        let (atom, line, col) = self.expect_atom("a `min:typ:max` triple")?;
        let parts: Vec<&str> = atom.split(':').collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            return Err(SdfError::new(
                line,
                col,
                format!("malformed triple `{atom}` (expected `min:typ:max`)"),
            ));
        }
        let num = |s: &str| -> Result<f64, SdfError> {
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| SdfError::new(line, col, format!("`{s}` is not a finite number")))
        };
        let delay = Delay {
            min: num(parts[0])?,
            typ: num(parts[1])?,
            max: num(parts[2])?,
        };
        self.expect_rparen("to close the delay triple")?;
        Ok(Some(delay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"(DELAYFILE
  (SDFVERSION "3.0")
  (DESIGN "pipe")
  (TIMESCALE 1ps)
  (CELL
    (CELLTYPE "rca4_s0")
    (INSTANCE s0)
    (DELAY
      (ABSOLUTE
        (IOPATH i0 o0 (1.5:2:2.5) (1.5:2:2.5))
        (IOPATH (posedge clk) o0 (60:64:68) (60:64:68))
      )
    )
    (TIMINGCHECK
      (SETUPHOLD (posedge i0) (posedge clk) (40:42:44) (22:24:26))
      (RECREM (posedge rst) (posedge clk) (5:6:7) ())
      (PERIOD (posedge clk) (900:1000:1100))
      (WIDTH (negedge clk) (400:450:500))
    )
    (SSTM "0a0b")
  )
)"#;

    #[test]
    fn parses_the_full_subset() {
        let sdf = parse_sdf(SMALL).unwrap();
        assert_eq!(sdf.design.as_deref(), Some("pipe"));
        assert_eq!(sdf.timescale.as_deref(), Some("1ps"));
        assert_eq!(sdf.cells.len(), 1);
        let cell = &sdf.cells[0];
        assert_eq!(cell.celltype, "rca4_s0");
        assert_eq!(cell.instance.as_deref(), Some("s0"));
        assert_eq!(cell.iopath.len(), 2);
        assert_eq!(cell.iopath[0].from, Edge::Plain("i0".into()));
        assert_eq!(cell.iopath[1].from, Edge::Posedge("clk".into()));
        assert_eq!(cell.iopath[0].rise.typ, 2.0);
        assert_eq!(cell.setuphold.len(), 1);
        assert_eq!(cell.setuphold[0].hold.unwrap().max, 26.0);
        assert_eq!(cell.recrem[0].removal, None);
        assert_eq!(cell.period[0].val.typ, 1000.0);
        assert_eq!(cell.width[0].edge, Edge::Negedge("clk".into()));
        assert_eq!(cell.sstm.as_deref(), Some("0a0b"));
    }

    #[test]
    fn rejects_unknown_record_with_position() {
        let err = parse_sdf("(DELAYFILE\n  (FREQUENCY \"10\")\n)").unwrap_err();
        assert_eq!((err.line, err.col), (2, 4));
        assert!(err.message.contains("FREQUENCY"), "{}", err.message);
    }

    #[test]
    fn rejects_malformed_triple_with_position() {
        let text =
            "(DELAYFILE (CELL (CELLTYPE \"x\")\n (DELAY (ABSOLUTE (IOPATH a y (1:2) (1:2:3))))))";
        let err = parse_sdf(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("1:2"), "{}", err.message);
    }

    #[test]
    fn rejects_non_numeric_delay() {
        let text = "(DELAYFILE (CELL (CELLTYPE \"x\")\n (DELAY (ABSOLUTE (IOPATH a y (1:fast:3) (1:2:3))))))";
        let err = parse_sdf(text).unwrap_err();
        assert!(err.message.contains("fast"), "{}", err.message);
    }

    #[test]
    fn rejects_missing_celltype() {
        let err = parse_sdf("(DELAYFILE (CELL (INSTANCE top)))").unwrap_err();
        assert!(err.message.contains("CELLTYPE"), "{}", err.message);
    }

    #[test]
    fn rejects_duplicate_headers() {
        let err = parse_sdf("(DELAYFILE (DESIGN \"a\") (DESIGN \"b\"))").unwrap_err();
        assert!(err.message.contains("duplicate"), "{}", err.message);
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = parse_sdf("(DELAYFILE) extra").unwrap_err();
        assert!(err.message.contains("unexpected"), "{}", err.message);
        assert_eq!((err.line, err.col), (1, 13));
    }

    #[test]
    fn rejects_truncated_input() {
        let err = parse_sdf("(DELAYFILE (CELL (CELLTYPE \"x\")").unwrap_err();
        assert!(err.message.contains("end of input"), "{}", err.message);
    }

    #[test]
    fn empty_setup_value_parses_as_none() {
        let text = "(DELAYFILE (CELL (CELLTYPE \"x\") (TIMINGCHECK (SETUPHOLD d (posedge c) () (1:2:3)))))";
        let sdf = parse_sdf(text).unwrap();
        let sh = &sdf.cells[0].setuphold[0];
        assert_eq!(sh.setup, None);
        assert_eq!(sh.hold.unwrap().typ, 2.0);
    }
}
