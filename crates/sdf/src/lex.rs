//! The SDF tokenizer.
//!
//! SDF is a parenthesized s-expression-like format, so the token alphabet
//! is tiny: parentheses, double-quoted strings, and bare *atoms* (any
//! maximal run of other non-whitespace characters — keywords, port
//! names, numbers and `min:typ:max` triples all lex as atoms; the parser
//! gives them meaning). Every token carries the 1-based line/column where
//! it starts so parse errors point at sources, not offsets.

use crate::SdfError;

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub kind: Tok,
    pub line: usize,
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    LParen,
    RParen,
    /// A bare word: keyword, identifier, number or `a:b:c` triple.
    Atom(String),
    /// A double-quoted string, quotes stripped (no escape sequences).
    Quoted(String),
}

impl Tok {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Atom(a) => format!("`{a}`"),
            Tok::Quoted(s) => format!("\"{s}\""),
        }
    }
}

/// Tokenizes SDF text.
///
/// # Errors
///
/// Returns a positioned [`SdfError`] for an unterminated string — the
/// only lexical defect possible in this alphabet.
pub(crate) fn tokenize(text: &str) -> Result<Vec<Token>, SdfError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        let (at_line, at_col) = (line, col);
        advance(&mut line, &mut col, c);
        match c {
            '(' => tokens.push(Token {
                kind: Tok::LParen,
                line: at_line,
                col: at_col,
            }),
            ')' => tokens.push(Token {
                kind: Tok::RParen,
                line: at_line,
                col: at_col,
            }),
            '"' => {
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => {
                            advance(&mut line, &mut col, '"');
                            break;
                        }
                        Some(c) => {
                            advance(&mut line, &mut col, c);
                            s.push(c);
                        }
                        None => {
                            return Err(SdfError::new(at_line, at_col, "unterminated string"));
                        }
                    }
                }
                tokens.push(Token {
                    kind: Tok::Quoted(s),
                    line: at_line,
                    col: at_col,
                });
            }
            c if c.is_whitespace() => {}
            c => {
                let mut atom = String::new();
                atom.push(c);
                while let Some(&next) = chars.peek() {
                    if next == '(' || next == ')' || next == '"' || next.is_whitespace() {
                        break;
                    }
                    atom.push(next);
                    advance(&mut line, &mut col, next);
                    chars.next();
                }
                tokens.push(Token {
                    kind: Tok::Atom(atom),
                    line: at_line,
                    col: at_col,
                });
            }
        }
    }
    Ok(tokens)
}

fn advance(line: &mut usize, col: &mut usize, c: char) {
    if c == '\n' {
        *line += 1;
        *col = 1;
    } else {
        *col += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_with_positions() {
        let toks = tokenize("(CELL\n  (CELLTYPE \"c432\"))").unwrap();
        assert_eq!(toks.len(), 7);
        assert_eq!(toks[0].kind, Tok::LParen);
        assert_eq!(toks[1].kind, Tok::Atom("CELL".into()));
        assert_eq!((toks[1].line, toks[1].col), (1, 2));
        assert_eq!(toks[2].kind, Tok::LParen);
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
        assert_eq!(toks[4].kind, Tok::Quoted("c432".into()));
        assert_eq!((toks[4].line, toks[4].col), (2, 13));
    }

    #[test]
    fn triples_lex_as_one_atom() {
        let toks = tokenize("(1.5:2:2.5)").unwrap();
        assert_eq!(toks[1].kind, Tok::Atom("1.5:2:2.5".into()));
    }

    #[test]
    fn unterminated_string_is_positioned() {
        let err = tokenize("(DESIGN \"oops").unwrap_err();
        assert_eq!((err.line, err.col), (1, 9));
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn atoms_stop_at_structure() {
        let toks = tokenize("a(b)c\"d\"").unwrap();
        let kinds: Vec<_> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Atom("a".into()),
                Tok::LParen,
                Tok::Atom("b".into()),
                Tok::RParen,
                Tok::Atom("c".into()),
                Tok::Quoted("d".into()),
            ]
        );
    }
}
