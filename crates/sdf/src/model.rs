//! Mapping between statistical [`TimingModel`]s and SDF cells.
//!
//! **Export** flattens every Gaussian quantity to SDF's min/typ/max
//! triple as `μ−kσ : μ : μ+kσ` (`k` = [`ExportOptions::sigmas`]): the
//! delay matrix becomes `IOPATH` records, a sequential interface becomes
//! clock-edge `IOPATH` launch arcs plus `SETUPHOLD` checks. Because that
//! projection is lossy (correlation structure and spatial layout don't
//! survive three corners), the exporter also embeds the model's full
//! binary codec stream in an `(SSTM "…")` vendor extension.
//!
//! **Import** prefers the `SSTM` payload — decoding it reconstructs the
//! model *bit-identically*, so export → import → analyze matches the
//! original analysis exactly. Foreign SDF without the extension still
//! imports: each cell becomes an interface-only approximate model whose
//! arc means come from the `typ` corner and whose variability is folded
//! into the independent random term as `(max − typ) / k`. Approximate
//! models carry no spatial information (a 1×1 grid, no PCA basis), so
//! analyze them in [`CorrelationMode::GlobalOnly`].
//!
//! [`CorrelationMode::GlobalOnly`]: ssta_core::CorrelationMode
//!
//! Port naming is positional: input `k` is `i{k}`, output `j` is `o{j}`.
//! The importer does not depend on those names — it indexes ports by
//! first appearance, so foreign SDF with arbitrary port names maps onto
//! model ports in file order.

use crate::{from_hex, to_hex, Cell, Delay, Edge, IoPath, Sdf, SetupHold};
use ssta_core::codec::{decode_model, encode_model};
use ssta_core::GridGeometry;
use ssta_core::{
    CanonicalForm, ConstraintArc, CoreError, ExtractionStats, SequentialModel, SstaConfig,
    TimingModel, VariableLayout,
};
use ssta_netlist::DieRect;
use ssta_timing::TimingGraph;
use std::collections::HashMap;

/// The vendor-extension keyword carrying the hex-encoded binary model
/// payload inside a cell.
pub const SSTM_KEYWORD: &str = "SSTM";

/// Controls how statistical quantities are projected onto SDF corners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExportOptions {
    /// Corner width in standard deviations: `min/max = μ ∓ sigmas·σ`.
    /// Also the factor the approximate importer divides by to recover a
    /// random σ from `max − typ`.
    pub sigmas: f64,
    /// Embed the full binary model as an `(SSTM "…")` extension so a
    /// hier-ssta importer round-trips bit-identically. Disable to emit
    /// plain tool-neutral SDF.
    pub embed_sstm: bool,
}

impl Default for ExportOptions {
    fn default() -> Self {
        ExportOptions {
            sigmas: 3.0,
            embed_sstm: true,
        }
    }
}

fn corner_triple(form: &CanonicalForm, sigmas: f64) -> Delay {
    let mu = form.mean();
    let spread = sigmas * form.std_dev();
    Delay {
        min: mu - spread,
        typ: mu,
        max: mu + spread,
    }
}

/// Renders one model as an SDF cell.
///
/// # Errors
///
/// Propagates [`CoreError`] from the model's delay-matrix computation.
pub fn model_to_cell(model: &TimingModel, options: &ExportOptions) -> Result<Cell, CoreError> {
    let matrix = model.delay_matrix()?;
    let mut cell = Cell {
        celltype: model.name().to_string(),
        ..Cell::default()
    };
    for i in 0..matrix.n_inputs() {
        for j in 0..matrix.n_outputs() {
            if let Some(form) = matrix.get(i, j) {
                let d = corner_triple(form, options.sigmas);
                cell.iopath.push(IoPath {
                    from: Edge::Plain(format!("i{i}")),
                    to: Edge::Plain(format!("o{j}")),
                    rise: d,
                    fall: d,
                });
            }
        }
    }
    if let Some(seq) = model.sequential() {
        for arc in &seq.launch {
            let d = corner_triple(&arc.form, options.sigmas);
            cell.iopath.push(IoPath {
                from: Edge::Posedge(seq.clock_pin.clone()),
                to: Edge::Plain(format!("o{}", arc.port)),
                rise: d,
                fall: d,
            });
        }
        for port in 0..model.n_inputs() {
            let setup = seq.setup_of(port);
            let hold = seq.hold_of(port);
            if setup.is_none() && hold.is_none() {
                continue;
            }
            cell.setuphold.push(SetupHold {
                edge_d: Edge::Posedge(format!("i{port}")),
                edge_c: Edge::Posedge(seq.clock_pin.clone()),
                setup: setup.map(|f| corner_triple(f, options.sigmas)),
                hold: hold.map(|f| corner_triple(f, options.sigmas)),
            });
        }
    }
    if options.embed_sstm {
        cell.sstm = Some(to_hex(&encode_model(model)));
    }
    Ok(cell)
}

/// Renders a set of models as one SDF file with a deterministic header.
///
/// # Errors
///
/// Propagates the first [`model_to_cell`] failure.
pub fn export_models<'a>(
    models: impl IntoIterator<Item = &'a TimingModel>,
    options: &ExportOptions,
) -> Result<Sdf, CoreError> {
    let mut sdf = Sdf {
        sdfversion: Some("3.0".to_string()),
        vendor: Some("hier-ssta".to_string()),
        program: Some("hier-ssta".to_string()),
        divider: Some("/".to_string()),
        timescale: Some("1ps".to_string()),
        ..Sdf::default()
    };
    for model in models {
        sdf.cells.push(model_to_cell(model, options)?);
    }
    Ok(sdf)
}

/// Imports every cell of an SDF file as a [`TimingModel`].
///
/// # Errors
///
/// Propagates the first [`import_cell`] failure.
pub fn import_sdf_models(
    sdf: &Sdf,
    config: &SstaConfig,
    sigmas: f64,
) -> Result<Vec<TimingModel>, CoreError> {
    sdf.cells
        .iter()
        .map(|cell| import_cell(cell, config, sigmas))
        .collect()
}

/// Imports one SDF cell as a [`TimingModel`].
///
/// If the cell carries an `SSTM` payload the binary model is decoded
/// directly — the result is bit-identical to the exported model. Without
/// it, an interface-only approximate model is synthesized from the
/// corner triples (see the module docs for the projection and its
/// limits).
///
/// # Errors
///
/// Returns [`CoreError::Codec`] for a corrupt `SSTM` payload or a
/// payload naming a different cell type, and [`CoreError::Incompatible`]
/// for cells that cannot form a well-shaped model (no ports, conflicting
/// clock pins, non-positive corner ordering).
pub fn import_cell(
    cell: &Cell,
    config: &SstaConfig,
    sigmas: f64,
) -> Result<TimingModel, CoreError> {
    if let Some(hex) = &cell.sstm {
        let bytes = from_hex(hex).map_err(|offset| CoreError::Codec {
            reason: format!(
                "cell `{}`: SSTM payload is not valid hex (defect at character {offset})",
                cell.celltype
            ),
        })?;
        let model = decode_model(&bytes)?;
        if model.name() != cell.celltype {
            return Err(CoreError::Codec {
                reason: format!(
                    "cell `{}`: SSTM payload names model `{}`",
                    cell.celltype,
                    model.name()
                ),
            });
        }
        return Ok(model);
    }
    approximate_model(cell, config, sigmas)
}

/// Builds an interface-only model from the cell's corner triples.
fn approximate_model(
    cell: &Cell,
    config: &SstaConfig,
    sigmas: f64,
) -> Result<TimingModel, CoreError> {
    if !(sigmas.is_finite() && sigmas > 0.0) {
        return Err(CoreError::Config {
            reason: format!("corner width must be a positive finite sigma count, got {sigmas}"),
        });
    }
    let bad = |reason: String| CoreError::Incompatible {
        reason: format!("cell `{}`: {reason}", cell.celltype),
    };

    // Index ports by first appearance. Plain IOPATH sources and
    // SETUPHOLD data pins are inputs; IOPATH destinations are outputs;
    // clock-edge IOPATH sources and SETUPHOLD clock pins must all agree
    // on one clock.
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut input_of: HashMap<String, usize> = HashMap::new();
    let mut output_of: HashMap<String, usize> = HashMap::new();
    let mut clock: Option<String> = None;
    let intern =
        |names: &mut Vec<String>, index: &mut HashMap<String, usize>, port: &str| -> usize {
            *index.entry(port.to_string()).or_insert_with(|| {
                names.push(port.to_string());
                names.len() - 1
            })
        };
    let claim_clock = |clock: &mut Option<String>, port: &str| -> Result<(), CoreError> {
        match clock {
            Some(c) if c != port => Err(bad(format!("conflicting clock pins `{c}` and `{port}`"))),
            Some(_) => Ok(()),
            None => {
                *clock = Some(port.to_string());
                Ok(())
            }
        }
    };

    // First pass: establish port indices and the clock pin.
    for p in &cell.iopath {
        if p.from.is_clocked() {
            claim_clock(&mut clock, p.from.port())?;
        } else {
            intern(&mut inputs, &mut input_of, p.from.port());
        }
        intern(&mut outputs, &mut output_of, p.to.port());
    }
    for sh in &cell.setuphold {
        intern(&mut inputs, &mut input_of, sh.edge_d.port());
        claim_clock(&mut clock, sh.edge_c.port())?;
    }
    if inputs.is_empty() || outputs.is_empty() {
        return Err(bad(format!(
            "cannot synthesize a model from {} input and {} output ports",
            inputs.len(),
            outputs.len()
        )));
    }

    let n_globals = config.parameters.len();
    let form = |d: &Delay, what: &str| -> Result<CanonicalForm, CoreError> {
        let sigma = (d.max - d.typ) / sigmas;
        if sigma < 0.0 {
            return Err(bad(format!(
                "{what} triple has max {} below typ {}",
                d.max, d.typ
            )));
        }
        CanonicalForm::from_parts(d.typ, vec![0.0; n_globals], Vec::new(), sigma)
    };

    let mut graph: TimingGraph<CanonicalForm> = TimingGraph::new();
    let input_vertices: Vec<_> = inputs.iter().map(|_| graph.add_input()).collect();
    let output_vertices: Vec<_> = outputs
        .iter()
        .map(|_| {
            let v = graph.add_vertex();
            graph.mark_output(v);
            v
        })
        .collect();
    let mut launch: Vec<ConstraintArc> = Vec::new();
    for p in &cell.iopath {
        let to = output_vertices[output_of[p.to.port()]];
        if p.from.is_clocked() {
            launch.push(ConstraintArc {
                port: output_of[p.to.port()] as u32,
                form: form(&p.rise, "launch")?,
            });
        } else {
            let from = input_vertices[input_of[p.from.port()]];
            graph.add_edge(from, to, form(&p.rise, "IOPATH")?);
        }
    }
    let mut setup: Vec<ConstraintArc> = Vec::new();
    let mut hold: Vec<ConstraintArc> = Vec::new();
    for sh in &cell.setuphold {
        let port = input_of[sh.edge_d.port()] as u32;
        if let Some(d) = &sh.setup {
            setup.push(ConstraintArc {
                port,
                form: form(d, "setup")?,
            });
        }
        if let Some(d) = &sh.hold {
            hold.push(ConstraintArc {
                port,
                form: form(d, "hold")?,
            });
        }
    }
    let sort_arcs = |arcs: &mut Vec<ConstraintArc>| arcs.sort_by_key(|a| a.port);
    sort_arcs(&mut launch);
    sort_arcs(&mut setup);
    sort_arcs(&mut hold);
    let sequential = clock.map(|clock_pin| SequentialModel {
        clock_pin,
        launch,
        setup,
        hold,
    });

    let stats = ExtractionStats {
        original_edges: graph.n_edges(),
        original_vertices: graph.n_vertices(),
        edges_pruned: 0,
        restored_paths: 0,
        repaired_pairs: 0,
        merge_rounds: 0,
        serial_merges: 0,
        parallel_merges: 0,
        model_edges: graph.n_edges(),
        model_vertices: graph.n_vertices(),
        extraction_seconds: 0.0,
    };
    // Approximate models have no spatial footprint: one grid the size of
    // the correlation pitch, zero local variables, no PCA basis.
    let pitch = config.grid_pitch_um();
    let geometry = GridGeometry::from_die(
        DieRect {
            width: pitch,
            height: pitch,
        },
        pitch,
    );
    TimingModel::assemble(
        cell.celltype.clone(),
        graph,
        geometry,
        VariableLayout::new(&vec![0; n_globals]),
        Vec::new(),
        config.clone(),
        stats,
        sequential,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_sdf, write_sdf};
    use ssta_core::{extract_registered, ExtractOptions, ModuleContext};
    use ssta_netlist::generators;

    fn registered_model() -> TimingModel {
        let stages = generators::registered_pipeline(&["rca4"], "DFF").expect("generator");
        let ctx = ModuleContext::characterize(stages[0].core().clone(), &SstaConfig::paper())
            .expect("context");
        extract_registered(&ctx, stages[0].register(), &ExtractOptions::default()).expect("extract")
    }

    #[test]
    fn export_embeds_interface_and_payload() {
        let model = registered_model();
        let cell = model_to_cell(&model, &ExportOptions::default()).expect("cell");
        assert_eq!(cell.celltype, model.name());
        assert!(cell.sstm.is_some());
        assert!(!cell.setuphold.is_empty());
        assert!(
            cell.iopath.iter().any(|p| p.from.is_clocked()),
            "launch arcs should be clock-edge IOPATHs"
        );
        // Corners bracket the mean symmetrically.
        for p in &cell.iopath {
            assert!(p.rise.min <= p.rise.typ && p.rise.typ <= p.rise.max);
        }
    }

    #[test]
    fn sstm_import_is_bit_identical() {
        let model = registered_model();
        let sdf = export_models([&model], &ExportOptions::default()).expect("export");
        let text = write_sdf(&sdf);
        let back = parse_sdf(&text).expect("parse");
        let imported = import_sdf_models(&back, model.config(), 3.0).expect("import");
        assert_eq!(imported.len(), 1);
        assert_eq!(encode_model(&imported[0]), encode_model(&model));
    }

    #[test]
    fn approximate_import_preserves_interface_shape() {
        let model = registered_model();
        let opts = ExportOptions {
            embed_sstm: false,
            ..ExportOptions::default()
        };
        let sdf = export_models([&model], &opts).expect("export");
        let approx = import_cell(&sdf.cells[0], model.config(), opts.sigmas).expect("import");
        assert_eq!(approx.n_inputs(), model.n_inputs());
        assert_eq!(approx.n_outputs(), model.n_outputs());
        let seq = approx.sequential().expect("sequential interface");
        let orig = model.sequential().expect("sequential interface");
        assert_eq!(seq.clock_pin, orig.clock_pin);
        assert_eq!(seq.launch.len(), orig.launch.len());
        // Means survive the corner projection exactly; σ within the
        // lossy-projection ballpark (local/global structure is folded
        // into one random term).
        for (a, b) in seq.setup.iter().zip(&orig.setup) {
            assert_eq!(a.port, b.port);
            assert!((a.form.mean() - b.form.mean()).abs() < 1e-9);
            assert!((a.form.std_dev() - b.form.std_dev()).abs() < 1e-9);
        }
    }

    #[test]
    fn corrupt_sstm_is_rejected_with_cell_name() {
        let cell = Cell {
            celltype: "c432".into(),
            sstm: Some("zz".into()),
            ..Cell::default()
        };
        let err = import_cell(&cell, &SstaConfig::paper(), 3.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("c432"), "{msg}");
        assert!(msg.contains("hex"), "{msg}");
    }

    #[test]
    fn conflicting_clocks_are_rejected() {
        let cell = Cell {
            celltype: "x".into(),
            iopath: vec![
                IoPath {
                    from: Edge::Posedge("clkA".into()),
                    to: Edge::Plain("o0".into()),
                    rise: Delay::flat(10.0),
                    fall: Delay::flat(10.0),
                },
                IoPath {
                    from: Edge::Plain("i0".into()),
                    to: Edge::Plain("o0".into()),
                    rise: Delay::flat(5.0),
                    fall: Delay::flat(5.0),
                },
            ],
            setuphold: vec![SetupHold {
                edge_d: Edge::Posedge("i0".into()),
                edge_c: Edge::Posedge("clkB".into()),
                setup: Some(Delay::flat(3.0)),
                hold: None,
            }],
            ..Cell::default()
        };
        let err = import_cell(&cell, &SstaConfig::paper(), 3.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("clkA") && msg.contains("clkB"), "{msg}");
    }

    #[test]
    fn portless_cells_are_rejected() {
        let cell = Cell {
            celltype: "empty".into(),
            ..Cell::default()
        };
        let err = import_cell(&cell, &SstaConfig::paper(), 3.0).unwrap_err();
        assert!(err.to_string().contains("ports"), "{}", err.to_string());
    }
}
