//! Flattened-design Monte Carlo (the Fig. 7 ground truth).
//!
//! The hierarchical analysis works on extracted timing models; its ground
//! truth must not. This module flattens the design back to the original
//! module netlists (every instance must carry its `ModuleContext`),
//! places every gate at its absolute die position, assigns it the design
//! grid from the same heterogeneous partition the analysis uses, and
//! samples:
//!
//! * one global value per process parameter (shared by all instances),
//! * one value per design grid per parameter, drawn with the design-level
//!   covariance (via the design PCA transform), so abutting modules see
//!   physically correlated local variation,
//! * one private random value per timing arc.
//!
//! Each sample is a scalar longest-path evaluation of the whole flattened
//! design; the result is the empirical design-delay distribution.

use crate::{chunk_sizes, McOptions};
use ssta_core::hier::DesignVariables;
use ssta_core::{CoreError, Design};
use ssta_math::rng::{seeded_rng, NormalSampler};
use ssta_math::EmpiricalDist;
use ssta_netlist::Signal;

/// One flattened timing arc.
struct FlatEdge {
    from: u32,
    to: u32,
    nominal: f64,
    /// Per-parameter 1σ delay response `d0·sens·σ_rel`.
    bases: Vec<f64>,
    /// Design grid index of the receiving cell.
    grid: u32,
    /// Collapsed per-edge random coefficient (matches the canonical form).
    random: f64,
}

/// The flattened design ready for sampling.
struct FlatDesign {
    n_vertices: usize,
    edges: Vec<FlatEdge>,
    start_vertices: Vec<u32>,
    po_vertices: Vec<u32>,
    n_params: usize,
    n_grids: usize,
    shares: (f64, f64, f64),
}

/// Estimates the flattened design-delay distribution by Monte Carlo.
///
/// # Errors
///
/// * [`CoreError::Config`] if an instance lacks its original
///   `ModuleContext` (black-box models cannot be flattened);
/// * propagated partition/PCA/graph errors.
pub fn flat_design_delay(design: &Design, options: &McOptions) -> Result<EmpiricalDist, CoreError> {
    let vars = DesignVariables::build(design)?;
    let flat = flatten(design, &vars)?;
    // Per-parameter design grid transform (shared basis).
    let transforms: Vec<&ssta_math::Matrix> = vars.pca().iter().map(|b| b.transform()).collect();
    let n_components: Vec<usize> = transforms.iter().map(|t| t.cols()).collect();

    let threads = options.resolve_threads();
    let sizes = chunk_sizes(options.samples, threads);

    let samples = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (chunk_idx, &n_samples) in sizes.iter().enumerate() {
            let flat = &flat;
            let transforms = &transforms;
            let n_components = &n_components;
            handles.push(s.spawn(move |_| {
                let mut rng = seeded_rng(options.seed ^ (chunk_idx as u64).wrapping_mul(0x51_7cc1));
                let mut normal = NormalSampler::new();
                let mut out = Vec::with_capacity(n_samples);
                let mut g = vec![0.0; flat.n_params];
                let mut grid_vals = vec![vec![0.0; flat.n_grids]; flat.n_params];
                let mut z: Vec<f64> = Vec::new();
                let mut arrival = vec![f64::NEG_INFINITY; flat.n_vertices];
                let (wg, wl, _wr) = flat.shares;
                let (sg, sl) = (wg.sqrt(), wl.sqrt());
                for _ in 0..n_samples {
                    normal.fill(&mut rng, &mut g);
                    for p in 0..flat.n_params {
                        z.resize(n_components[p], 0.0);
                        normal.fill(&mut rng, &mut z);
                        grid_vals[p] = transforms[p]
                            .mat_vec(&z)
                            .expect("dimension fixed at build time");
                    }
                    arrival.fill(f64::NEG_INFINITY);
                    for &v in &flat.start_vertices {
                        arrival[v as usize] = 0.0;
                    }
                    // Edges are stored in a topologically valid order, so a
                    // single linear sweep implements the longest path. The
                    // per-edge random draw happens unconditionally to keep
                    // the RNG stream independent of reachability.
                    for e in &flat.edges {
                        let r = if e.random > 0.0 {
                            normal.sample(&mut rng)
                        } else {
                            0.0
                        };
                        let av = arrival[e.from as usize];
                        if av == f64::NEG_INFINITY {
                            continue;
                        }
                        // e.random already carries the √share factor.
                        let mut d = e.nominal + e.random * r;
                        for (p, &base) in e.bases.iter().enumerate() {
                            d += base * (sg * g[p] + sl * grid_vals[p][e.grid as usize]);
                        }
                        let cand = av + d;
                        let slot = &mut arrival[e.to as usize];
                        if cand > *slot {
                            *slot = cand;
                        }
                    }
                    let delay = flat
                        .po_vertices
                        .iter()
                        .map(|&v| arrival[v as usize])
                        .fold(f64::NEG_INFINITY, f64::max);
                    out.push(delay);
                }
                out
            }));
        }
        let mut all = Vec::with_capacity(options.samples);
        for h in handles {
            all.extend(h.join().expect("MC worker panicked"));
        }
        all
    })
    .expect("MC scope panicked");

    if samples.iter().any(|d| !d.is_finite()) {
        return Err(CoreError::Timing(ssta_timing::TimingError::NoPath));
    }
    Ok(EmpiricalDist::from_samples(samples))
}

/// Flattens every instance netlist into one scalar evaluation structure.
/// Edges are emitted in topological order: instance-internal edges follow
/// the netlist topological invariant, and connection edges are interleaved
/// by a Kahn pass over the instance dependency order.
fn flatten(design: &Design, vars: &DesignVariables) -> Result<FlatDesign, CoreError> {
    let config = design.config();
    let n_params = config.parameters.len();
    let (wg, wl, wr) = (
        config.correlation.global_share,
        config.correlation.local_share,
        config.correlation.random_share,
    );

    // Vertex offsets per instance.
    let mut offsets = Vec::with_capacity(design.instances().len());
    let mut n_vertices = 0usize;
    for inst in design.instances() {
        let ctx = inst.context.as_ref().ok_or_else(|| CoreError::Config {
            reason: format!(
                "instance `{}` has no module context; flattened MC needs the original netlist",
                inst.name
            ),
        })?;
        offsets.push(n_vertices as u32);
        n_vertices += ctx.netlist().n_inputs() + ctx.netlist().n_gates();
    }

    let flat_signal = |inst: usize, sig: Signal, design: &Design| -> u32 {
        let ctx = design.instances()[inst].context.as_ref().expect("checked");
        offsets[inst]
            + match sig {
                Signal::Input(i) => i,
                Signal::Gate(g) => ctx.netlist().n_inputs() as u32 + g,
            }
    };

    // Topological order over instances (connections define dependencies).
    let n_inst = design.instances().len();
    let mut indeg = vec![0usize; n_inst];
    for c in design.connections() {
        if c.from.0 != c.to.0 {
            indeg[c.to.0] += 1;
        }
    }
    // Kahn with duplicate-edge tolerance: recompute from scratch.
    let mut indeg_count = vec![0usize; n_inst];
    for c in design.connections() {
        if c.from.0 != c.to.0 {
            indeg_count[c.to.0] += 1;
        }
    }
    indeg.copy_from_slice(&indeg_count);
    let mut ready: Vec<usize> = (0..n_inst).filter(|&i| indeg[i] == 0).collect();
    let mut inst_order = Vec::with_capacity(n_inst);
    while let Some(i) = ready.pop() {
        inst_order.push(i);
        for c in design.connections() {
            if c.from.0 == i && c.to.0 != i {
                indeg[c.to.0] -= 1;
                if indeg[c.to.0] == 0 {
                    ready.push(c.to.0);
                }
            }
        }
    }
    if inst_order.len() != n_inst {
        return Err(CoreError::Timing(ssta_timing::TimingError::CyclicGraph));
    }

    let mut edges: Vec<FlatEdge> = Vec::new();
    for &idx in &inst_order {
        let inst = &design.instances()[idx];
        let ctx = inst.context.as_ref().expect("checked above");
        let netlist = ctx.netlist();
        let placement = ctx.placement();
        let geometry = ctx.geometry();
        let grid_base = vars.partition().instance_range(idx).start as u32;

        // Connection edges INTO this instance (sources already emitted).
        for c in design.connections() {
            if c.to.0 != idx {
                continue;
            }
            let src_sig = design.instances()[c.from.0]
                .context
                .as_ref()
                .expect("checked")
                .netlist()
                .outputs()[c.from.1];
            edges.push(FlatEdge {
                from: flat_signal(c.from.0, src_sig, design),
                to: offsets[idx] + c.to.1 as u32,
                nominal: c.wire_delay_ps,
                bases: vec![0.0; n_params],
                grid: grid_base, // irrelevant: zero bases
                random: 0.0,
            });
        }

        // Instance-internal arcs.
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let cell = netlist.library().cell(gate.cell);
            let pos = placement.gate_position(gi);
            let grid = grid_base + geometry.grid_of(pos) as u32;
            let to = offsets[idx] + (netlist.n_inputs() + gi) as u32;
            for (pin, &src) in gate.inputs.iter().enumerate() {
                let d0 = cell.arc_delay_ps(pin);
                let bases: Vec<f64> = config
                    .parameters
                    .iter()
                    .map(|p| d0 * cell.sensitivity().get(p.param) * p.sigma_rel)
                    .collect();
                let random = (bases.iter().map(|b| (b * wr.sqrt()) * (b * wr.sqrt())))
                    .sum::<f64>()
                    .sqrt();
                edges.push(FlatEdge {
                    from: flat_signal(idx, src, design),
                    to,
                    nominal: d0,
                    bases,
                    grid,
                    random,
                });
            }
        }
    }

    // Start vertices: every instance input port driven by a design PI.
    let mut start_vertices = Vec::new();
    for targets in design.pi_bindings() {
        for &(inst, port) in targets {
            start_vertices.push(offsets[inst] + port as u32);
        }
    }
    let po_vertices: Vec<u32> = design
        .po_sources()
        .iter()
        .map(|&(inst, port)| {
            let sig = design.instances()[inst]
                .context
                .as_ref()
                .expect("checked")
                .netlist()
                .outputs()[port];
            flat_signal(inst, sig, design)
        })
        .collect();

    Ok(FlatDesign {
        n_vertices,
        edges,
        start_vertices,
        po_vertices,
        n_params,
        n_grids: vars.partition().n_grids(),
        shares: (wg, wl, wr),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_core::{
        analyze, CorrelationMode, DesignBuilder, ExtractOptions, ModuleContext, SstaConfig,
    };
    use ssta_netlist::{generators, DieRect};
    use std::sync::Arc;

    fn single_instance_design() -> Design {
        let n = generators::ripple_carry_adder(4).unwrap();
        let config = SstaConfig::paper();
        let ctx = Arc::new(ModuleContext::characterize(n, &config).unwrap());
        let model = Arc::new(ctx.extract_model(&ExtractOptions::default()).unwrap());
        let (w, h) = model.geometry().extent_um();
        let mut b = DesignBuilder::new(
            "solo",
            DieRect {
                width: w + 40.0,
                height: h + 40.0,
            },
            config,
        );
        let u = b
            .add_instance("u0", model.clone(), Some(ctx), (0.0, 0.0))
            .unwrap();
        for k in 0..model.n_inputs() {
            b.expose_input(vec![(u, k)]).unwrap();
        }
        for k in 0..model.n_outputs() {
            b.expose_output(u, k).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn flat_mc_matches_analysis_for_single_instance() {
        let design = single_instance_design();
        let analytic = analyze(&design, CorrelationMode::Proposed).unwrap();
        let mc = flat_design_delay(
            &design,
            &McOptions {
                samples: 4000,
                ..Default::default()
            },
        )
        .unwrap();
        let mean_err = (analytic.delay.mean() - mc.mean()).abs() / mc.mean();
        assert!(mean_err < 0.03, "mean err {mean_err}");
        let sigma_err = (analytic.delay.std_dev() - mc.std_dev()).abs() / mc.std_dev();
        assert!(sigma_err < 0.12, "sigma err {sigma_err}");
    }

    #[test]
    fn missing_context_is_reported() {
        let n = generators::ripple_carry_adder(2).unwrap();
        let config = SstaConfig::paper();
        let ctx = Arc::new(ModuleContext::characterize(n, &config).unwrap());
        let model = Arc::new(ctx.extract_model(&ExtractOptions::default()).unwrap());
        let (w, h) = model.geometry().extent_um();
        let mut b = DesignBuilder::new(
            "bb",
            DieRect {
                width: w + 10.0,
                height: h + 10.0,
            },
            config,
        );
        let u = b
            .add_instance("u0", model.clone(), None, (0.0, 0.0))
            .unwrap();
        for k in 0..model.n_inputs() {
            b.expose_input(vec![(u, k)]).unwrap();
        }
        b.expose_output(u, 0).unwrap();
        let design = b.finish().unwrap();
        assert!(matches!(
            flat_design_delay(&design, &McOptions::default()),
            Err(CoreError::Config { .. })
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let design = single_instance_design();
        let opts = McOptions {
            samples: 300,
            seed: 5,
            threads: 2,
        };
        let a = flat_design_delay(&design, &opts).unwrap();
        let b = flat_design_delay(&design, &opts).unwrap();
        assert_eq!(a.mean(), b.mean());
    }
}
