//! Error metrics comparing analytical SSTA against Monte Carlo.
//!
//! The paper's Table I reports `merr` and `verr`: the maximum relative
//! error of the timing model's per-pair mean and standard deviation
//! against Monte Carlo of the original netlist. Fig. 7 compares delay CDF
//! curves. This module computes both.

use crate::module_mc::PairStats;
use ssta_core::CanonicalForm;
use ssta_math::EmpiricalDist;
use ssta_timing::DelayMatrix;

/// The paper's model-accuracy metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelError {
    /// `max |m_model − m_MC| / m_MC` over all connected pairs.
    pub merr: f64,
    /// `max |σ_model − σ_MC| / σ_MC` over all connected pairs.
    pub verr: f64,
    /// Pairs connected in one source but not the other (should be 0).
    pub connectivity_mismatches: usize,
}

/// Computes `merr`/`verr` of an analytical delay matrix against MC pair
/// statistics.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn model_vs_mc(matrix: &DelayMatrix<CanonicalForm>, mc: &PairStats) -> ModelError {
    assert_eq!(matrix.n_inputs(), mc.n_inputs(), "shape mismatch");
    assert_eq!(matrix.n_outputs(), mc.n_outputs(), "shape mismatch");
    let mut merr = 0.0f64;
    let mut verr = 0.0f64;
    let mut mismatches = 0;
    for i in 0..matrix.n_inputs() {
        for j in 0..matrix.n_outputs() {
            match (matrix.get(i, j), mc.pair(i, j).count() > 0) {
                (Some(d), true) => {
                    let s = mc.pair(i, j);
                    merr = merr.max((d.mean() - s.mean()).abs() / s.mean());
                    if s.std_dev() > 0.0 {
                        verr = verr.max((d.std_dev() - s.std_dev()).abs() / s.std_dev());
                    }
                }
                (None, false) => {}
                _ => mismatches += 1,
            }
        }
    }
    ModelError {
        merr,
        verr,
        connectivity_mismatches: mismatches,
    }
}

/// One row of a Fig. 7-style CDF comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfRow {
    /// Absolute delay (ps).
    pub delay: f64,
    /// Delay normalized to the plotted range `[0, 1]`.
    pub normalized: f64,
    /// Monte Carlo empirical CDF.
    pub mc: f64,
    /// Analytical CDFs, in caller order (e.g. proposed, global-only).
    pub analytic: [f64; 2],
}

/// Samples the MC empirical CDF and two analytical Gaussian CDFs on a
/// common normalized axis spanning all three distributions — the data
/// behind the paper's Fig. 7.
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn cdf_comparison(
    mc: &EmpiricalDist,
    analytic: [&CanonicalForm; 2],
    points: usize,
) -> Vec<CdfRow> {
    assert!(points >= 2, "need at least two points");
    let lo = mc
        .min()
        .min(analytic[0].quantile(0.001))
        .min(analytic[1].quantile(0.001));
    let hi = mc
        .max()
        .max(analytic[0].quantile(0.999))
        .max(analytic[1].quantile(0.999));
    (0..points)
        .map(|k| {
            let t = lo + (hi - lo) * k as f64 / (points - 1) as f64;
            CdfRow {
                delay: t,
                normalized: (t - lo) / (hi - lo),
                mc: mc.cdf(t),
                analytic: [analytic[0].cdf(t), analytic[1].cdf(t)],
            }
        })
        .collect()
}

/// Kolmogorov–Smirnov distance between an empirical distribution and the
/// Gaussian implied by a canonical form — a single-number accuracy score
/// for Fig. 7-style comparisons.
pub fn ks_against_form(mc: &EmpiricalDist, form: &CanonicalForm) -> f64 {
    mc.ks_against(|x| form.cdf(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module_mc::module_delay_matrix;
    use crate::McOptions;
    use ssta_core::{ModuleContext, SstaConfig};
    use ssta_netlist::generators;

    #[test]
    fn analytic_matrix_has_small_error_vs_mc() {
        let n = generators::ripple_carry_adder(3).unwrap();
        let ctx = ModuleContext::characterize(n, &SstaConfig::paper()).unwrap();
        let matrix = ctx.delay_matrix().unwrap();
        let mc = module_delay_matrix(
            &ctx,
            &McOptions {
                samples: 4000,
                ..Default::default()
            },
        )
        .unwrap();
        let err = model_vs_mc(&matrix, &mc);
        assert_eq!(err.connectivity_mismatches, 0);
        assert!(err.merr < 0.03, "merr {}", err.merr);
        assert!(err.verr < 0.15, "verr {}", err.verr);
    }

    #[test]
    fn cdf_comparison_is_monotone_and_normalized() {
        let form = CanonicalForm::from_parts(100.0, vec![5.0], vec![], 1.0).unwrap();
        let samples: Vec<f64> = (0..500)
            .map(|i| 100.0 + 5.0 * ssta_math::normal_quantile((i as f64 + 0.5) / 500.0))
            .collect();
        let mc = EmpiricalDist::from_samples(samples);
        let rows = cdf_comparison(&mc, [&form, &form], 21);
        assert_eq!(rows.len(), 21);
        assert_eq!(rows[0].normalized, 0.0);
        assert_eq!(rows[20].normalized, 1.0);
        for w in rows.windows(2) {
            assert!(w[1].mc >= w[0].mc);
            assert!(w[1].analytic[0] >= w[0].analytic[0]);
        }
        // The quasi-MC sample tracks its own Gaussian closely.
        assert!(ks_against_form(&mc, &form) < 0.01);
    }
}
