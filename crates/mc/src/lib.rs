//! Monte Carlo ground truth for hierarchical SSTA.
//!
//! The paper validates everything against Monte Carlo with 10 000
//! iterations: timing-model accuracy (Table I) against per-pair MC of the
//! original module netlists, and hierarchical analysis (Fig. 7) against MC
//! of the *flattened* design. This crate provides both:
//!
//! * [`module_mc`] — per input/output pair delay statistics of a
//!   characterized module, sampling the module's own variable space;
//! * [`flat_mc`] — the flattened-design delay distribution, sampling the
//!   *design-level* heterogeneous grid variables so inter-module spatial
//!   correlation is physically present in the ground truth;
//! * [`compare`] — the `merr`/`verr` error metrics of Table I and CDF
//!   comparison helpers for Fig. 7.
//!
//! All runs are seeded and deterministic; sample chunks are distributed
//! over crossbeam scoped threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod flat_mc;
pub mod module_mc;

pub use compare::{model_vs_mc, ModelError};
pub use flat_mc::flat_design_delay;
pub use module_mc::{module_delay_matrix, PairStats};

/// Options shared by all Monte Carlo runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOptions {
    /// Number of samples (the paper uses 10 000).
    pub samples: usize,
    /// RNG seed; the same seed reproduces the same estimate.
    pub seed: u64,
    /// Worker threads; `0` uses the available parallelism.
    pub threads: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions {
            samples: 10_000,
            seed: 0xD09E_2009,
            threads: 0,
        }
    }
}

impl McOptions {
    pub(crate) fn resolve_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
    }
}

pub(crate) fn chunk_sizes(total: usize, chunks: usize) -> Vec<usize> {
    let chunks = chunks.max(1);
    let base = total / chunks;
    let rem = total % chunks;
    (0..chunks)
        .map(|i| base + usize::from(i < rem))
        .filter(|&n| n > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_total() {
        for (total, chunks) in [(100, 7), (5, 10), (0, 4), (16, 4)] {
            let sizes = chunk_sizes(total, chunks);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert!(sizes.iter().all(|&s| s > 0) || total == 0);
        }
    }

    #[test]
    fn default_options_match_paper() {
        assert_eq!(McOptions::default().samples, 10_000);
    }
}
