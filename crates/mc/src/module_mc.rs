//! Per input/output pair Monte Carlo of a characterized module.
//!
//! Each sample draws one realisation of the module's variable space
//! (global variables, local PCA components, one private random value per
//! timing arc), evaluates every canonical edge delay to a scalar, and runs
//! one scalar longest-path traversal per input. Pair statistics accumulate
//! in Welford summaries that merge across worker threads.

use crate::{chunk_sizes, McOptions};
use ssta_core::{CoreError, ModuleContext};
use ssta_math::rng::{seeded_rng, NormalSampler};
use ssta_math::Summary;
use ssta_timing::VertexId;

/// Monte Carlo mean/σ per input/output pair.
#[derive(Debug, Clone)]
pub struct PairStats {
    n_inputs: usize,
    n_outputs: usize,
    cells: Vec<Summary>,
}

impl PairStats {
    fn new(n_inputs: usize, n_outputs: usize) -> Self {
        PairStats {
            n_inputs,
            n_outputs,
            cells: vec![Summary::new(); n_inputs * n_outputs],
        }
    }

    fn merge(&mut self, other: &PairStats) {
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            a.merge(b);
        }
    }

    /// Number of inputs (rows).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of outputs (columns).
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// The summary for pair `(i, j)`; empty when the pair is disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn pair(&self, i: usize, j: usize) -> &Summary {
        assert!(i < self.n_inputs && j < self.n_outputs, "pair out of range");
        &self.cells[i * self.n_outputs + j]
    }

    /// Iterates over connected pairs `(i, j, summary)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &Summary)> + '_ {
        self.cells.iter().enumerate().filter_map(move |(k, s)| {
            (s.count() > 0).then_some((k / self.n_outputs, k % self.n_outputs, s))
        })
    }
}

/// Runs the per-pair Monte Carlo on the module's **original** timing graph.
///
/// # Errors
///
/// Propagates graph errors (cannot occur for netlist-derived graphs).
pub fn module_delay_matrix(
    ctx: &ModuleContext,
    options: &McOptions,
) -> Result<PairStats, CoreError> {
    let graph = ctx.graph();
    let order = graph.topo_order()?;
    let inputs = graph.inputs().to_vec();
    let outputs = graph.outputs().to_vec();
    let n_globals = ctx.config().parameters.len();
    let n_locals = ctx.layout().n_locals();

    // Edge snapshot in a traversal-friendly layout.
    let edges: Vec<(u32, u32, usize)> = graph
        .edges_iter()
        .map(|(id, e)| (e.from.0, e.to.0, id.0 as usize))
        .collect();
    let n_slots = edges.iter().map(|&(_, _, s)| s + 1).max().unwrap_or(0);

    let threads = options.resolve_threads();
    let sizes = chunk_sizes(options.samples, threads);

    let partials = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (chunk_idx, &n_samples) in sizes.iter().enumerate() {
            let order = &order;
            let inputs = &inputs;
            let outputs = &outputs;
            let edges = &edges;
            handles.push(s.spawn(move |_| {
                let mut rng = seeded_rng(options.seed ^ (chunk_idx as u64).wrapping_mul(0x9E37));
                let mut normal = NormalSampler::new();
                let mut stats = PairStats::new(inputs.len(), outputs.len());
                let mut g = vec![0.0; n_globals];
                let mut l = vec![0.0; n_locals];
                let mut delays = vec![0.0f64; n_slots];
                let mut arrival: Vec<f64> = vec![f64::NEG_INFINITY; graph.vertex_bound()];
                for _ in 0..n_samples {
                    normal.fill(&mut rng, &mut g);
                    normal.fill(&mut rng, &mut l);
                    for &(_, _, slot) in edges.iter() {
                        let form = &graph.edge(ssta_timing::EdgeId(slot as u32)).delay;
                        delays[slot] = form.evaluate(&g, &l, normal.sample(&mut rng));
                    }
                    for (i, &vi) in inputs.iter().enumerate() {
                        arrival.fill(f64::NEG_INFINITY);
                        arrival[vi.0 as usize] = 0.0;
                        scalar_forward(graph, order, &delays, &mut arrival);
                        for (j, &vj) in outputs.iter().enumerate() {
                            let a = arrival[vj.0 as usize];
                            if a > f64::NEG_INFINITY {
                                stats.cells[i * outputs.len() + j].push(a);
                            }
                        }
                    }
                }
                stats
            }));
        }
        let mut total = PairStats::new(inputs.len(), outputs.len());
        for h in handles {
            total.merge(&h.join().expect("MC worker panicked"));
        }
        total
    })
    .expect("MC scope panicked");

    Ok(partials)
}

fn scalar_forward(
    graph: &ssta_timing::TimingGraph<ssta_core::CanonicalForm>,
    order: &[VertexId],
    delays: &[f64],
    arrival: &mut [f64],
) {
    for &v in order {
        let av = arrival[v.0 as usize];
        if av == f64::NEG_INFINITY {
            continue;
        }
        for e in graph.out_edges(v) {
            let edge = graph.edge(e);
            let cand = av + delays[e.0 as usize];
            let slot = &mut arrival[edge.to.0 as usize];
            if cand > *slot {
                *slot = cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssta_core::SstaConfig;
    use ssta_netlist::generators;

    fn ctx() -> ModuleContext {
        let n = generators::ripple_carry_adder(4).unwrap();
        ModuleContext::characterize(n, &SstaConfig::paper()).unwrap()
    }

    #[test]
    fn mc_matches_analytic_delay_matrix() {
        let ctx = ctx();
        let analytic = ctx.delay_matrix().unwrap();
        let mc = module_delay_matrix(
            &ctx,
            &McOptions {
                samples: 4000,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, j, d) in analytic.iter() {
            let s = mc.pair(i, j);
            assert!(s.count() > 0, "pair ({i},{j}) missing in MC");
            let mean_err = (d.mean() - s.mean()).abs() / s.mean();
            assert!(mean_err < 0.03, "pair ({i},{j}) mean err {mean_err}");
            let sigma_err = (d.std_dev() - s.std_dev()).abs() / s.std_dev();
            assert!(sigma_err < 0.15, "pair ({i},{j}) sigma err {sigma_err}");
        }
    }

    #[test]
    fn connectivity_agrees_with_analytic() {
        let ctx = ctx();
        let analytic = ctx.delay_matrix().unwrap();
        let mc = module_delay_matrix(
            &ctx,
            &McOptions {
                samples: 50,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..mc.n_inputs() {
            for j in 0..mc.n_outputs() {
                assert_eq!(
                    analytic.get(i, j).is_some(),
                    mc.pair(i, j).count() > 0,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let ctx = ctx();
        let opts = McOptions {
            samples: 200,
            seed: 7,
            threads: 2,
        };
        let a = module_delay_matrix(&ctx, &opts).unwrap();
        let b = module_delay_matrix(&ctx, &opts).unwrap();
        for (i, j, s) in a.iter() {
            assert_eq!(s.mean(), b.pair(i, j).mean());
        }
    }

    #[test]
    fn thread_count_does_not_change_sample_total() {
        let ctx = ctx();
        for threads in [1, 3] {
            let mc = module_delay_matrix(
                &ctx,
                &McOptions {
                    samples: 100,
                    seed: 1,
                    threads,
                },
            )
            .unwrap();
            let (_, _, s) = mc.iter().next().unwrap();
            assert_eq!(s.count(), 100);
        }
    }
}
