//! The client's handle on a submitted request.

use crate::request::{AnalyzeResponse, RequestId};
use ssta_core::CancelToken;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A one-shot mailbox a worker fills with the terminal response and the
/// client waits on — the in-process stand-in for a response channel.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    response: Mutex<Option<AnalyzeResponse>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseSlot::default())
    }

    /// Delivers the terminal response. Called exactly once per request.
    pub(crate) fn fill(&self, response: AnalyzeResponse) {
        let mut slot = self.response.lock().expect("response slot lock");
        debug_assert!(
            slot.is_none(),
            "a request has exactly one terminal response"
        );
        *slot = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> AnalyzeResponse {
        let mut slot = self.response.lock().expect("response slot lock");
        loop {
            if let Some(response) = slot.take() {
                return response;
            }
            slot = self.ready.wait(slot).expect("response slot lock");
        }
    }

    fn wait_for(&self, budget: Duration) -> Option<AnalyzeResponse> {
        let deadline = std::time::Instant::now() + budget;
        let mut slot = self.response.lock().expect("response slot lock");
        loop {
            if let Some(response) = slot.take() {
                return Some(response);
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return None;
            }
            slot = self
                .ready
                .wait_timeout(slot, left)
                .expect("response slot lock")
                .0;
        }
    }
}

/// The handle [`Server::submit`](crate::Server::submit) returns:
/// identifies the request, can cancel it, and collects its one terminal
/// response.
#[derive(Debug)]
pub struct Ticket {
    id: RequestId,
    cancel: CancelToken,
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    pub(crate) fn new(id: RequestId, cancel: CancelToken, slot: Arc<ResponseSlot>) -> Self {
        Ticket { id, cancel, slot }
    }

    /// The server-assigned request id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Requests cooperative cancellation: a queued request is dropped
    /// when a worker picks it up; an in-flight one stops at the next
    /// pipeline checkpoint. Either way the ticket still receives its
    /// terminal response (outcome [`Cancelled`](crate::Outcome::Cancelled),
    /// unless the analysis already finished).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A clone of the request's [`CancelToken`], for callers that want
    /// to wire cancellation into their own machinery.
    pub fn token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until the terminal response arrives and returns it.
    pub fn wait(self) -> AnalyzeResponse {
        self.slot.wait()
    }

    /// Like [`wait`](Self::wait) with a bound: `Err(self)` gives the
    /// ticket back if no response arrived within `budget`.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` on timeout so the caller can keep waiting or
    /// cancel.
    pub fn wait_for(self, budget: Duration) -> Result<AnalyzeResponse, Ticket> {
        match self.slot.wait_for(budget) {
            Some(response) => Ok(response),
            None => Err(self),
        }
    }
}
