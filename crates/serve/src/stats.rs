//! Server-level accounting: lock-free counters and their snapshot.

use ssta_engine::{BreakerState, StoreHealth};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic tallies every worker and the submit path report into.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub shed: AtomicU64,
    pub cancelled: AtomicU64,
    pub failed: AtomicU64,
    pub extractions: AtomicU64,
    pub coalesced: AtomicU64,
    pub memory_hits: AtomicU64,
    pub store_hits: AtomicU64,
    pub degraded: AtomicU64,
    pub queue_wait_nanos: AtomicU64,
    pub service_nanos: AtomicU64,
    sequence: AtomicU64,
}

impl Counters {
    /// The next terminal-response sequence number (0-based, dense).
    pub(crate) fn next_sequence(&self) -> u64 {
        self.sequence.fetch_add(1, Ordering::SeqCst)
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Builds a snapshot from the request counters plus the shared
    /// backend stack's *absolute* health (retries/quarantines are
    /// store-wide facts, not per-request ones).
    pub(crate) fn snapshot(&self, store: &StoreHealth) -> ServerSnapshot {
        ServerSnapshot {
            submitted: self.submitted.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            cancelled: self.cancelled.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            extractions: self.extractions.load(Ordering::SeqCst),
            coalesced: self.coalesced.load(Ordering::SeqCst),
            memory_hits: self.memory_hits.load(Ordering::SeqCst),
            store_hits: self.store_hits.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            store_retries: store.retries,
            store_quarantined: store.quarantined,
            store_breaker_trips: store.breaker_trips,
            store_breaker: store.breaker,
            total_queue_wait: Duration::from_nanos(self.queue_wait_nanos.load(Ordering::SeqCst)),
            total_service_time: Duration::from_nanos(self.service_nanos.load(Ordering::SeqCst)),
        }
    }
}

/// A point-in-time aggregate of everything the server has done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Requests submitted (every `submit` call).
    pub submitted: u64,
    /// Requests whose analysis ran to completion.
    pub completed: u64,
    /// Requests refused because the bounded queue was full.
    pub rejected_queue_full: u64,
    /// Requests refused because the estimated wait exceeded their
    /// deadline.
    pub shed: u64,
    /// Requests cancelled (explicitly or by deadline) before completing.
    pub cancelled: u64,
    /// Requests whose analysis failed.
    pub failed: u64,
    /// Modules characterized + extracted across all completed requests.
    pub extractions: u64,
    /// Module resolutions coalesced onto another in-flight extraction.
    pub coalesced: u64,
    /// Modules served from worker session caches.
    pub memory_hits: u64,
    /// Modules served from the shared persistent store.
    pub store_hits: u64,
    /// Module resolutions whose store read failed and gracefully
    /// degraded to re-extraction (the requests still completed).
    pub degraded: u64,
    /// Transport retries the shared backend stack has performed
    /// (absolute, store-lifetime).
    pub store_retries: u64,
    /// Corrupt artifacts the shared backend stack has quarantined.
    pub store_quarantined: u64,
    /// Cold-tier circuit-breaker trips on the shared backend stack.
    pub store_breaker_trips: u64,
    /// The shared backend stack's circuit-breaker state at snapshot
    /// time; [`Closed`](BreakerState::Closed) for stacks without one.
    pub store_breaker: BreakerState,
    /// Queue wait summed over served (non-rejected) requests.
    pub total_queue_wait: Duration,
    /// Service time summed over served requests.
    pub total_service_time: Duration,
}

impl ServerSnapshot {
    /// Terminal responses produced: completed + rejected + shed +
    /// cancelled + failed.
    pub fn terminal(&self) -> u64 {
        self.completed + self.rejected_queue_full + self.shed + self.cancelled + self.failed
    }

    /// Submitted requests with no terminal response. Zero on any
    /// quiesced (shut-down) server — the "no request is ever lost"
    /// invariant the bench asserts.
    pub fn lost(&self) -> u64 {
        self.submitted.saturating_sub(self.terminal())
    }
}

impl fmt::Display for ServerSnapshot {
    /// One compact summary line, e.g.
    /// `12 submitted: 9 completed, 1 queue-full, 1 shed, 1 cancelled | extracted 3, coalesced 5, memory 2, store 4`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted: {} completed",
            self.submitted, self.completed
        )?;
        if self.rejected_queue_full > 0 {
            write!(f, ", {} queue-full", self.rejected_queue_full)?;
        }
        if self.shed > 0 {
            write!(f, ", {} shed", self.shed)?;
        }
        if self.cancelled > 0 {
            write!(f, ", {} cancelled", self.cancelled)?;
        }
        if self.failed > 0 {
            write!(f, ", {} failed", self.failed)?;
        }
        write!(
            f,
            " | extracted {}, coalesced {}, memory {}, store {}",
            self.extractions, self.coalesced, self.memory_hits, self.store_hits
        )?;
        if self.degraded > 0 {
            write!(f, ", degraded {}", self.degraded)?;
        }
        if self.store_retries > 0 || self.store_quarantined > 0 {
            write!(
                f,
                " | retries {}, quarantined {}",
                self.store_retries, self.store_quarantined
            )?;
        }
        if self.store_breaker != BreakerState::Closed || self.store_breaker_trips > 0 {
            write!(
                f,
                " | breaker {} ({} trips)",
                self.store_breaker, self.store_breaker_trips
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_and_lost_account_for_every_state() {
        let snap = ServerSnapshot {
            submitted: 12,
            completed: 9,
            rejected_queue_full: 1,
            shed: 1,
            cancelled: 1,
            ..ServerSnapshot::default()
        };
        assert_eq!(snap.terminal(), 12);
        assert_eq!(snap.lost(), 0);

        let in_flight = ServerSnapshot {
            submitted: 5,
            completed: 3,
            ..ServerSnapshot::default()
        };
        assert_eq!(in_flight.lost(), 2);
    }

    #[test]
    fn snapshot_display_is_one_compact_line() {
        let snap = ServerSnapshot {
            submitted: 12,
            completed: 9,
            shed: 2,
            cancelled: 1,
            extractions: 3,
            coalesced: 5,
            ..ServerSnapshot::default()
        };
        let line = snap.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("12 submitted: 9 completed"));
        assert!(line.contains("2 shed"));
        assert!(line.contains("1 cancelled"));
        assert!(!line.contains("queue-full"), "zero states stay out: {line}");
        assert!(line.contains("coalesced 5"));
    }
}
