//! The server: a worker pool over shared engines, driven by the
//! bounded submission queue.

use crate::queue::{Job, SubmitQueue};
use crate::request::{
    AnalyzeRequest, AnalyzeResponse, Outcome, Rejection, RequestId, ServeStats, Workload,
};
use crate::stats::{Counters, ServerSnapshot};
use crate::ticket::{ResponseSlot, Ticket};
use ssta_core::{parallel::effective_threads, CancelToken, SstaConfig};
use ssta_engine::{Engine, EngineError, EngineOptions, FlightGroup, StorageBackend};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads, each owning one [`Engine`] over the shared
    /// backend; `0` uses the available parallelism.
    pub workers: usize,
    /// Bound on queued (admitted, not yet running) requests across both
    /// priority lanes; submissions beyond it are rejected
    /// [`QueueFull`](Rejection::QueueFull).
    pub queue_depth: usize,
    /// Consecutive interactive dequeues after which a waiting batch
    /// request goes ahead of further interactive ones — the
    /// anti-starvation quota.
    pub batch_courtesy: usize,
    /// Prior for the per-request service-time estimate before any
    /// request completed; thereafter an EWMA of measured service times.
    /// Drives load shedding: a request whose estimated wait exceeds its
    /// deadline is refused at admission.
    pub service_estimate: Duration,
    /// Starts the server with dequeuing paused (submissions are still
    /// admitted) until [`Server::resume`] — lets tests and benches
    /// stage a queue deterministically before any work begins.
    pub start_paused: bool,
    /// Options for each worker's engine.
    pub engine: EngineOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_depth: 64,
            batch_courtesy: 4,
            service_estimate: Duration::from_millis(50),
            start_paused: false,
            engine: EngineOptions::default(),
        }
    }
}

#[derive(Debug)]
struct Shared {
    queue: SubmitQueue,
    counters: Counters,
    next_id: AtomicU64,
    /// A handle on the shared backend stack, held only to read its
    /// [`health`](StorageBackend::health) into snapshots — retries,
    /// quarantines and breaker state are store-wide facts the request
    /// counters cannot see.
    store_view: Box<dyn StorageBackend>,
}

/// An in-process SSTA analysis server.
///
/// [`Server::start`] spawns a pool of worker threads, each owning an
/// [`Engine`] over a clone of the shared storage backend (hand an
/// `Arc`-wrapped backend in to share one store) and all sharing one
/// [`FlightGroup`], so identical modules extracting concurrently on
/// different workers coalesce onto one extraction. [`Server::submit`]
/// is the whole client API: admission control answers immediately
/// (rejections are terminal responses too), admitted requests flow
/// queue → worker → [`Ticket::wait`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool. `backend` is cloned into every worker's
    /// engine: pass `Arc<MemoryBackend>` (or any shared backend) so all
    /// workers serve one store.
    pub fn start<B>(config: SstaConfig, backend: B, options: ServeOptions) -> Self
    where
        B: StorageBackend + Clone + 'static,
    {
        let worker_count = effective_threads(options.workers);
        let shared = Arc::new(Shared {
            queue: SubmitQueue::new(
                options.queue_depth,
                options.batch_courtesy,
                worker_count,
                options.service_estimate,
                options.start_paused,
            ),
            counters: Counters::default(),
            next_id: AtomicU64::new(0),
            store_view: Box::new(backend.clone()),
        });
        let flights = FlightGroup::new();
        let workers = (0..worker_count)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let engine = Engine::with_options(config.clone(), options.engine.clone())
                    .with_backend(backend.clone())
                    .with_flight_group(flights.clone());
                std::thread::Builder::new()
                    .name(format!("ssta-serve-{index}"))
                    .spawn(move || worker_loop(index, engine, &shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a request. Never blocks and always returns a ticket:
    /// requests refused by admission control (queue full, shed) get
    /// their [`Rejected`](Outcome::Rejected) terminal response before
    /// this returns.
    pub fn submit(&self, request: AnalyzeRequest) -> Ticket {
        let id = RequestId(self.shared.next_id.fetch_add(1, Ordering::SeqCst));
        self.shared.counters.add(&self.shared.counters.submitted, 1);
        let cancel = match request.deadline {
            // The budget runs from submission: queue wait counts
            // against it, so an admitted request that waits too long
            // self-cancels at the worker's first checkpoint.
            Some(budget) => CancelToken::with_timeout(budget),
            None => CancelToken::new(),
        };
        let slot = ResponseSlot::new();
        let ticket = Ticket::new(id, cancel.clone(), Arc::clone(&slot));
        let job = Job {
            id,
            request,
            cancel,
            slot,
            submitted: Instant::now(),
        };
        if let Err(rejected) = self.shared.queue.admit(job) {
            let (job, rejection) = *rejected;
            let counter = match rejection {
                Rejection::QueueFull { .. } => &self.shared.counters.rejected_queue_full,
                Rejection::Shed { .. } => &self.shared.counters.shed,
            };
            self.shared.counters.add(counter, 1);
            job.slot.fill(AnalyzeResponse {
                id,
                outcome: Outcome::Rejected(rejection),
                stats: ServeStats {
                    sequence: self.shared.counters.next_sequence(),
                    ..ServeStats::default()
                },
            });
        }
        ticket
    }

    /// Lifts a [`start_paused`](ServeOptions::start_paused) hold.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Requests currently queued (admitted, not yet on a worker).
    pub fn queued(&self) -> usize {
        self.shared.queue.queued()
    }

    /// The configured queue bound.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Worker threads serving this server.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A point-in-time aggregate of everything served so far, including
    /// the shared backend stack's health (retries, quarantines,
    /// breaker state).
    pub fn snapshot(&self) -> ServerSnapshot {
        self.shared
            .counters
            .snapshot(&self.shared.store_view.health())
    }

    /// Graceful shutdown: workers drain every queued request (each
    /// still gets its terminal response — queued-but-cancelled ones
    /// resolve as [`Cancelled`](Outcome::Cancelled)), then exit. Returns
    /// the final snapshot, on which
    /// [`lost()`](ServerSnapshot::lost) is zero by construction.
    pub fn shutdown(self) -> ServerSnapshot {
        self.shared.queue.close();
        for worker in self.workers {
            worker.join().expect("serve worker panicked");
        }
        self.shared
            .counters
            .snapshot(&self.shared.store_view.health())
    }
}

fn worker_loop(index: usize, mut engine: Engine, shared: &Shared) {
    while let Some(job) = shared.queue.next_job() {
        let queue_wait = job.submitted.elapsed();
        // First checkpoint before any work: a request cancelled (or
        // deadline-expired) while queued costs zero service CPU — and
        // reports exactly that.
        let (result, service_time) = if job.cancel.is_cancelled() {
            (Err(EngineError::Cancelled), Duration::ZERO)
        } else {
            let started = Instant::now();
            let result = match &job.request.workload {
                Workload::Scenarios(scenarios) => engine
                    .analyze_batch_cancellable(&job.request.spec, scenarios, &job.cancel)
                    .map(|run| Outcome::Completed(Box::new(run))),
                Workload::Sweep { grid, options } => engine
                    .analyze_sweep_cancellable(&job.request.spec, grid, options, &job.cancel)
                    .map(|summary| Outcome::Swept(Box::new(summary))),
            };
            (result, started.elapsed())
        };

        let counters = &shared.counters;
        let outcome = match result {
            Ok(outcome) => {
                let (extractions, coalesced, memory_hits, store_hits, degraded) = match &outcome {
                    Outcome::Completed(run) => (
                        run.stats.extractions,
                        run.stats.coalesced,
                        run.stats.memory_hits,
                        run.stats.store_hits,
                        run.stats.store_degraded,
                    ),
                    Outcome::Swept(summary) => (
                        summary.extractions,
                        summary.coalesced,
                        summary.memory_hits,
                        summary.store_hits,
                        summary.store_degraded,
                    ),
                    _ => unreachable!("engine success maps to a completed outcome"),
                };
                counters.add(&counters.completed, 1);
                counters.add(&counters.extractions, extractions as u64);
                counters.add(&counters.coalesced, coalesced as u64);
                counters.add(&counters.memory_hits, memory_hits as u64);
                counters.add(&counters.store_hits, store_hits as u64);
                counters.add(&counters.degraded, degraded as u64);
                outcome
            }
            Err(e) if e.is_cancelled() => {
                counters.add(&counters.cancelled, 1);
                Outcome::Cancelled
            }
            Err(e) => {
                counters.add(&counters.failed, 1);
                Outcome::Failed(e)
            }
        };
        // Only completed runs feed the shed estimator: cancelled runs
        // measure how fast we *stopped*, not how long service takes.
        shared
            .queue
            .job_done(outcome.is_completed().then_some(service_time));
        counters.add(&counters.queue_wait_nanos, queue_wait.as_nanos() as u64);
        counters.add(&counters.service_nanos, service_time.as_nanos() as u64);

        let stats = match &outcome {
            Outcome::Completed(run) => ServeStats {
                queue_wait,
                service_time,
                extractions: run.stats.extractions,
                coalesced: run.stats.coalesced,
                memory_hits: run.stats.memory_hits,
                store_hits: run.stats.store_hits,
                sequence: counters.next_sequence(),
                worker: index,
            },
            Outcome::Swept(summary) => ServeStats {
                queue_wait,
                service_time,
                extractions: summary.extractions,
                coalesced: summary.coalesced,
                memory_hits: summary.memory_hits,
                store_hits: summary.store_hits,
                sequence: counters.next_sequence(),
                worker: index,
            },
            _ => ServeStats {
                queue_wait,
                service_time,
                sequence: counters.next_sequence(),
                worker: index,
                ..ServeStats::default()
            },
        };
        job.slot.fill(AnalyzeResponse {
            id: job.id,
            outcome,
            stats,
        });
    }
}
