//! The typed request/response surface of the serving layer.

use ssta_engine::{
    BatchRun, CornerGrid, DesignSpec, EngineError, ScenarioSet, SweepOptions, SweepSummary,
};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A server-assigned request identifier, unique for the server's
/// lifetime and monotone in submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Scheduling class of a request. The queue is two-lane: interactive
/// requests are preferred, batch requests are guaranteed forward
/// progress via a courtesy quota (see
/// [`ServeOptions::batch_courtesy`](crate::ServeOptions::batch_courtesy)) —
/// so one mega-sweep can neither starve small requests nor be starved
/// by them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// A latency-sensitive request (the default): small specs, single
    /// scenarios, a designer waiting at a prompt.
    #[default]
    Interactive,
    /// A throughput-oriented request: large scenario sweeps that should
    /// yield to interactive traffic.
    Batch,
}

impl Priority {
    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// What one request asks the engine to run.
///
/// Small named scenario sets go through the batch pipeline; corner
/// grids go through the mega-sweep path
/// ([`Engine::analyze_sweep`](ssta_engine::Engine::analyze_sweep)),
/// which collapses corners by extraction fingerprint up front and
/// streams compact per-corner records instead of materializing every
/// full result.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A [`ScenarioSet`] served by
    /// [`Engine::analyze_batch`](ssta_engine::Engine::analyze_batch);
    /// resolves to [`Outcome::Completed`].
    Scenarios(ScenarioSet),
    /// A [`CornerGrid`] served by
    /// [`Engine::analyze_sweep`](ssta_engine::Engine::analyze_sweep);
    /// resolves to [`Outcome::Swept`].
    Sweep {
        /// The corner grid, materialized lazily on the worker.
        grid: CornerGrid,
        /// Sweep tuning (worker count, retention, channel bound).
        options: SweepOptions,
    },
}

/// One analysis request: a design spec plus a [`Workload`], with an
/// optional latency budget and a scheduling class.
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// The design to analyze. `Arc`-shared so many requests (and the
    /// worker that serves each) reference one spec without copying.
    pub spec: Arc<DesignSpec>,
    /// What to run over the spec.
    pub workload: Workload,
    /// Latency budget measured from submission. Admission control sheds
    /// the request up front when the estimated queue wait already
    /// exceeds it; past admission it becomes a deadline on a
    /// [`CancelToken`](ssta_core::CancelToken) that stops the pipeline
    /// at the next checkpoint once it expires.
    pub deadline: Option<Duration>,
    /// Scheduling class.
    pub priority: Priority,
}

impl AnalyzeRequest {
    /// An interactive request with no deadline.
    pub fn new(spec: Arc<DesignSpec>, scenarios: ScenarioSet) -> Self {
        AnalyzeRequest {
            spec,
            workload: Workload::Scenarios(scenarios),
            deadline: None,
            priority: Priority::default(),
        }
    }

    /// A corner-grid mega-sweep request. Defaults to
    /// [`Priority::Batch`]: a thousand-corner sweep is throughput
    /// traffic and should yield to interactive requests (override with
    /// [`with_priority`](Self::with_priority) if not).
    pub fn sweep(spec: Arc<DesignSpec>, grid: CornerGrid, options: SweepOptions) -> Self {
        AnalyzeRequest {
            spec,
            workload: Workload::Sweep { grid, options },
            deadline: None,
            priority: Priority::Batch,
        }
    }

    /// Sets the latency budget.
    #[must_use]
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rejection {
    /// The bounded queue was at capacity. Backpressure, not failure:
    /// the client should retry later (or with backoff).
    QueueFull {
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// The estimated queue wait already exceeded the request's latency
    /// budget, so serving it would have burned CPU on an answer that
    /// arrives too late.
    Shed {
        /// The server's wait estimate at admission time.
        estimated_wait: Duration,
        /// The request's budget it was measured against.
        deadline: Duration,
    },
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::QueueFull { depth } => write!(f, "queue full (depth {depth})"),
            Rejection::Shed {
                estimated_wait,
                deadline,
            } => write!(
                f,
                "shed: estimated wait {:.1} ms exceeds deadline {:.1} ms",
                1e3 * estimated_wait.as_secs_f64(),
                1e3 * deadline.as_secs_f64()
            ),
        }
    }
}

/// The terminal outcome of one request. Every submitted request gets
/// exactly one.
#[derive(Debug)]
pub enum Outcome {
    /// The analysis ran to completion.
    Completed(Box<BatchRun>),
    /// A [`Workload::Sweep`] ran to completion.
    Swept(Box<SweepSummary>),
    /// Admission control refused the request before it was queued.
    Rejected(Rejection),
    /// The request was cancelled — explicitly via
    /// [`Ticket::cancel`](crate::Ticket::cancel) or by its expired
    /// deadline — before the analysis completed.
    Cancelled,
    /// The analysis itself failed.
    Failed(EngineError),
}

impl Outcome {
    /// Whether the analysis ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed(_) | Outcome::Swept(_))
    }

    /// The completed run, if any.
    pub fn run(&self) -> Option<&BatchRun> {
        match self {
            Outcome::Completed(run) => Some(run),
            _ => None,
        }
    }

    /// The completed sweep summary, if any.
    pub fn sweep(&self) -> Option<&SweepSummary> {
        match self {
            Outcome::Swept(summary) => Some(summary),
            _ => None,
        }
    }

    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Completed(_) => "completed",
            Outcome::Swept(_) => "swept",
            Outcome::Rejected(Rejection::QueueFull { .. }) => "rejected:queue_full",
            Outcome::Rejected(Rejection::Shed { .. }) => "rejected:shed",
            Outcome::Cancelled => "cancelled",
            Outcome::Failed(_) => "failed",
        }
    }
}

/// Per-request serving accounting, attached to every terminal response.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Time between submission and a worker picking the request up
    /// (zero for rejected requests).
    pub queue_wait: Duration,
    /// Time the worker spent serving the request (zero for rejected
    /// requests; for cancelled requests, the time burned before the
    /// pipeline stopped).
    pub service_time: Duration,
    /// Modules characterized + extracted while serving this request.
    pub extractions: usize,
    /// Module resolutions coalesced onto another in-flight extraction
    /// (same engine batch or another worker via the shared
    /// [`FlightGroup`](ssta_engine::FlightGroup)).
    pub coalesced: usize,
    /// Modules served from the worker's in-memory session cache.
    pub memory_hits: usize,
    /// Modules served from the shared persistent model store.
    pub store_hits: usize,
    /// Server-wide completion sequence number: response `k` was the
    /// `k`-th terminal response the server produced. Exposes the actual
    /// service order for fairness assertions.
    pub sequence: u64,
    /// Index of the worker that served the request (0 for rejections,
    /// which never reach a worker).
    pub worker: usize,
}

/// The terminal response to one [`AnalyzeRequest`].
#[derive(Debug)]
pub struct AnalyzeResponse {
    /// The id [`Server::submit`](crate::Server::submit) assigned.
    pub id: RequestId,
    /// What happened.
    pub outcome: Outcome,
    /// What it cost.
    pub stats: ServeStats,
}
