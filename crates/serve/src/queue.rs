//! The bounded two-lane submission queue and its admission policy.
//!
//! Hand-rolled on `Mutex` + `Condvar` (the vendored concurrency shim
//! provides scoped threads, not channels) — which turns out to be
//! exactly what's needed anyway: admission control wants to inspect
//! queue state *atomically with* the enqueue decision, which a channel
//! hides.

use crate::request::{AnalyzeRequest, Priority, Rejection, RequestId};
use crate::ticket::ResponseSlot;
use ssta_core::CancelToken;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One admitted request travelling from `submit` to a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: RequestId,
    pub request: AnalyzeRequest,
    pub cancel: CancelToken,
    pub slot: Arc<ResponseSlot>,
    pub submitted: Instant,
}

#[derive(Debug)]
struct Inner {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    /// Interactive jobs dequeued since the last batch job — the
    /// anti-starvation meter.
    served_since_batch: usize,
    /// Jobs currently on workers (dequeued, not yet reported done).
    in_flight: usize,
    /// EWMA of completed-request service time, seeded from the
    /// configured prior; drives the shed estimate.
    ewma_service_secs: f64,
    paused: bool,
    closing: bool,
}

/// The shared submission queue: bounded, two-lane, shed-estimating.
#[derive(Debug)]
pub(crate) struct SubmitQueue {
    inner: Mutex<Inner>,
    work_ready: Condvar,
    depth: usize,
    batch_courtesy: usize,
    workers: usize,
}

impl SubmitQueue {
    pub(crate) fn new(
        depth: usize,
        batch_courtesy: usize,
        workers: usize,
        service_prior: Duration,
        start_paused: bool,
    ) -> Self {
        SubmitQueue {
            inner: Mutex::new(Inner {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                served_since_batch: 0,
                in_flight: 0,
                ewma_service_secs: service_prior.as_secs_f64(),
                paused: start_paused,
                closing: false,
            }),
            work_ready: Condvar::new(),
            depth: depth.max(1),
            batch_courtesy: batch_courtesy.max(1),
            workers: workers.max(1),
        }
    }

    /// The configured queue bound.
    pub(crate) fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently queued (not yet on a worker).
    pub(crate) fn queued(&self) -> usize {
        let inner = self.inner.lock().expect("queue lock");
        inner.interactive.len() + inner.batch.len()
    }

    /// Admission control + enqueue, atomically: the job either enters
    /// its lane or comes back with the rejection to deliver.
    pub(crate) fn admit(&self, job: Job) -> Result<(), Box<(Job, Rejection)>> {
        let mut inner = self.inner.lock().expect("queue lock");
        let queued = inner.interactive.len() + inner.batch.len();
        if queued >= self.depth {
            return Err(Box::new((job, Rejection::QueueFull { depth: self.depth })));
        }
        if let Some(budget) = job.request.deadline {
            // Load shedding: refuse up front when the backlog alone is
            // already expected to outlast the budget — the cheapest
            // place to say no is before any CPU is spent.
            let backlog = queued + inner.in_flight;
            let estimated_wait = Duration::from_secs_f64(
                inner.ewma_service_secs * backlog as f64 / self.workers as f64,
            );
            if estimated_wait > budget {
                return Err(Box::new((
                    job,
                    Rejection::Shed {
                        estimated_wait,
                        deadline: budget,
                    },
                )));
            }
        }
        match job.request.priority {
            Priority::Interactive => inner.interactive.push_back(job),
            Priority::Batch => inner.batch.push_back(job),
        }
        drop(inner);
        self.work_ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job a worker should serve; `None` once the
    /// queue is closing *and* drained — the worker's signal to exit.
    pub(crate) fn next_job(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if !inner.paused {
                if let Some(job) = dequeue_fair(&mut inner, self.batch_courtesy) {
                    inner.in_flight += 1;
                    return Some(job);
                }
                if inner.closing {
                    return None;
                }
            }
            inner = self.work_ready.wait(inner).expect("queue lock");
        }
    }

    /// Reports a dequeued job finished; `service` is its measured
    /// service time when it completed (cancelled/failed runs don't
    /// feed the estimate).
    pub(crate) fn job_done(&self, service: Option<Duration>) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.in_flight -= 1;
        if let Some(measured) = service {
            inner.ewma_service_secs = 0.7 * inner.ewma_service_secs + 0.3 * measured.as_secs_f64();
        }
    }

    /// Lifts a `start_paused` hold; workers start dequeuing.
    pub(crate) fn resume(&self) {
        self.inner.lock().expect("queue lock").paused = false;
        self.work_ready.notify_all();
    }

    /// Begins shutdown: no effect on queued jobs (workers drain them so
    /// every admitted request still gets its terminal response), but
    /// workers exit once the queue is empty. Also lifts any pause —
    /// shutting down a paused server must not deadlock.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closing = true;
        inner.paused = false;
        drop(inner);
        self.work_ready.notify_all();
    }
}

/// Two-lane fair dequeue: interactive first, but after `batch_courtesy`
/// consecutive interactive picks the next batch job goes ahead — so a
/// mega-sweep can't be starved by a stream of small requests, and small
/// requests never sit behind a sweep that arrived first.
fn dequeue_fair(inner: &mut Inner, batch_courtesy: usize) -> Option<Job> {
    let take_batch = match (inner.interactive.is_empty(), inner.batch.is_empty()) {
        (true, true) => return None,
        (true, false) => true,
        (false, true) => false,
        (false, false) => inner.served_since_batch >= batch_courtesy,
    };
    if take_batch {
        inner.served_since_batch = 0;
        inner.batch.pop_front()
    } else {
        inner.served_since_batch += 1;
        inner.interactive.pop_front()
    }
}
