//! # ssta-serve — SSTA-as-a-service over the warm model store
//!
//! The DATE 2009 flow extracts each module's timing model **once** so
//! that analyses can be answered from the model library ever after —
//! the IP-vendor/integrator handoff. This crate is the serving layer
//! that story implies: a hand-rolled, in-process analysis server
//! (threads + condvars; no network, no async runtime) that drives
//! [`Engine::analyze_batch`](ssta_engine::Engine::analyze_batch)
//! against one shared warm [`ModelStore`](ssta_engine::ModelStore):
//!
//! * **Typed request/response** — [`AnalyzeRequest`] (spec plus a
//!   [`Workload`] — a named scenario set, or a corner-grid mega-sweep
//!   served by
//!   [`Engine::analyze_sweep`](ssta_engine::Engine::analyze_sweep) —
//!   plus deadline and priority) in, [`AnalyzeResponse`] (timing
//!   results + per-request [`ServeStats`]) out, connected by a
//!   [`Ticket`];
//! * **Admission control + backpressure** — a bounded two-lane queue:
//!   overflow answers [`Rejection::QueueFull`] instead of buffering
//!   without bound, and a request whose estimated wait already exceeds
//!   its deadline is [`Rejection::Shed`] before burning any CPU. A
//!   batch-courtesy quota keeps one mega-sweep from starving
//!   interactive traffic (and vice versa);
//! * **Cooperative cancellation** — each request carries a
//!   [`CancelToken`](ssta_core::CancelToken) (deadline-armed when the
//!   request has a budget) that the engine pipeline polls at stage
//!   checkpoints. Cancellation never kills shared work: a module
//!   extraction the request *leads* completes and is published for
//!   everyone else; one it merely *follows* is detached from
//!   immediately;
//! * **Observability** — per-request queue-wait/service-time/cache
//!   accounting and a server-level [`ServerSnapshot`] whose
//!   [`lost()`](ServerSnapshot::lost) is zero on every quiesced
//!   server: each submitted request gets exactly one terminal response
//!   (completed, rejected, cancelled or failed).
//!
//! Workers each own an [`Engine`](ssta_engine::Engine) over a clone of
//! the shared backend and all share one
//! [`FlightGroup`](ssta_engine::FlightGroup), so identical requests
//! landing on different workers still coalesce to a single extraction.
//!
//! # Example
//!
//! ```
//! use ssta_core::SstaConfig;
//! use ssta_engine::{DesignSpec, MemoryBackend, ScenarioSet};
//! use ssta_netlist::{generators, DieRect};
//! use ssta_serve::{AnalyzeRequest, ServeOptions, Server};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = generators::ripple_carry_adder(1)?;
//! let mut b = DesignSpec::builder("one", DieRect { width: 40.0, height: 30.0 });
//! let m = b.add_module(netlist);
//! let u0 = b.add_instance("u0", m, (0.0, 0.0))?;
//! for k in 0..3 {
//!     b.expose_input(vec![(u0, k)]);
//! }
//! for k in 0..2 {
//!     b.expose_output(u0, k);
//! }
//! let spec = Arc::new(b.finish()?);
//!
//! let server = Server::start(
//!     SstaConfig::paper(),
//!     Arc::new(MemoryBackend::new()),
//!     ServeOptions::default(),
//! );
//! let ticket = server.submit(AnalyzeRequest::new(spec, ScenarioSet::baseline()));
//! let response = ticket.wait();
//! assert!(response.outcome.is_completed());
//!
//! let snapshot = server.shutdown();
//! assert_eq!(snapshot.completed, 1);
//! assert_eq!(snapshot.lost(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod request;
mod server;
mod stats;
mod ticket;

pub use request::{
    AnalyzeRequest, AnalyzeResponse, Outcome, Priority, Rejection, RequestId, ServeStats, Workload,
};
pub use server::{ServeOptions, Server};
pub use stats::ServerSnapshot;
pub use ticket::Ticket;
