//! Principal component analysis of covariance matrices.
//!
//! The grid-based spatial-correlation model assigns one Gaussian random
//! variable per grid with covariance matrix `C`. PCA decomposes the vector
//! of correlated variables as `p = T·z` with `z ~ N(0, I)` and
//! `T = U·Λ^½` (`C = U·Λ·Uᵀ`), so that block-based SSTA can propagate
//! independent components. The **whitening** direction `z = Λ^{-½}·Uᵀ·p`
//! is what the hierarchical variable-replacement step of the DATE'09 paper
//! needs: it maps correlated grid variables back onto unit-variance
//! components.
//!
//! Note on conventions: the paper writes `p_l = A·x` with `A` the raw
//! eigenvector matrix, so its `x_i` carry variance `λ_i`. We fold `Λ^½`
//! into the transform so components are unit-variance; this keeps canonical
//! form coefficients directly comparable and makes variance computations a
//! plain dot product. The replacement algebra is equivalent (see
//! `ssta-core::hier::replace`).

use crate::eigen::symmetric_eigen;
use crate::{MathError, Matrix};
use serde::{Deserialize, Serialize};

/// Options controlling component retention in [`PcaBasis::from_covariance`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcaOptions {
    /// Keep the smallest set of leading components whose eigenvalue sum
    /// reaches this fraction of the total variance. `1.0` keeps everything.
    pub variance_fraction: f64,
    /// Drop components whose eigenvalue falls below this absolute floor.
    /// Protects against numerically negative eigenvalues of
    /// nearly-singular covariance matrices.
    pub min_eigenvalue: f64,
}

impl Default for PcaOptions {
    /// Keeps all components above the numerical noise floor.
    fn default() -> Self {
        PcaOptions {
            variance_fraction: 1.0,
            min_eigenvalue: 1e-10,
        }
    }
}

/// A PCA basis for a covariance matrix `C ≈ T·Tᵀ`.
///
/// * `transform` (`n × k`): `correlated = T · z`, `z ~ N(0, I_k)`;
/// * `whiten` (`k × n`): `z = W · correlated`, the pseudo-inverse
///   `Λ^{-½}·Uᵀ` restricted to the kept components.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcaBasis {
    transform: Matrix,
    whiten: Matrix,
    eigenvalues: Vec<f64>,
    total_variance: f64,
}

impl PcaBasis {
    /// Decomposes a symmetric positive-semidefinite covariance matrix.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver errors ([`MathError::NotSymmetric`],
    /// [`MathError::EigenNoConvergence`]) and returns
    /// [`MathError::EmptyInput`] if no component survives the retention
    /// policy (e.g. an all-zero covariance).
    ///
    /// # Example
    ///
    /// ```
    /// use ssta_math::{Matrix, PcaBasis, PcaOptions};
    ///
    /// # fn main() -> Result<(), ssta_math::MathError> {
    /// let c = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
    /// let pca = PcaBasis::from_covariance(&c, PcaOptions::default())?;
    /// assert_eq!(pca.n_components(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_covariance(cov: &Matrix, options: PcaOptions) -> Result<Self, MathError> {
        let eig = symmetric_eigen(cov)?;
        let n = cov.rows();
        let total: f64 = eig.eigenvalues.iter().map(|&l| l.max(0.0)).sum();

        // Select leading components.
        let mut kept = Vec::new();
        let mut acc = 0.0;
        for (idx, &lam) in eig.eigenvalues.iter().enumerate() {
            if lam < options.min_eigenvalue {
                break; // eigenvalues are sorted descending
            }
            kept.push(idx);
            acc += lam;
            if total > 0.0 && acc / total >= options.variance_fraction {
                break;
            }
        }
        if kept.is_empty() {
            return Err(MathError::EmptyInput {
                context: "PcaBasis::from_covariance (no components retained)",
            });
        }

        let k = kept.len();
        let mut transform = Matrix::zeros(n, k);
        let mut whiten = Matrix::zeros(k, n);
        let mut eigenvalues = Vec::with_capacity(k);
        for (col, &idx) in kept.iter().enumerate() {
            let lam = eig.eigenvalues[idx];
            eigenvalues.push(lam);
            let s = lam.sqrt();
            for row in 0..n {
                let u = eig.eigenvectors[(row, idx)];
                transform[(row, col)] = u * s;
                whiten[(col, row)] = u / s;
            }
        }

        Ok(PcaBasis {
            transform,
            whiten,
            eigenvalues,
            total_variance: total,
        })
    }

    /// Reassembles a basis from its stored parts (the inverse of reading
    /// [`transform`](Self::transform)/[`whiten`](Self::whiten)/
    /// [`eigenvalues`](Self::eigenvalues)/
    /// [`total_variance`](Self::total_variance)) — the constructor binary
    /// codecs use to reproduce a decomposed basis bit-exactly without
    /// re-running the eigensolver.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless `transform` is
    /// `n × k`, `whiten` is `k × n` and `eigenvalues` has length `k`,
    /// and [`MathError::EmptyInput`] for an empty basis.
    pub fn from_raw_parts(
        transform: Matrix,
        whiten: Matrix,
        eigenvalues: Vec<f64>,
        total_variance: f64,
    ) -> Result<Self, MathError> {
        let (n, k) = (transform.rows(), transform.cols());
        if k == 0 || n == 0 {
            return Err(MathError::EmptyInput {
                context: "PcaBasis::from_raw_parts (empty basis)",
            });
        }
        if whiten.rows() != k || whiten.cols() != n || eigenvalues.len() != k {
            return Err(MathError::DimensionMismatch {
                context: "PcaBasis::from_raw_parts",
                expected: (k, n),
                found: (whiten.rows(), whiten.cols()),
            });
        }
        Ok(PcaBasis {
            transform,
            whiten,
            eigenvalues,
            total_variance,
        })
    }

    /// The `n × k` transform `T` with `correlated = T·z`.
    pub fn transform(&self) -> &Matrix {
        &self.transform
    }

    /// The total variance (eigenvalue sum before truncation) of the
    /// decomposed covariance matrix.
    pub fn total_variance(&self) -> f64 {
        self.total_variance
    }

    /// The `k × n` whitening matrix `W = Λ^{-½}·Uᵀ` with `z = W·correlated`.
    pub fn whiten(&self) -> &Matrix {
        &self.whiten
    }

    /// Retained eigenvalues, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Number of retained components `k`.
    pub fn n_components(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Number of original correlated variables `n`.
    pub fn n_variables(&self) -> usize {
        self.transform.rows()
    }

    /// Fraction of the total variance captured by the retained components.
    pub fn captured_variance_fraction(&self) -> f64 {
        if self.total_variance <= 0.0 {
            1.0
        } else {
            self.eigenvalues.iter().sum::<f64>() / self.total_variance
        }
    }

    /// Maps independent components `z` to correlated variables `T·z`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless
    /// `z.len() == n_components()`.
    pub fn correlate(&self, z: &[f64]) -> Result<Vec<f64>, MathError> {
        self.transform.mat_vec(z)
    }

    /// Maps correlated variables to independent components `W·p`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] unless
    /// `p.len() == n_variables()`.
    pub fn decorrelate(&self, p: &[f64]) -> Result<Vec<f64>, MathError> {
        self.whiten.mat_vec(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_covariance(n_side: usize, decay: f64) -> Matrix {
        let n = n_side * n_side;
        let pt = |k: usize| ((k % n_side) as f64, (k / n_side) as f64);
        Matrix::from_fn(n, n, |i, j| {
            let (xi, yi) = pt(i);
            let (xj, yj) = pt(j);
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            (-d / decay).exp()
        })
    }

    #[test]
    fn full_pca_reconstructs_covariance() {
        let c = grid_covariance(3, 2.0);
        let pca = PcaBasis::from_covariance(&c, PcaOptions::default()).unwrap();
        let back = pca
            .transform()
            .matmul(&pca.transform().transposed())
            .unwrap();
        assert!(back.max_abs_diff(&c).unwrap() < 1e-8);
    }

    #[test]
    fn whiten_is_left_inverse_of_transform() {
        let c = grid_covariance(3, 1.5);
        let pca = PcaBasis::from_covariance(&c, PcaOptions::default()).unwrap();
        let wt = pca.whiten().matmul(pca.transform()).unwrap();
        assert!(
            wt.max_abs_diff(&Matrix::identity(pca.n_components()))
                .unwrap()
                < 1e-8
        );
    }

    #[test]
    fn truncation_reduces_components_but_keeps_variance() {
        let c = grid_covariance(4, 3.0); // strong correlation -> fast decay
        let pca = PcaBasis::from_covariance(
            &c,
            PcaOptions {
                variance_fraction: 0.95,
                min_eigenvalue: 1e-10,
            },
        )
        .unwrap();
        assert!(pca.n_components() < 16);
        assert!(pca.captured_variance_fraction() >= 0.95);
    }

    #[test]
    fn correlate_then_decorrelate_round_trips() {
        let c = grid_covariance(3, 2.0);
        let pca = PcaBasis::from_covariance(&c, PcaOptions::default()).unwrap();
        let z: Vec<f64> = (0..pca.n_components())
            .map(|i| (i as f64) / 3.0 - 1.0)
            .collect();
        let p = pca.correlate(&z).unwrap();
        let z_back = pca.decorrelate(&p).unwrap();
        for (a, b) in z.iter().zip(&z_back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_covariance_yields_empty_error() {
        let c = Matrix::zeros(3, 3);
        assert!(matches!(
            PcaBasis::from_covariance(&c, PcaOptions::default()),
            Err(MathError::EmptyInput { .. })
        ));
    }

    #[test]
    fn eigenvalues_are_descending() {
        let c = grid_covariance(3, 1.0);
        let pca = PcaBasis::from_covariance(&c, PcaOptions::default()).unwrap();
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn diagonal_covariance_has_axis_components() {
        let c = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 1.0]]).unwrap();
        let pca = PcaBasis::from_covariance(&c, PcaOptions::default()).unwrap();
        assert!((pca.eigenvalues()[0] - 4.0).abs() < 1e-12);
        assert!((pca.eigenvalues()[1] - 1.0).abs() < 1e-12);
        // First transform column is (±2, 0).
        assert!((pca.transform()[(0, 0)].abs() - 2.0).abs() < 1e-10);
        assert!(pca.transform()[(1, 0)].abs() < 1e-10);
    }
}
