//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used to validate covariance matrices produced by the spatial-correlation
//! model and (in tests and Monte Carlo) to sample correlated Gaussian
//! vectors: if `A = L·Lᵀ` and `z ~ N(0, I)` then `L·z ~ N(0, A)`.

use crate::{MathError, Matrix};

/// Computes the lower-triangular Cholesky factor `L` with `L·Lᵀ = a`.
///
/// # Errors
///
/// * [`MathError::NotSymmetric`] if `a` is not symmetric within `1e-8`
///   relative to its largest diagonal entry.
/// * [`MathError::NotPositiveDefinite`] if a pivot becomes non-positive.
///
/// # Example
///
/// ```
/// use ssta_math::{cholesky, Matrix};
///
/// # fn main() -> Result<(), ssta_math::MathError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let l = cholesky::factor(&a)?;
/// let reconstructed = l.matmul(&l.transposed())?;
/// assert!(reconstructed.max_abs_diff(&a)? < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn factor(a: &Matrix) -> Result<Matrix, MathError> {
    let n = a.rows();
    if !a.is_square() {
        return Err(MathError::DimensionMismatch {
            context: "cholesky::factor",
            expected: (n, n),
            found: (a.rows(), a.cols()),
        });
    }
    let scale = (0..n).map(|i| a[(i, i)].abs()).fold(1.0, f64::max);
    let asym = a.max_asymmetry();
    if asym > 1e-8 * scale {
        return Err(MathError::NotSymmetric {
            max_asymmetry: asym,
        });
    }

    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(MathError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Returns `true` when `a` is symmetric positive definite (factorizable).
pub fn is_positive_definite(a: &Matrix) -> bool {
    factor(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_3x3() -> Matrix {
        // B·Bᵀ for a full-rank B is SPD.
        let b =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[0.5, -1.0, 1.5]]).unwrap();
        b.matmul(&b.transposed()).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd_3x3();
        let l = factor(&a).unwrap();
        let back = l.matmul(&l.transposed()).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let l = factor(&spd_3x3()).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            factor(&a),
            Err(MathError::NotPositiveDefinite { .. })
        ));
        assert!(!is_positive_definite(&a));
    }

    #[test]
    fn rejects_asymmetric_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]).unwrap();
        assert!(matches!(factor(&a), Err(MathError::NotSymmetric { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            factor(&a),
            Err(MathError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn identity_factors_to_itself() {
        let i = Matrix::identity(4);
        let l = factor(&i).unwrap();
        assert!(l.max_abs_diff(&i).unwrap() < 1e-15);
    }
}
